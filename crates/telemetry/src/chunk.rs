//! Fixed-capacity columnar chunks: struct-of-arrays row storage with
//! per-column min/max statistics.
//!
//! A chunk holds every row field as its own contiguous column, so a range
//! query touching two of twelve columns reads two arrays, and the stats let
//! the query layer skip whole chunks without opening them. Sealed layout
//! (the payload inside `adv-store`'s `ADVSTOR1` envelope, little-endian):
//!
//! ```text
//! magic   "ADVTCHK1"  8 bytes
//! version u32         currently 3 (v2 added trace, v3 the variant column)
//! rows    u32
//! tick    rows × u64      verdict   rows × i32
//! tenant  rows × u32      queue_ns  rows × u64
//! route   rows × u32      infer_ns  rows × u64
//! sample  rows × u32      trace     rows × u64
//! variant rows × u32      nscores   rows × u8
//! scheme  rows × u8       score[k]  rows × f32, k = 0..MAX_DETECTORS
//! degraded rows × u8
//! ```
//!
//! Validation is strict: wrong magic/version, a row count that does not
//! match the byte length, trailing bytes, or an unknown scheme code all
//! reject the chunk (the store layer then quarantines it). Strictness
//! includes the version: v1/v2 chunks (no trace / no variant column) are
//! rejected, landing in quarantine like any other unreadable payload.

use crate::row::{scheme_code, scheme_from_code, verdict_code, verdict_from_code};
use crate::{TelemetryRow, MAX_DETECTORS};

/// Magic prefix of a sealed chunk payload.
pub const CHUNK_MAGIC: &[u8; 8] = b"ADVTCHK1";

/// Chunk format version this build writes and accepts.
const VERSION: u32 = 3;

/// Header bytes before the columns.
const HEADER_LEN: usize = 8 + 4 + 4;

/// Bytes one row occupies across all columns.
const ROW_BYTES: usize = 8 + 4 + 4 + 4 + 4 + 1 + 1 + 4 + 8 + 8 + 8 + 1 + 4 * MAX_DETECTORS;

/// Per-column min/max statistics of a sealed chunk — everything the query
/// layer needs to prune a chunk without reading it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStats {
    /// Rows in the chunk.
    pub rows: u32,
    /// Smallest timestamp tick.
    pub tick_min: u64,
    /// Largest timestamp tick.
    pub tick_max: u64,
    /// Smallest tenant key.
    pub tenant_min: u32,
    /// Largest tenant key.
    pub tenant_max: u32,
    /// Smallest route key.
    pub route_min: u32,
    /// Largest route key.
    pub route_max: u32,
    /// Smallest serving-variant id.
    pub variant_min: u32,
    /// Largest serving-variant id.
    pub variant_max: u32,
    /// Bitmask of scheme codes present (`1 << scheme_code`).
    pub scheme_mask: u8,
    /// Any row served degraded.
    pub any_degraded: bool,
    /// Every row served degraded.
    pub all_degraded: bool,
    /// Any row's verdict was Detected.
    pub any_detected: bool,
    /// Every row's verdict was Detected.
    pub all_detected: bool,
    /// Per-score-column minima.
    pub score_min: [f32; MAX_DETECTORS],
    /// Per-score-column maxima.
    pub score_max: [f32; MAX_DETECTORS],
}

/// Serialized size of [`ChunkStats`] in a manifest record.
pub(crate) const STATS_BYTES: usize = 4 + 8 + 8 + 4 + 4 + 4 + 4 + 4 + 4 + 1 + 1 + 8 * MAX_DETECTORS;

impl ChunkStats {
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.rows.to_le_bytes());
        out.extend_from_slice(&self.tick_min.to_le_bytes());
        out.extend_from_slice(&self.tick_max.to_le_bytes());
        out.extend_from_slice(&self.tenant_min.to_le_bytes());
        out.extend_from_slice(&self.tenant_max.to_le_bytes());
        out.extend_from_slice(&self.route_min.to_le_bytes());
        out.extend_from_slice(&self.route_max.to_le_bytes());
        out.extend_from_slice(&self.variant_min.to_le_bytes());
        out.extend_from_slice(&self.variant_max.to_le_bytes());
        out.push(self.scheme_mask);
        let flags = u8::from(self.any_degraded)
            | u8::from(self.all_degraded) << 1
            | u8::from(self.any_detected) << 2
            | u8::from(self.all_detected) << 3;
        out.push(flags);
        for s in &self.score_min {
            out.extend_from_slice(&s.to_le_bytes());
        }
        for s in &self.score_max {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<ChunkStats, String> {
        if bytes.len() != STATS_BYTES {
            return Err(format!(
                "stats record is {} bytes, expected {STATS_BYTES}",
                bytes.len()
            ));
        }
        let mut cur = Cursor::new(bytes);
        let rows = cur.u32()?;
        let tick_min = cur.u64()?;
        let tick_max = cur.u64()?;
        let tenant_min = cur.u32()?;
        let tenant_max = cur.u32()?;
        let route_min = cur.u32()?;
        let route_max = cur.u32()?;
        let variant_min = cur.u32()?;
        let variant_max = cur.u32()?;
        let scheme_mask = cur.u8()?;
        let flags = cur.u8()?;
        let mut score_min = [0f32; MAX_DETECTORS];
        let mut score_max = [0f32; MAX_DETECTORS];
        for s in &mut score_min {
            *s = cur.f32()?;
        }
        for s in &mut score_max {
            *s = cur.f32()?;
        }
        Ok(ChunkStats {
            rows,
            tick_min,
            tick_max,
            tenant_min,
            tenant_max,
            route_min,
            route_max,
            variant_min,
            variant_max,
            scheme_mask,
            any_degraded: flags & 1 != 0,
            all_degraded: flags & 2 != 0,
            any_detected: flags & 4 != 0,
            all_detected: flags & 8 != 0,
            score_min,
            score_max,
        })
    }
}

/// A columnar chunk: the in-memory open chunk of the writer, and the
/// decoded form of a sealed chunk on the read path.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    tick: Vec<u64>,
    tenant: Vec<u32>,
    route: Vec<u32>,
    sample: Vec<u32>,
    variant: Vec<u32>,
    scheme: Vec<u8>,
    degraded: Vec<u8>,
    verdict: Vec<i32>,
    queue_ns: Vec<u64>,
    infer_ns: Vec<u64>,
    trace: Vec<u64>,
    nscores: Vec<u8>,
    scores: [Vec<f32>; MAX_DETECTORS],
}

impl Chunk {
    /// An empty chunk with column capacity reserved for `capacity` rows.
    pub fn with_capacity(capacity: usize) -> Chunk {
        Chunk {
            tick: Vec::with_capacity(capacity),
            tenant: Vec::with_capacity(capacity),
            route: Vec::with_capacity(capacity),
            sample: Vec::with_capacity(capacity),
            variant: Vec::with_capacity(capacity),
            scheme: Vec::with_capacity(capacity),
            degraded: Vec::with_capacity(capacity),
            verdict: Vec::with_capacity(capacity),
            queue_ns: Vec::with_capacity(capacity),
            infer_ns: Vec::with_capacity(capacity),
            trace: Vec::with_capacity(capacity),
            nscores: Vec::with_capacity(capacity),
            scores: std::array::from_fn(|_| Vec::with_capacity(capacity)),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tick.len()
    }

    /// `true` when the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.tick.is_empty()
    }

    /// Appends one row (column-wise).
    pub fn push(&mut self, row: &TelemetryRow) {
        self.tick.push(row.tick);
        self.tenant.push(row.tenant);
        self.route.push(row.route);
        self.sample.push(row.sample);
        self.variant.push(row.variant);
        self.scheme.push(scheme_code(row.scheme));
        self.degraded.push(u8::from(row.degraded));
        self.verdict.push(verdict_code(row.verdict));
        self.queue_ns.push(row.queue_ns);
        self.infer_ns.push(row.infer_ns);
        self.trace.push(row.trace);
        let n = (row.nscores as usize).min(MAX_DETECTORS);
        self.nscores.push(n as u8);
        for (k, col) in self.scores.iter_mut().enumerate() {
            col.push(row.scores.get(k).copied().unwrap_or(0.0));
        }
    }

    /// Reassembles row `i`, or `None` past the end (or on a scheme code the
    /// decoder should already have rejected).
    pub fn row(&self, i: usize) -> Option<TelemetryRow> {
        let mut scores = [0f32; MAX_DETECTORS];
        for (slot, col) in scores.iter_mut().zip(self.scores.iter()) {
            *slot = col.get(i).copied()?;
        }
        Some(TelemetryRow {
            tick: self.tick.get(i).copied()?,
            tenant: self.tenant.get(i).copied()?,
            route: self.route.get(i).copied()?,
            sample: self.sample.get(i).copied()?,
            variant: self.variant.get(i).copied()?,
            scheme: scheme_from_code(self.scheme.get(i).copied()?)?,
            degraded: self.degraded.get(i).copied()? != 0,
            verdict: verdict_from_code(self.verdict.get(i).copied()?),
            queue_ns: self.queue_ns.get(i).copied()?,
            infer_ns: self.infer_ns.get(i).copied()?,
            trace: self.trace.get(i).copied()?,
            nscores: self.nscores.get(i).copied()?,
            scores,
        })
    }

    /// Iterates the chunk's rows in append order.
    pub fn rows(&self) -> impl Iterator<Item = TelemetryRow> + '_ {
        (0..self.len()).filter_map(|i| self.row(i))
    }

    /// Direct view of the tick column (the time index).
    pub fn ticks(&self) -> &[u64] {
        &self.tick
    }

    /// Per-column min/max statistics over the current rows.
    pub fn stats(&self) -> ChunkStats {
        let mut stats = ChunkStats {
            rows: self.len() as u32,
            tick_min: u64::MAX,
            tick_max: 0,
            tenant_min: u32::MAX,
            tenant_max: 0,
            route_min: u32::MAX,
            route_max: 0,
            variant_min: u32::MAX,
            variant_max: 0,
            scheme_mask: 0,
            any_degraded: false,
            all_degraded: !self.is_empty(),
            any_detected: false,
            all_detected: !self.is_empty(),
            score_min: [f32::INFINITY; MAX_DETECTORS],
            score_max: [f32::NEG_INFINITY; MAX_DETECTORS],
        };
        for &t in &self.tick {
            stats.tick_min = stats.tick_min.min(t);
            stats.tick_max = stats.tick_max.max(t);
        }
        for &t in &self.tenant {
            stats.tenant_min = stats.tenant_min.min(t);
            stats.tenant_max = stats.tenant_max.max(t);
        }
        for &r in &self.route {
            stats.route_min = stats.route_min.min(r);
            stats.route_max = stats.route_max.max(r);
        }
        for &v in &self.variant {
            stats.variant_min = stats.variant_min.min(v);
            stats.variant_max = stats.variant_max.max(v);
        }
        for &s in &self.scheme {
            stats.scheme_mask |= 1u8.checked_shl(u32::from(s)).unwrap_or(0);
        }
        for &d in &self.degraded {
            stats.any_degraded |= d != 0;
            stats.all_degraded &= d != 0;
        }
        for &v in &self.verdict {
            stats.any_detected |= v < 0;
            stats.all_detected &= v < 0;
        }
        for (k, col) in self.scores.iter().enumerate() {
            for (&s, &n) in col.iter().zip(&self.nscores) {
                if usize::from(n) > k {
                    stats.score_min[k] = stats.score_min[k].min(s);
                    stats.score_max[k] = stats.score_max[k].max(s);
                }
            }
        }
        stats
    }

    /// Serializes the chunk as an `ADVTCHK1` payload (see module docs).
    pub fn encode(&self) -> Vec<u8> {
        let rows = self.len();
        let mut out = Vec::with_capacity(HEADER_LEN + rows * ROW_BYTES);
        out.extend_from_slice(CHUNK_MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(rows as u32).to_le_bytes());
        for v in &self.tick {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.tenant {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.route {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.sample {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.variant {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.scheme);
        out.extend_from_slice(&self.degraded);
        for v in &self.verdict {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.queue_ns {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.infer_ns {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.trace {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.nscores);
        for col in &self.scores {
            for v in col {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a sealed payload, validating magic, version, row count,
    /// exact length, and every scheme code.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the caller is responsible for quarantining
    /// the source file.
    // lint-ok(crate-error-types): the reason string is context for the caller, which wraps it in `TelemetryError::Corrupt` together with the source path the codec cannot know.
    pub fn decode(payload: &[u8]) -> Result<Chunk, String> {
        if payload.len() < HEADER_LEN {
            return Err(format!(
                "truncated chunk header: {} bytes, need {HEADER_LEN}",
                payload.len()
            ));
        }
        let (magic, rest) = payload.split_at(8);
        if magic != CHUNK_MAGIC {
            return Err("bad chunk magic".into());
        }
        let mut cur = Cursor::new(rest);
        let version = cur.u32()?;
        if version != VERSION {
            return Err(format!("unsupported chunk version {version}"));
        }
        let rows = cur.u32()? as usize;
        let expect = HEADER_LEN + rows * ROW_BYTES;
        if payload.len() != expect {
            return Err(format!(
                "length mismatch: {rows} rows need {expect} bytes, file carries {}",
                payload.len()
            ));
        }
        let mut chunk = Chunk::with_capacity(rows);
        chunk.tick = cur.u64_vec(rows)?;
        chunk.tenant = cur.u32_vec(rows)?;
        chunk.route = cur.u32_vec(rows)?;
        chunk.sample = cur.u32_vec(rows)?;
        chunk.variant = cur.u32_vec(rows)?;
        chunk.scheme = cur.u8_vec(rows)?;
        chunk.degraded = cur.u8_vec(rows)?;
        chunk.verdict = cur.i32_vec(rows)?;
        chunk.queue_ns = cur.u64_vec(rows)?;
        chunk.infer_ns = cur.u64_vec(rows)?;
        chunk.trace = cur.u64_vec(rows)?;
        chunk.nscores = cur.u8_vec(rows)?;
        for col in &mut chunk.scores {
            *col = cur.f32_vec(rows)?;
        }
        if !cur.is_done() {
            return Err("trailing bytes after columns".into());
        }
        for &code in &chunk.scheme {
            if scheme_from_code(code).is_none() {
                return Err(format!("unknown scheme code {code}"));
            }
        }
        for &d in &chunk.degraded {
            if d > 1 {
                return Err(format!("non-boolean degraded byte {d}"));
            }
        }
        Ok(chunk)
    }
}

/// A bounds-checked little-endian reader over a byte slice.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, off: 0 }
    }

    pub(crate) fn is_done(&self) -> bool {
        self.off == self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let slice = self
            .data
            .get(self.off..self.off + n)
            .ok_or_else(|| "unexpected end of data".to_string())?;
        self.off += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        self.take(N)?
            .try_into()
            .map_err(|_| "unexpected end of data".to_string())
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.array::<1>()?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.array()?))
    }

    fn u8_vec(&mut self, n: usize) -> Result<Vec<u8>, String> {
        Ok(self.take(n)?.to_vec())
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, String> {
        self.take(n * 4).map(|s| {
            s.chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
    }

    fn i32_vec(&mut self, n: usize) -> Result<Vec<i32>, String> {
        self.take(n * 4).map(|s| {
            s.chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
    }

    fn u64_vec(&mut self, n: usize) -> Result<Vec<u64>, String> {
        self.take(n * 8).map(|s| {
            s.chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect()
        })
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, String> {
        self.take(n * 4).map(|s| {
            s.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_magnet::{DefenseScheme, Verdict};

    pub(crate) fn sample_row(i: usize) -> TelemetryRow {
        TelemetryRow::new(
            1000 + i as u64 * 10,
            (i % 3) as u32,
            (i % 2) as u32,
            i as u32,
            DefenseScheme::ALL[i % 4],
            i.is_multiple_of(5),
            if i.is_multiple_of(4) {
                Verdict::Detected
            } else {
                Verdict::Classified(i % 10)
            },
            50 + i as u64,
            200 + i as u64,
            i as u64 + 1,
            &[i as f32 * 0.5, 1.0 / (i as f32 + 1.0), -0.25, 3.0],
        )
        .with_variant((i % 2) as u32 + 1)
    }

    fn filled(n: usize) -> Chunk {
        let mut c = Chunk::with_capacity(n);
        for i in 0..n {
            c.push(&sample_row(i));
        }
        c
    }

    #[test]
    fn encode_decode_roundtrip() {
        for n in [0usize, 1, 7, 64] {
            let chunk = filled(n);
            let decoded = Chunk::decode(&chunk.encode()).unwrap();
            assert_eq!(decoded.len(), n);
            for i in 0..n {
                assert_eq!(decoded.row(i).unwrap(), sample_row(i), "row {i}");
            }
        }
    }

    #[test]
    fn every_strict_prefix_and_extension_rejected() {
        let bytes = filled(5).encode();
        for cut in 0..bytes.len() {
            assert!(Chunk::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(Chunk::decode(&long).is_err());
    }

    #[test]
    fn bad_magic_version_and_scheme_rejected() {
        let good = filled(3).encode();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(Chunk::decode(&bad).unwrap_err().contains("magic"));
        let mut bad = good.clone();
        bad[8] = 7;
        assert!(Chunk::decode(&bad).unwrap_err().contains("version"));
        // Corrupt the first scheme byte to an unknown code.
        let scheme_off = HEADER_LEN + 3 * (8 + 4 + 4 + 4 + 4);
        let mut bad = good.clone();
        bad[scheme_off] = 200;
        assert!(Chunk::decode(&bad).unwrap_err().contains("scheme"));
    }

    #[test]
    fn stats_cover_all_columns() {
        let chunk = filled(20);
        let s = chunk.stats();
        assert_eq!(s.rows, 20);
        assert_eq!(s.tick_min, 1000);
        assert_eq!(s.tick_max, 1190);
        assert_eq!((s.tenant_min, s.tenant_max), (0, 2));
        assert_eq!((s.route_min, s.route_max), (0, 1));
        assert_eq!((s.variant_min, s.variant_max), (1, 2));
        assert_eq!(s.scheme_mask, 0b1111);
        assert!(s.any_degraded && !s.all_degraded);
        assert!(s.any_detected && !s.all_detected);
        assert_eq!(s.score_min[0], 0.0);
        assert_eq!(s.score_max[0], 19.0 * 0.5);
        // Column 3 is constant.
        assert_eq!((s.score_min[3], s.score_max[3]), (3.0, 3.0));
    }

    #[test]
    fn stats_encode_roundtrip() {
        let stats = filled(9).stats();
        let mut buf = Vec::new();
        stats.encode_into(&mut buf);
        assert_eq!(buf.len(), STATS_BYTES);
        assert_eq!(ChunkStats::decode(&buf).unwrap(), stats);
        assert!(ChunkStats::decode(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn rows_iterates_in_append_order() {
        let chunk = filled(6);
        let ticks: Vec<u64> = chunk.rows().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![1000, 1010, 1020, 1030, 1040, 1050]);
    }
}
