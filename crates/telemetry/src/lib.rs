//! adv-telemetry: a columnar request-telemetry store for the serving stack.
//!
//! The serving engine answers a request and forgets it. This crate is the
//! memory: one [`TelemetryRow`] per served request — timestamp tick,
//! tenant/route key, per-detector scores, verdict, degraded flag, defense
//! scheme, queue and inference latency — recorded into an append-only
//! **columnar chunk store** and queryable by time range long after the
//! traffic is gone. That is what makes drift detection ("did detector score
//! distributions shift this hour?"), attack forensics ("what did the
//! campaign that tripped the breaker look like?"), and replay-before-promote
//! ("would the candidate config have flipped yesterday's verdicts?")
//! possible at all.
//!
//! * [`chunk`] — fixed-capacity struct-of-arrays chunks: every row field is
//!   a contiguous column, with per-column min/max stats for query pruning.
//! * [`store`] — [`ChunkStore`] (writer) seals full chunks through
//!   `adv-store`'s atomic-write + `ADVSTOR1` CRC envelope and records each
//!   sealed chunk's stats in a CRC-framed manifest journal; a `kill -9`
//!   loses at most the open chunk's tail. [`ChunkReader`] replays the
//!   manifest read-only; chunks that fail CRC or decode are quarantined
//!   with a logged reason, never silently skipped and never trusted.
//! * [`recorder`] — [`TelemetryRecorder`] puts a bounded, non-blocking
//!   channel in front of the writer. A full buffer **drops** rows (counted
//!   in `telemetry.rows_dropped`); recording must never backpressure
//!   serving, and the `serve_throughput` bench pins the enabled-vs-disabled
//!   cost. [`TelemetrySink`] implements `adv_serve::ResponseObserver`, so
//!   plugging telemetry into a `ServeEngine` is one config field.
//! * [`query`] — time-indexed range queries with chunk pruning via column
//!   stats, plus streaming windowed aggregation ([`drift_windows`]): row
//!   counts, detected/degraded rates, and fixed-bucket quantile sketches of
//!   detector scores per window.
//! * [`replay`] — feeds a recorded time range back through any
//!   `adv_magnet::DefensePipeline` under two schemes and reports verdict
//!   flips and attack success rates ([`replay_range`]) — the A/B gate to
//!   run before promoting a defense config.
//!
//! The chunk/bucket/query shape follows the columnar time-series stores in
//! the rerun ecosystem (`re_arrow_store`'s bucketed columns and
//! `re_query_cache`'s range views), without Arrow itself: the row schema is
//! fixed, so plain typed columns beat a generic array layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod query;
pub mod recorder;
pub mod replay;
pub mod row;
pub mod store;

mod obs;

pub use chunk::{Chunk, ChunkStats};
pub use query::{drift_windows, query, QueryResult, RowFilter, ScoreSketch, WindowAggregate};
pub use recorder::{RecorderConfig, TelemetryRecorder, TelemetrySink};
pub use replay::{replay_range, ReplayReport, SampleProvider, SchemeOutcome, VecSamples};
pub use row::{TelemetryRow, MAX_DETECTORS};
pub use store::{ChunkReader, ChunkStore, ManifestEntry};

use std::path::PathBuf;

/// Metric names this crate publishes through `adv-obs`. Exported so CI
/// schema checks and tests can grep for them.
pub mod metric_names {
    /// Rows appended to the open chunk by the writer.
    pub const ROWS_RECORDED: &str = "telemetry.rows_recorded";
    /// Rows dropped because the recording buffer was full (or the writer
    /// was gone). Drop-not-block is the recording contract.
    pub const ROWS_DROPPED: &str = "telemetry.rows_dropped";
    /// Chunks sealed to disk and entered into the manifest.
    pub const CHUNKS_SEALED: &str = "telemetry.chunks_sealed";
    /// Chunk or manifest payloads rejected on read (CRC or decode); every
    /// rejection is also quarantined through `adv-store`.
    pub const CRC_FAILURES: &str = "telemetry.crc_failures";
    /// Chunks a range query skipped entirely via column-stats pruning.
    pub const QUERY_CHUNKS_PRUNED: &str = "telemetry.query_chunks_pruned";
}

/// Errors surfaced by the telemetry store.
#[derive(Debug)]
pub enum TelemetryError {
    /// An underlying artifact-store operation failed.
    Store(adv_store::StoreError),
    /// A telemetry file failed validation after CRC passed (format drift or
    /// garbage); the file has been quarantined.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What the decoder rejected.
        reason: String,
    },
    /// A replayed batch failed in the defense pipeline.
    Pipeline(String),
    /// The recorder's background writer failed or is gone.
    Recorder(String),
    /// Rejected configuration (zero-sized chunks, inverted time ranges…).
    InvalidConfig(String),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Store(e) => write!(f, "store error: {e}"),
            TelemetryError::Corrupt { path, reason } => {
                write!(f, "corrupt telemetry file {}: {reason}", path.display())
            }
            TelemetryError::Pipeline(msg) => write!(f, "replay pipeline failed: {msg}"),
            TelemetryError::Recorder(msg) => write!(f, "telemetry recorder failed: {msg}"),
            TelemetryError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adv_store::StoreError> for TelemetryError {
    fn from(e: adv_store::StoreError) -> Self {
        TelemetryError::Store(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TelemetryError>;
