//! Time-indexed range queries and windowed drift aggregation.
//!
//! Both entry points run off a [`ChunkReader`]'s manifest: chunks whose
//! column statistics prove they cannot contain a matching row are skipped
//! without being opened (`telemetry.query_chunks_pruned`), the rest are
//! decoded and scanned. Chunks that fail validation on load have already
//! been quarantined and logged by the store layer; queries count them
//! ([`QueryResult::chunks_rejected`]) and keep going — a forensics query
//! should degrade, not die, on one bad file.

use crate::chunk::ChunkStats;
use crate::row::scheme_code;
use crate::store::ChunkReader;
use crate::{metric_names, obs, Result, TelemetryError, TelemetryRow, MAX_DETECTORS};
use adv_magnet::{DefenseScheme, Verdict};
use std::ops::Range;

/// Column predicates of a range query; `None` fields match everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowFilter {
    /// Match only this tenant key.
    pub tenant: Option<u32>,
    /// Match only this route key.
    pub route: Option<u32>,
    /// Match only rows served by this model-zoo variant (the A/B axis of
    /// replay comparisons).
    pub variant: Option<u32>,
    /// Match only rows served under this scheme.
    pub scheme: Option<DefenseScheme>,
    /// Match only rows with this degraded flag.
    pub degraded: Option<bool>,
    /// Match only detected (`true`) or classified (`false`) rows.
    pub detected: Option<bool>,
}

impl RowFilter {
    /// `true` when `row` satisfies every set predicate.
    pub fn matches(&self, row: &TelemetryRow) -> bool {
        self.tenant.is_none_or(|t| row.tenant == t)
            && self.route.is_none_or(|r| row.route == r)
            && self.variant.is_none_or(|v| row.variant == v)
            && self.scheme.is_none_or(|s| row.scheme == s)
            && self.degraded.is_none_or(|d| row.degraded == d)
            && self
                .detected
                .is_none_or(|d| (row.verdict == Verdict::Detected) == d)
    }

    /// `true` when `stats` prove the chunk holds no row matching both this
    /// filter and the tick `range` — the pruning test.
    pub fn prunes(&self, stats: &ChunkStats, range: &Range<u64>) -> bool {
        if stats.rows == 0 || stats.tick_max < range.start || stats.tick_min >= range.end {
            return true;
        }
        if let Some(t) = self.tenant {
            if t < stats.tenant_min || t > stats.tenant_max {
                return true;
            }
        }
        if let Some(r) = self.route {
            if r < stats.route_min || r > stats.route_max {
                return true;
            }
        }
        if let Some(v) = self.variant {
            if v < stats.variant_min || v > stats.variant_max {
                return true;
            }
        }
        if let Some(s) = self.scheme {
            let bit = 1u8.checked_shl(u32::from(scheme_code(s))).unwrap_or(0);
            if stats.scheme_mask & bit == 0 {
                return true;
            }
        }
        match self.degraded {
            Some(true) if !stats.any_degraded => return true,
            Some(false) if stats.all_degraded => return true,
            _ => {}
        }
        match self.detected {
            Some(true) if !stats.any_detected => return true,
            Some(false) if stats.all_detected => return true,
            _ => {}
        }
        false
    }
}

/// The rows a range query matched, plus how the chunk index behaved.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Matching rows in chunk-seal order (ascending tick for a single
    /// recorder, whose ticks are monotonic).
    pub rows: Vec<TelemetryRow>,
    /// Chunks opened and scanned.
    pub chunks_scanned: usize,
    /// Chunks skipped entirely via column statistics.
    pub chunks_pruned: usize,
    /// Chunks that failed validation on load (already quarantined and
    /// logged by the store layer).
    pub chunks_rejected: usize,
}

/// Scans `[range.start, range.end)` of the tick index for rows matching
/// `filter`.
///
/// # Errors
///
/// I/O errors reading healthy files; corrupt chunks are counted in
/// [`QueryResult::chunks_rejected`] rather than failing the query.
pub fn query(reader: &ChunkReader, range: Range<u64>, filter: &RowFilter) -> Result<QueryResult> {
    let mut out = QueryResult::default();
    scan(reader, &range, filter, &mut out, |row, out| {
        out.rows.push(*row);
    })?;
    Ok(out)
}

/// The shared chunk loop under [`query`] and [`drift_windows`]: prune via
/// stats, load, scan, hand matching rows to `visit`.
fn scan<F>(
    reader: &ChunkReader,
    range: &Range<u64>,
    filter: &RowFilter,
    out: &mut QueryResult,
    mut visit: F,
) -> Result<()>
where
    F: FnMut(&TelemetryRow, &mut QueryResult),
{
    for entry in reader.entries() {
        if filter.prunes(&entry.stats, range) {
            out.chunks_pruned += 1;
            obs::bump(metric_names::QUERY_CHUNKS_PRUNED);
            continue;
        }
        let chunk = match reader.load_chunk(entry) {
            Ok(chunk) => chunk,
            Err(
                TelemetryError::Corrupt { .. }
                | TelemetryError::Store(adv_store::StoreError::Corrupt { .. }),
            ) => {
                out.chunks_rejected += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        out.chunks_scanned += 1;
        for row in chunk.rows() {
            if range.contains(&row.tick) && filter.matches(&row) {
                visit(&row, out);
            }
        }
    }
    Ok(())
}

/// A fixed-bucket quantile sketch of detector scores on `adv-obs`'s 1–2–5
/// decade ladder ([`adv_obs::SCORE_BOUNDS`]). Nearest-rank quantiles come
/// back as the upper bound of the selected bucket, clamped to the observed
/// min/max — the same contract as the obs histograms, cheap enough to keep
/// one per window per detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreSketch {
    counts: Vec<u64>,
    total: u64,
    min: f32,
    max: f32,
}

impl Default for ScoreSketch {
    fn default() -> ScoreSketch {
        ScoreSketch {
            counts: vec![0; adv_obs::SCORE_BOUNDS.len() + 1],
            total: 0,
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
        }
    }
}

impl ScoreSketch {
    /// Records one score.
    pub fn record(&mut self, score: f32) {
        let bucket = adv_obs::SCORE_BOUNDS
            .iter()
            .position(|&b| f64::from(score) <= b)
            .unwrap_or(adv_obs::SCORE_BOUNDS.len());
        if let Some(slot) = self.counts.get_mut(bucket) {
            *slot += 1;
        }
        self.total += 1;
        self.min = self.min.min(score);
        self.max = self.max.max(score);
    }

    /// Scores recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded score (`None` when empty).
    pub fn observed_min(&self) -> Option<f32> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded score (`None` when empty).
    pub fn observed_max(&self) -> Option<f32> {
        (self.total > 0).then_some(self.max)
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`; `None` when the
    /// sketch is empty.
    pub fn quantile(&self, q: f64) -> Option<f32> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = adv_obs::SCORE_BOUNDS
                    .get(i)
                    .copied()
                    .unwrap_or(f64::from(self.max)) as f32;
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// Aggregates for one time window of a [`drift_windows`] sweep.
#[derive(Debug, Clone, Default)]
pub struct WindowAggregate {
    /// Window start tick (inclusive).
    pub start_tick: u64,
    /// Window end tick (exclusive).
    pub end_tick: u64,
    /// Matching rows that fell in the window.
    pub rows: u64,
    /// Rows whose verdict was Detected.
    pub detected: u64,
    /// Rows served degraded.
    pub degraded: u64,
    /// Per-detector score sketches (index = detector position).
    pub sketches: Vec<ScoreSketch>,
}

impl WindowAggregate {
    /// Fraction of the window's rows flagged Detected.
    pub fn detected_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.detected as f64 / self.rows as f64
        }
    }

    /// Fraction of the window's rows served degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.degraded as f64 / self.rows as f64
        }
    }
}

/// Splits `range` into `windows` equal windows and streams every matching
/// row into per-window counts and per-detector score sketches — the drift
/// query ("did score distributions move this hour?") as one pass over the
/// store.
///
/// # Errors
///
/// [`TelemetryError::InvalidConfig`] for zero/absurd window counts or an
/// empty range; I/O errors as in [`query`].
pub fn drift_windows(
    reader: &ChunkReader,
    range: Range<u64>,
    windows: usize,
    filter: &RowFilter,
) -> Result<Vec<WindowAggregate>> {
    if windows == 0 || windows > 65_536 {
        return Err(TelemetryError::InvalidConfig(format!(
            "window count {windows} outside 1..=65536"
        )));
    }
    if range.end <= range.start {
        return Err(TelemetryError::InvalidConfig(format!(
            "empty tick range {}..{}",
            range.start, range.end
        )));
    }
    let span = range.end - range.start;
    let width = span.div_ceil(windows as u64).max(1);
    let mut out: Vec<WindowAggregate> = (0..windows as u64)
        .map(|w| WindowAggregate {
            start_tick: range.start.saturating_add(w * width),
            end_tick: range.start.saturating_add((w + 1) * width).min(range.end),
            sketches: vec![ScoreSketch::default(); MAX_DETECTORS],
            ..WindowAggregate::default()
        })
        .collect();
    let mut stats = QueryResult::default();
    scan(reader, &range, filter, &mut stats, |row, _| {
        let idx = ((row.tick - range.start) / width) as usize;
        let Some(window) = out.get_mut(idx) else {
            return;
        };
        window.rows += 1;
        if row.verdict == Verdict::Detected {
            window.detected += 1;
        }
        if row.degraded {
            window.degraded += 1;
        }
        for (sketch, &score) in window.sketches.iter_mut().zip(row.live_scores()) {
            sketch.record(score);
        }
    })?;
    Ok(out)
}
