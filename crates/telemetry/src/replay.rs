//! Traffic replay: feed a recorded time range back through a defense
//! pipeline and A/B-compare schemes.
//!
//! Rows store sample *ids*, not tensors — a [`SampleProvider`] resolves
//! ids back to inputs (and optional ground-truth labels) at replay time.
//! [`replay_range`] then runs every resolved input through the pipeline
//! under two schemes and reports verdict flips, detection rates, and
//! attack success rates — the gate to run before promoting a defense
//! config: "would the candidate have flipped yesterday's verdicts?"

use crate::query::{query, RowFilter};
use crate::store::ChunkReader;
use crate::{Result, TelemetryError};
use adv_magnet::{DefensePipeline, DefenseScheme, Verdict};
use adv_tensor::Tensor;
use std::collections::HashMap;
use std::ops::Range;

/// Resolves recorded sample ids back to inputs for replay.
pub trait SampleProvider {
    /// The input tensor (per-item shape, e.g. `[C, H, W]`) and optional
    /// ground-truth label behind `id`; `None` when the sample is no longer
    /// available (counted, not fatal).
    fn sample(&self, id: u32) -> Option<(Tensor, Option<usize>)>;
}

/// An in-memory [`SampleProvider`]: sample id = index into a list.
#[derive(Debug, Default)]
pub struct VecSamples {
    samples: Vec<(Tensor, Option<usize>)>,
}

impl VecSamples {
    /// Wraps a list of (input, optional truth label) pairs.
    pub fn new(samples: Vec<(Tensor, Option<usize>)>) -> VecSamples {
        VecSamples { samples }
    }

    /// Number of held samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are held.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl SampleProvider for VecSamples {
    fn sample(&self, id: u32) -> Option<(Tensor, Option<usize>)> {
        self.samples.get(id as usize).cloned()
    }
}

/// One scheme's aggregate outcome over the replayed rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// The scheme replayed.
    pub scheme: DefenseScheme,
    /// Inputs flagged Detected.
    pub detected: u64,
    /// Inputs defended (detected or correctly classified) among those with
    /// a ground-truth label.
    pub defended: u64,
    /// Fraction of replayed inputs flagged Detected.
    pub detected_rate: f64,
    /// Attack success rate: fraction of labelled inputs neither detected
    /// nor correctly classified (`NaN`-free: 0 when nothing is labelled).
    pub attack_success_rate: f64,
}

/// The A/B result of [`replay_range`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Rows the range query matched.
    pub rows: u64,
    /// Rows whose sample id the provider could not resolve (skipped).
    pub unresolved: u64,
    /// Replayed inputs carrying a ground-truth label (the ASR denominator).
    pub with_truth: u64,
    /// Outcome under the first scheme.
    pub a: SchemeOutcome,
    /// Outcome under the second scheme.
    pub b: SchemeOutcome,
    /// Inputs whose verdict differs between the two schemes.
    pub verdict_flips: u64,
    /// Sample ids of the first flipped inputs (capped at 64 for reporting).
    pub flipped_samples: Vec<u32>,
}

/// How many flipped sample ids a report retains.
const FLIP_EXAMPLES: usize = 64;

/// Replays the recorded rows in `range` (post-`filter`) through `pipeline`
/// under `scheme_a` and `scheme_b`, batching resolved inputs `batch_size`
/// at a time (grouped by shape).
///
/// # Errors
///
/// [`TelemetryError::InvalidConfig`] for a zero batch size;
/// [`TelemetryError::Pipeline`] when a replayed batch fails; query errors
/// as in [`query`].
#[allow(clippy::too_many_arguments)]
pub fn replay_range(
    reader: &ChunkReader,
    provider: &dyn SampleProvider,
    pipeline: &dyn DefensePipeline,
    range: Range<u64>,
    filter: &RowFilter,
    scheme_a: DefenseScheme,
    scheme_b: DefenseScheme,
    batch_size: usize,
) -> Result<ReplayReport> {
    if batch_size == 0 {
        return Err(TelemetryError::InvalidConfig(
            "batch_size must be at least 1".into(),
        ));
    }
    let result = query(reader, range, filter)?;
    let mut unresolved = 0u64;
    // Resolve ids, then group same-shaped inputs so batches stack cleanly.
    let mut resolved: Vec<(u32, Tensor, Option<usize>)> = Vec::with_capacity(result.rows.len());
    for row in &result.rows {
        match provider.sample(row.sample) {
            Some((tensor, truth)) => resolved.push((row.sample, tensor, truth)),
            None => unresolved += 1,
        }
    }
    let mut by_shape: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
    for (i, (_, tensor, _)) in resolved.iter().enumerate() {
        by_shape
            .entry(tensor.shape().dims().to_vec())
            .or_default()
            .push(i);
    }

    let mut verdicts_a: Vec<Option<Verdict>> = vec![None; resolved.len()];
    let mut verdicts_b: Vec<Option<Verdict>> = vec![None; resolved.len()];
    // Deterministic batch order regardless of hash iteration.
    let mut shapes: Vec<Vec<usize>> = by_shape.keys().cloned().collect();
    shapes.sort();
    for shape in shapes {
        let indices = by_shape.get(&shape).map(Vec::as_slice).unwrap_or(&[]);
        for batch in indices.chunks(batch_size) {
            let inputs: Vec<Tensor> = batch
                .iter()
                .filter_map(|&i| resolved.get(i).map(|(_, t, _)| t.clone()))
                .collect();
            let stacked = Tensor::stack(&inputs)
                .map_err(|e| TelemetryError::Pipeline(format!("stack: {e}")))?;
            for (scheme, out) in [(scheme_a, &mut verdicts_a), (scheme_b, &mut verdicts_b)] {
                let (verdicts, _) = pipeline
                    .classify_batch(&stacked, scheme)
                    .map_err(|e| TelemetryError::Pipeline(e.to_string()))?;
                for (&i, verdict) in batch.iter().zip(verdicts) {
                    if let Some(slot) = out.get_mut(i) {
                        *slot = Some(verdict);
                    }
                }
            }
        }
    }

    let mut with_truth = 0u64;
    let mut verdict_flips = 0u64;
    let mut flipped_samples = Vec::new();
    let tally = |verdicts: &[Option<Verdict>], scheme: DefenseScheme| {
        let mut detected = 0u64;
        let mut defended = 0u64;
        for ((_, _, truth), verdict) in resolved.iter().zip(verdicts) {
            let Some(verdict) = verdict else { continue };
            if *verdict == Verdict::Detected {
                detected += 1;
            }
            if let Some(truth) = truth {
                if verdict.defends(*truth) {
                    defended += 1;
                }
            }
        }
        (scheme, detected, defended)
    };
    let (_, detected_a, defended_a) = tally(&verdicts_a, scheme_a);
    let (_, detected_b, defended_b) = tally(&verdicts_b, scheme_b);
    for ((sample, _, truth), (va, vb)) in resolved
        .iter()
        .zip(verdicts_a.iter().zip(verdicts_b.iter()))
    {
        if truth.is_some() {
            with_truth += 1;
        }
        if let (Some(va), Some(vb)) = (va, vb) {
            if va != vb {
                verdict_flips += 1;
                if flipped_samples.len() < FLIP_EXAMPLES {
                    flipped_samples.push(*sample);
                }
            }
        }
    }
    let replayed = resolved.len() as u64;
    let outcome = |scheme, detected: u64, defended: u64| SchemeOutcome {
        scheme,
        detected,
        defended,
        detected_rate: if replayed == 0 {
            0.0
        } else {
            detected as f64 / replayed as f64
        },
        attack_success_rate: if with_truth == 0 {
            0.0
        } else {
            1.0 - defended as f64 / with_truth as f64
        },
    };
    Ok(ReplayReport {
        rows: result.rows.len() as u64,
        unresolved,
        with_truth,
        a: outcome(scheme_a, detected_a, defended_a),
        b: outcome(scheme_b, detected_b, defended_b),
        verdict_flips,
        flipped_samples,
    })
}
