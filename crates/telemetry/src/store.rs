//! The on-disk chunk store: a sealing writer and a read-only reader.
//!
//! Layout under the store directory:
//!
//! ```text
//! chunk-<seq>.tchk   sealed chunk (ADVTCHK1 payload in an ADVSTOR1 envelope)
//! manifest.jrnl      CRC-framed journal; one record per sealed chunk:
//!                    seq u64 | ChunkStats
//! ```
//!
//! Crash contract: rows live in the open in-memory chunk until it fills (or
//! [`ChunkStore::flush`] is called); sealing writes the chunk file through
//! `adv-store`'s atomic write first and appends the manifest record second.
//! A `kill -9` therefore loses at most the open chunk's tail; the worst
//! torn state is an orphan chunk file with no manifest record, which the
//! reader simply never consults. Readers replay the manifest without taking
//! append access, so queries run against a live writer's directory.
//!
//! Rejection is never silent: a chunk that fails CRC is quarantined by
//! `adv-store` itself, and a CRC-valid chunk the decoder rejects (format
//! drift, garbage, stats mismatch) is quarantined here with a logged
//! reason — both paths bump `telemetry.crc_failures`.

use crate::chunk::{Chunk, ChunkStats, Cursor, STATS_BYTES};
use crate::row::TelemetryRow;
use crate::{metric_names, obs, Result, TelemetryError};
use adv_store::Journal;
use std::path::{Path, PathBuf};

/// Context fingerprint for the manifest journal: ties the records to this
/// crate's manifest format so a foreign journal at the same path is reset
/// (writer) or read as empty (reader) instead of misparsed.
fn manifest_context() -> u64 {
    u64::from(adv_store::crc32(b"adv-telemetry-manifest-v1"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.jrnl")
}

fn chunk_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("chunk-{seq}.tchk"))
}

/// One manifest record: a sealed chunk's sequence number and its
/// per-column statistics (everything pruning needs, no file opens).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManifestEntry {
    /// Sequence number; the chunk file is `chunk-<seq>.tchk`.
    pub seq: u64,
    /// Column statistics captured at seal time.
    pub stats: ChunkStats,
}

impl ManifestEntry {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + STATS_BYTES);
        out.extend_from_slice(&self.seq.to_le_bytes());
        self.stats.encode_into(&mut out);
        out
    }

    fn decode(record: &[u8]) -> std::result::Result<ManifestEntry, String> {
        let mut cur = Cursor::new(record);
        let seq = cur.u64()?;
        let stats = ChunkStats::decode(record.get(8..).unwrap_or(&[]))?;
        Ok(ManifestEntry { seq, stats })
    }
}

/// Decodes manifest records, skipping (never trusting) undecodable ones
/// with a logged reason and a `telemetry.crc_failures` bump.
fn decode_manifest(records: &[Vec<u8>], path: &Path) -> Vec<ManifestEntry> {
    let mut entries = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        match ManifestEntry::decode(record) {
            Ok(entry) => entries.push(entry),
            Err(reason) => {
                obs::bump(metric_names::CRC_FAILURES);
                eprintln!(
                    "[adv-telemetry] rejecting manifest record {i} in {}: {reason}",
                    path.display()
                );
            }
        }
    }
    entries
}

/// The sealing writer: accumulates rows in an open columnar chunk and
/// persists full chunks crash-safely. Single-owner; the concurrent front
/// door is [`crate::TelemetryRecorder`].
#[derive(Debug)]
pub struct ChunkStore {
    dir: PathBuf,
    chunk_rows: usize,
    manifest: Journal,
    next_seq: u64,
    open: Chunk,
    sealed: u64,
}

impl ChunkStore {
    /// Opens (or creates) the store in `dir`, sealing `chunk_rows` rows per
    /// chunk. An existing manifest is replayed and appending resumes at the
    /// next sequence number.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::InvalidConfig`] on a zero chunk size; store errors
    /// from the manifest journal.
    pub fn open(dir: impl AsRef<Path>, chunk_rows: usize) -> Result<ChunkStore> {
        if chunk_rows == 0 {
            return Err(TelemetryError::InvalidConfig(
                "chunk_rows must be at least 1".into(),
            ));
        }
        let dir = dir.as_ref().to_path_buf();
        let manifest = Journal::open(manifest_path(&dir), manifest_context())?;
        let entries = decode_manifest(manifest.records(), manifest.path());
        let next_seq = entries.iter().map(|e| e.seq + 1).max().unwrap_or(0);
        Ok(ChunkStore {
            dir,
            chunk_rows,
            manifest,
            next_seq,
            open: Chunk::with_capacity(chunk_rows),
            sealed: entries.len() as u64,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows buffered in the open (unsealed) chunk.
    pub fn open_rows(&self) -> usize {
        self.open.len()
    }

    /// Chunks sealed over the store's lifetime (replayed ones included).
    pub fn sealed_chunks(&self) -> u64 {
        self.sealed
    }

    /// Appends one row, sealing the open chunk when it reaches capacity.
    ///
    /// # Errors
    ///
    /// Seal-path store errors. The row itself is always retained in the
    /// open chunk — on error the caller may simply retry later via
    /// [`flush`](Self::flush); see [`crate::TelemetryRecorder`] for the
    /// bounded-retry policy.
    pub fn append(&mut self, row: &TelemetryRow) -> Result<()> {
        self.open.push(row);
        obs::bump(metric_names::ROWS_RECORDED);
        if self.open.len() >= self.chunk_rows {
            self.seal()?;
        }
        Ok(())
    }

    /// Seals the open chunk (if non-empty): chunk file first, manifest
    /// record second. Returns the sealed sequence number.
    ///
    /// On error the open chunk is kept intact so the seal can be retried;
    /// a chunk file orphaned by a failure between the two writes is
    /// harmlessly overwritten by the retry.
    ///
    /// # Errors
    ///
    /// Store errors from the chunk write or the manifest append.
    pub fn seal(&mut self) -> Result<Option<u64>> {
        if self.open.is_empty() {
            return Ok(None);
        }
        let seq = self.next_seq;
        adv_store::save_artifact(chunk_path(&self.dir, seq), &self.open.encode())?;
        let entry = ManifestEntry {
            seq,
            stats: self.open.stats(),
        };
        self.manifest.append(&entry.encode())?;
        self.next_seq = seq + 1;
        self.sealed += 1;
        self.open = Chunk::with_capacity(self.chunk_rows);
        obs::bump(metric_names::CHUNKS_SEALED);
        Ok(Some(seq))
    }

    /// Drops the open chunk's rows without sealing them, returning how many
    /// were discarded. The recorder's last resort when repeated seal
    /// failures would otherwise grow the open chunk without bound — callers
    /// must count the loss (`telemetry.rows_dropped`).
    pub fn discard_open(&mut self) -> usize {
        let n = self.open.len();
        self.open = Chunk::with_capacity(self.chunk_rows);
        n
    }

    /// Seals any partial open chunk — call before querying a live store or
    /// at shutdown.
    ///
    /// # Errors
    ///
    /// Same as [`seal`](Self::seal).
    pub fn flush(&mut self) -> Result<()> {
        self.seal().map(|_| ())
    }
}

/// The read-only side: replays the manifest without contending for append
/// access and loads sealed chunks on demand.
#[derive(Debug)]
pub struct ChunkReader {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
}

impl ChunkReader {
    /// Opens a reader over `dir`, replaying the manifest's valid prefix. A
    /// missing or foreign manifest reads as an empty store.
    ///
    /// # Errors
    ///
    /// Filesystem errors from reading the manifest.
    pub fn open(dir: impl AsRef<Path>) -> Result<ChunkReader> {
        let dir = dir.as_ref().to_path_buf();
        let path = manifest_path(&dir);
        let records = Journal::read_records(&path, manifest_context())?;
        let entries = decode_manifest(&records, &path);
        Ok(ChunkReader { dir, entries })
    }

    /// The manifest entries, oldest first.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Loads and validates the sealed chunk behind `entry`.
    ///
    /// A CRC failure is quarantined by `adv-store`; a CRC-valid payload the
    /// decoder rejects — or one whose row count / tick range contradicts
    /// the manifest stats — is quarantined here. Both bump
    /// `telemetry.crc_failures` and log the reason; neither is ever
    /// silently skipped.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Store`] (missing or CRC-corrupt file) or
    /// [`TelemetryError::Corrupt`] (decode/stats rejection, after
    /// quarantine).
    pub fn load_chunk(&self, entry: &ManifestEntry) -> Result<Chunk> {
        let path = chunk_path(&self.dir, entry.seq);
        let payload = adv_store::load_artifact(&path).map_err(|e| {
            if matches!(e, adv_store::StoreError::Corrupt { .. }) {
                obs::bump(metric_names::CRC_FAILURES);
                eprintln!(
                    "[adv-telemetry] chunk {} failed envelope validation: {e}",
                    path.display()
                );
            }
            TelemetryError::Store(e)
        })?;
        let reject = |reason: String| {
            obs::bump(metric_names::CRC_FAILURES);
            adv_store::quarantine(&path);
            eprintln!(
                "[adv-telemetry] quarantining undecodable chunk {}: {reason}",
                path.display()
            );
            TelemetryError::Corrupt {
                path: path.clone(),
                reason,
            }
        };
        let chunk = Chunk::decode(&payload).map_err(&reject)?;
        let stats = chunk.stats();
        if stats.rows != entry.stats.rows
            || stats.tick_min != entry.stats.tick_min
            || stats.tick_max != entry.stats.tick_max
        {
            return Err(reject(format!(
                "chunk contradicts manifest stats: {} rows ticks [{}, {}], manifest says {} rows ticks [{}, {}]",
                stats.rows,
                stats.tick_min,
                stats.tick_max,
                entry.stats.rows,
                entry.stats.tick_min,
                entry.stats.tick_max,
            )));
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::TelemetryRow;
    use adv_magnet::{DefenseScheme, Verdict};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_telemetry_store_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn row(i: u64) -> TelemetryRow {
        TelemetryRow::new(
            i * 100,
            0,
            0,
            i as u32,
            DefenseScheme::Full,
            false,
            Verdict::Classified(i as usize % 10),
            1,
            2,
            i,
            &[i as f32, 0.5],
        )
    }

    #[test]
    fn seal_resume_and_read_back() {
        let dir = tmp("roundtrip");
        let mut store = ChunkStore::open(&dir, 4).unwrap();
        for i in 0..10 {
            store.append(&row(i)).unwrap();
        }
        assert_eq!(store.sealed_chunks(), 2);
        assert_eq!(store.open_rows(), 2);
        store.flush().unwrap();
        drop(store);

        // Reopen: sequence numbering resumes past the sealed chunks.
        let mut store = ChunkStore::open(&dir, 4).unwrap();
        assert_eq!(store.sealed_chunks(), 3);
        store.append(&row(10)).unwrap();
        store.flush().unwrap();

        let reader = ChunkReader::open(&dir).unwrap();
        assert_eq!(reader.entries().len(), 4);
        let mut all: Vec<TelemetryRow> = Vec::new();
        for entry in reader.entries() {
            all.extend(reader.load_chunk(entry).unwrap().rows());
        }
        assert_eq!(all.len(), 11);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(*r, row(i as u64));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_on_missing_dir_is_empty() {
        let reader = ChunkReader::open(tmp("missing")).unwrap();
        assert!(reader.entries().is_empty());
    }

    #[test]
    fn corrupt_chunk_is_quarantined_not_trusted() {
        let dir = tmp("corrupt");
        let mut store = ChunkStore::open(&dir, 2).unwrap();
        for i in 0..2 {
            store.append(&row(i)).unwrap();
        }
        let path = chunk_path(&dir, 0);
        // Flip a payload bit: CRC catches it, store quarantines it.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        let err = reader.load_chunk(&reader.entries()[0]).unwrap_err();
        assert!(matches!(err, TelemetryError::Store(_)), "{err}");
        assert!(!path.exists(), "corrupt chunk left in place");
        assert!(path.with_file_name("chunk-0.tchk.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_contradiction_is_rejected() {
        let dir = tmp("swap");
        let mut store = ChunkStore::open(&dir, 2).unwrap();
        for i in 0..4 {
            store.append(&row(i)).unwrap();
        }
        // Swap chunk 1's file for a copy of chunk 0: envelope and decode
        // both pass, but the manifest stats contradict the contents.
        std::fs::copy(chunk_path(&dir, 0), chunk_path(&dir, 1)).unwrap();
        let reader = ChunkReader::open(&dir).unwrap();
        let err = reader.load_chunk(&reader.entries()[1]).unwrap_err();
        assert!(matches!(err, TelemetryError::Corrupt { .. }), "{err}");
        assert!(!chunk_path(&dir, 1).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_works_against_live_writer() {
        let dir = tmp("live");
        let mut store = ChunkStore::open(&dir, 3).unwrap();
        for i in 0..7 {
            store.append(&row(i)).unwrap();
        }
        // Writer still open (one partial chunk in memory); reader sees the
        // two sealed chunks and nothing torn.
        let reader = ChunkReader::open(&dir).unwrap();
        assert_eq!(reader.entries().len(), 2);
        for entry in reader.entries() {
            reader.load_chunk(entry).unwrap();
        }
        store.flush().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
