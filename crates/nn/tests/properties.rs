//! Property-based tests for the network substrate: softmax invariants, loss
//! sanity, model-serialization round-trips over randomized architectures,
//! and optimizer convergence on random quadratics.

use adv_nn::loss::{mae, mse, softmax_cross_entropy};
use adv_nn::optim::{Adam, Optimizer, Sgd};
use adv_nn::serialize::{model_from_bytes, model_to_bytes};
use adv_nn::softmax::{softmax_rows, softmax_rows_with_temperature};
use adv_nn::Param;
use adv_nn::{Activation, LayerSpec, Mode, Sequential};
use adv_tensor::{Shape, Tensor};
use proptest::prelude::*;

proptest! {
    #[test]
    fn softmax_rows_are_distributions(
        logits in proptest::collection::vec(-20.0f32..20.0, 12),
    ) {
        let t = Tensor::from_vec(logits, Shape::matrix(3, 4)).unwrap();
        let p = softmax_rows(&t).unwrap();
        for row in p.as_slice().chunks_exact(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_ordering(
        logits in proptest::collection::vec(-10.0f32..10.0, 5),
    ) {
        let t = Tensor::from_vec(logits.clone(), Shape::matrix(1, 5)).unwrap();
        let p = softmax_rows(&t).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                if logits[i] > logits[j] {
                    prop_assert!(p.as_slice()[i] >= p.as_slice()[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn temperature_flattens_distributions(
        logits in proptest::collection::vec(-5.0f32..5.0, 4),
        t1 in 1.0f32..5.0,
        dt in 1.0f32..40.0,
    ) {
        let t = Tensor::from_vec(logits, Shape::matrix(1, 4)).unwrap();
        let sharp = softmax_rows_with_temperature(&t, t1).unwrap();
        let flat = softmax_rows_with_temperature(&t, t1 + dt).unwrap();
        // Higher temperature cannot increase the max probability.
        prop_assert!(flat.max() <= sharp.max() + 1e-5);
    }

    #[test]
    fn cross_entropy_nonnegative(
        logits in proptest::collection::vec(-10.0f32..10.0, 6),
        label in 0usize..3,
    ) {
        let t = Tensor::from_vec(logits, Shape::matrix(2, 3)).unwrap();
        let (loss, _) = softmax_cross_entropy(&t, &[label, (label + 1) % 3]).unwrap();
        prop_assert!(loss >= -1e-5);
    }

    #[test]
    fn mse_mae_zero_iff_equal(data in proptest::collection::vec(-2.0f32..2.0, 8)) {
        let t = Tensor::from_vec(data, Shape::matrix(2, 4)).unwrap();
        let (l2, _) = mse(&t, &t).unwrap();
        let (l1, _) = mae(&t, &t).unwrap();
        prop_assert_eq!(l2, 0.0);
        prop_assert_eq!(l1, 0.0);
    }

    #[test]
    fn mse_scales_quadratically(data in proptest::collection::vec(-1.0f32..1.0, 6), k in 1.0f32..3.0) {
        let zero = Tensor::zeros(Shape::matrix(1, 6));
        let t = Tensor::from_vec(data, Shape::matrix(1, 6)).unwrap();
        let (l_base, _) = mse(&t, &zero).unwrap();
        let (l_scaled, _) = mse(&t.scale(k), &zero).unwrap();
        prop_assert!((l_scaled - k * k * l_base).abs() < 1e-2 * (1.0 + l_scaled));
    }

    #[test]
    fn serialization_roundtrips_random_mlps(
        hidden in 1usize..12,
        seed in 0u64..500,
        act_tag in 0u8..3,
    ) {
        let act = match act_tag {
            0 => Activation::Relu,
            1 => Activation::Sigmoid,
            _ => Activation::Tanh,
        };
        let specs = vec![
            LayerSpec::Dense { inputs: 4, outputs: hidden },
            LayerSpec::Activation(act),
            LayerSpec::Dense { inputs: hidden, outputs: 3 },
        ];
        let mut net = Sequential::from_specs(&specs, seed).unwrap();
        let mut restored = model_from_bytes(&model_to_bytes(&net)).unwrap();
        let x = Tensor::from_fn(Shape::matrix(2, 4), |i| (i as f32) * 0.3 - 1.0);
        let ya = net.forward(&x, Mode::Eval).unwrap();
        let yb = restored.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(ya, yb);
    }

    #[test]
    fn optimizers_descend_random_quadratics(
        start in proptest::collection::vec(-5.0f32..5.0, 4),
        use_adam in proptest::bool::ANY,
    ) {
        // Minimize ½‖x‖² from a random start; both optimizers must reduce
        // the norm substantially in 100 steps.
        let mut p = Param::new(
            Tensor::from_vec(start.clone(), Shape::vector(4)).unwrap(),
        );
        let initial = p.value.map(|v| v * v).sum();
        let mut sgd = Sgd::new(0.1, 0.5);
        let mut adam = Adam::with_defaults(0.2);
        for _ in 0..100 {
            p.grad = p.value.clone();
            if use_adam {
                adam.step(&mut [&mut p]).unwrap();
            } else {
                sgd.step(&mut [&mut p]).unwrap();
            }
        }
        let finalv = p.value.map(|v| v * v).sum();
        prop_assert!(finalv <= initial * 0.05 + 1e-4, "{} -> {}", initial, finalv);
    }

    #[test]
    fn forward_is_deterministic_in_eval_mode(
        seed in 0u64..100,
        data in proptest::collection::vec(0.0f32..1.0, 8),
    ) {
        let specs = vec![
            LayerSpec::Dense { inputs: 8, outputs: 5 },
            LayerSpec::Activation(Activation::Tanh),
            LayerSpec::Dropout { p: 0.5 },
            LayerSpec::Dense { inputs: 5, outputs: 2 },
        ];
        let mut net = Sequential::from_specs(&specs, seed).unwrap();
        let x = Tensor::from_vec(data, Shape::matrix(1, 8)).unwrap();
        let a = net.forward(&x, Mode::Eval).unwrap();
        let b = net.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(a, b);
    }
}
