//! Finite-difference gradient checks for whole networks.
//!
//! These are the load-bearing tests of the reproduction: every attack in
//! `adv-attacks` differentiates a scalar loss through a full CNN down to the
//! input pixels, so the chained backward pass must agree with central finite
//! differences for every architecture family the paper uses (classifier CNNs
//! with ReLU + max-pool, and sigmoid auto-encoders with avg-pool + upsample).

use adv_nn::{Activation, LayerSpec, Mode, Sequential};
use adv_tensor::ops::Conv2dSpec;
use adv_tensor::{Shape, Tensor};

/// Checks `∂ sum(f(x)) / ∂x` against central differences at probe indices.
fn check_input_gradient(specs: &[LayerSpec], input_shape: Shape, seed: u64, tol: f32) {
    let x = Tensor::from_fn(input_shape, |i| ((i * 29 % 23) as f32 / 23.0) * 0.8 + 0.1);
    let mut net = Sequential::from_specs(specs, seed).unwrap();
    let y = net.forward(&x, Mode::Train).unwrap();
    let dy = Tensor::ones(y.shape().clone());
    let dx = net.backward(&dy).unwrap();

    let eps = 1e-2f32;
    let probes: Vec<usize> = (0..x.len()).step_by((x.len() / 12).max(1)).collect();
    for i in probes {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let mut probe = Sequential::from_specs(specs, seed).unwrap();
        let fp = probe.forward(&xp, Mode::Train).unwrap().sum();
        let fm = probe.forward(&xm, Mode::Train).unwrap().sum();
        let fd = (fp - fm) / (2.0 * eps);
        let got = dx.as_slice()[i];
        assert!(
            (fd - got).abs() < tol * (1.0 + fd.abs()),
            "input grad [{i}]: finite-diff {fd} vs analytic {got}"
        );
    }
}

/// Checks parameter gradients against central differences at probe indices.
fn check_param_gradients(specs: &[LayerSpec], input_shape: Shape, seed: u64, tol: f32) {
    // Non-repeating pattern: avoids max-pool ties, which break finite
    // differences at the (measure-zero) non-differentiable points.
    let x = Tensor::from_fn(input_shape, |i| {
        ((i as u64).wrapping_mul(2_654_435_761) % 97) as f32 / 97.0 * 0.8 + 0.1
    });
    let mut net = Sequential::from_specs(specs, seed).unwrap();
    let y = net.forward(&x, Mode::Train).unwrap();
    net.backward(&Tensor::ones(y.shape().clone())).unwrap();
    let grads: Vec<Tensor> = net.params().iter().map(|p| p.grad.clone()).collect();

    let eps = 1e-2f32;
    for (pi, grad) in grads.iter().enumerate() {
        let probes: Vec<usize> = (0..grad.len()).step_by((grad.len() / 6).max(1)).collect();
        for i in probes {
            let eval = |delta: f32| {
                let mut probe = Sequential::from_specs(specs, seed).unwrap();
                probe.params_mut()[pi].value.as_mut_slice()[i] += delta;
                probe.forward(&x, Mode::Train).unwrap().sum()
            };
            let fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
            let got = grad.as_slice()[i];
            assert!(
                (fd - got).abs() < tol * (1.0 + fd.abs()),
                "param {pi} grad [{i}]: finite-diff {fd} vs analytic {got}"
            );
        }
    }
}

#[test]
fn classifier_cnn_input_gradient() {
    // The victim-classifier family: conv → relu → maxpool → dense.
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(1, 4, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Flatten,
        LayerSpec::Dense {
            inputs: 4 * 3 * 3,
            outputs: 5,
        },
    ];
    check_input_gradient(&specs, Shape::nchw(2, 1, 6, 6), 21, 0.05);
}

#[test]
fn classifier_cnn_param_gradients() {
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(1, 3, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Flatten,
        LayerSpec::Dense {
            inputs: 3 * 2 * 2,
            outputs: 3,
        },
    ];
    check_param_gradients(&specs, Shape::nchw(1, 1, 4, 4), 22, 0.05);
}

#[test]
fn magnet_mnist_autoencoder_input_gradient() {
    // MagNet's MNIST reformer family (paper Table II, scaled down):
    // conv-sigmoid, avgpool, conv-sigmoid, conv-sigmoid, upsample,
    // conv-sigmoid, conv-sigmoid.
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(1, 3, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::AvgPool2d { k: 2 },
        LayerSpec::Conv2d(Conv2dSpec::same(3, 3, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Upsample2d { factor: 2 },
        LayerSpec::Conv2d(Conv2dSpec::same(3, 1, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
    ];
    check_input_gradient(&specs, Shape::nchw(1, 1, 6, 6), 23, 0.05);
}

#[test]
fn magnet_cifar_autoencoder_input_gradient() {
    // MagNet's CIFAR reformer family (paper Table V): three same-size
    // conv-sigmoid layers, 3 channels in and out.
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(3, 3, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Conv2d(Conv2dSpec::same(3, 3, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Conv2d(Conv2dSpec::same(3, 3, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
    ];
    check_input_gradient(&specs, Shape::nchw(1, 3, 5, 5), 24, 0.05);
}

#[test]
fn mlp_with_tanh_param_gradients() {
    let specs = [
        LayerSpec::Dense {
            inputs: 6,
            outputs: 8,
        },
        LayerSpec::Activation(Activation::Tanh),
        LayerSpec::Dense {
            inputs: 8,
            outputs: 4,
        },
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Dense {
            inputs: 4,
            outputs: 2,
        },
    ];
    check_param_gradients(&specs, Shape::matrix(3, 6), 25, 0.05);
}

#[test]
fn deep_sigmoid_stack_input_gradient() {
    // Deep sigmoid stacks have small gradients; this guards against silent
    // sign errors that a magnitude check would miss.
    let specs = [
        LayerSpec::Dense {
            inputs: 4,
            outputs: 4,
        },
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Dense {
            inputs: 4,
            outputs: 4,
        },
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Dense {
            inputs: 4,
            outputs: 4,
        },
        LayerSpec::Activation(Activation::Sigmoid),
        LayerSpec::Dense {
            inputs: 4,
            outputs: 1,
        },
    ];
    check_input_gradient(&specs, Shape::matrix(2, 4), 26, 0.05);
}

#[test]
fn cross_entropy_through_network_matches_finite_differences() {
    // End-to-end: d(cross_entropy(net(x), labels))/dx — exactly the gradient
    // flow the attacks use (with a different loss head).
    use adv_nn::loss::softmax_cross_entropy;
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(1, 2, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::Flatten,
        LayerSpec::Dense {
            inputs: 2 * 4 * 4,
            outputs: 3,
        },
    ];
    let seed = 31;
    let x = Tensor::from_fn(Shape::nchw(2, 1, 4, 4), |i| ((i * 7 % 11) as f32) / 11.0);
    let labels = [1usize, 2usize];

    let mut net = Sequential::from_specs(&specs, seed).unwrap();
    let logits = net.forward(&x, Mode::Train).unwrap();
    let (_, dlogits) = softmax_cross_entropy(&logits, &labels).unwrap();
    let dx = net.backward(&dlogits).unwrap();

    let eps = 1e-2f32;
    let eval = |x: &Tensor| {
        let mut probe = Sequential::from_specs(&specs, seed).unwrap();
        let logits = probe.forward(x, Mode::Train).unwrap();
        softmax_cross_entropy(&logits, &labels).unwrap().0
    };
    for i in (0..x.len()).step_by(3) {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= eps;
        let fd = (eval(&xp) - eval(&xm)) / (2.0 * eps);
        let got = dx.as_slice()[i];
        assert!(
            (fd - got).abs() < 0.05 * (1.0 + fd.abs()),
            "dx[{i}]: finite-diff {fd} vs analytic {got}"
        );
    }
}
