//! A small self-contained binary codec for trained models.
//!
//! The format stores the architecture ([`LayerSpec`] list), the construction
//! seed, and every parameter tensor, little-endian:
//!
//! ```text
//! magic "ADVNN001" (8 bytes)
//! seed: u64
//! spec_count: u32, then per spec: tag u8 + payload
//! param_count: u32, then per param: rank u32, dims (u64 each), values (f32)
//! ```
//!
//! Models round-trip exactly (bit-for-bit f32), which the evaluation harness
//! relies on to cache trained classifiers and MagNet auto-encoders between
//! runs.

use crate::layers::Activation;
use crate::{LayerSpec, NnError, Result, Sequential};
use adv_tensor::ops::Conv2dSpec;
use adv_tensor::{Shape, Tensor};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ADVNN001";

fn put_usize(buf: &mut BytesMut, v: usize) {
    buf.put_u64_le(v as u64);
}

fn get_usize(buf: &mut Bytes) -> Result<usize> {
    if buf.remaining() < 8 {
        return Err(NnError::Serialization("truncated integer".into()));
    }
    Ok(buf.get_u64_le() as usize)
}

fn put_spec(buf: &mut BytesMut, spec: &LayerSpec) {
    match spec {
        LayerSpec::Dense { inputs, outputs } => {
            buf.put_u8(0);
            put_usize(buf, *inputs);
            put_usize(buf, *outputs);
        }
        LayerSpec::Conv2d(c) => {
            buf.put_u8(1);
            put_usize(buf, c.in_channels);
            put_usize(buf, c.out_channels);
            put_usize(buf, c.kh);
            put_usize(buf, c.kw);
            put_usize(buf, c.stride);
            put_usize(buf, c.padding);
        }
        LayerSpec::Activation(a) => {
            buf.put_u8(2);
            buf.put_u8(match a {
                Activation::Relu => 0,
                Activation::Sigmoid => 1,
                Activation::Tanh => 2,
            });
        }
        LayerSpec::MaxPool2d { k } => {
            buf.put_u8(3);
            put_usize(buf, *k);
        }
        LayerSpec::AvgPool2d { k } => {
            buf.put_u8(4);
            put_usize(buf, *k);
        }
        LayerSpec::Upsample2d { factor } => {
            buf.put_u8(5);
            put_usize(buf, *factor);
        }
        LayerSpec::Flatten => buf.put_u8(6),
        LayerSpec::Reshape { item_shape } => {
            buf.put_u8(7);
            put_usize(buf, item_shape.len());
            for &d in item_shape {
                put_usize(buf, d);
            }
        }
        LayerSpec::Dropout { p } => {
            buf.put_u8(8);
            buf.put_f32_le(*p);
        }
    }
}

fn get_spec(buf: &mut Bytes) -> Result<LayerSpec> {
    if buf.remaining() < 1 {
        return Err(NnError::Serialization("truncated layer spec".into()));
    }
    Ok(match buf.get_u8() {
        0 => LayerSpec::Dense {
            inputs: get_usize(buf)?,
            outputs: get_usize(buf)?,
        },
        1 => LayerSpec::Conv2d(Conv2dSpec {
            in_channels: get_usize(buf)?,
            out_channels: get_usize(buf)?,
            kh: get_usize(buf)?,
            kw: get_usize(buf)?,
            stride: get_usize(buf)?,
            padding: get_usize(buf)?,
        }),
        2 => {
            if buf.remaining() < 1 {
                return Err(NnError::Serialization("truncated activation".into()));
            }
            LayerSpec::Activation(match buf.get_u8() {
                0 => Activation::Relu,
                1 => Activation::Sigmoid,
                2 => Activation::Tanh,
                t => {
                    return Err(NnError::Serialization(format!(
                        "unknown activation tag {t}"
                    )))
                }
            })
        }
        3 => LayerSpec::MaxPool2d { k: get_usize(buf)? },
        4 => LayerSpec::AvgPool2d { k: get_usize(buf)? },
        5 => LayerSpec::Upsample2d {
            factor: get_usize(buf)?,
        },
        6 => LayerSpec::Flatten,
        7 => {
            let n = get_usize(buf)?;
            if n > 16 {
                return Err(NnError::Serialization(format!(
                    "implausible reshape rank {n}"
                )));
            }
            let mut item_shape = Vec::with_capacity(n);
            for _ in 0..n {
                item_shape.push(get_usize(buf)?);
            }
            LayerSpec::Reshape { item_shape }
        }
        8 => {
            if buf.remaining() < 4 {
                return Err(NnError::Serialization("truncated dropout".into()));
            }
            LayerSpec::Dropout {
                p: buf.get_f32_le(),
            }
        }
        t => return Err(NnError::Serialization(format!("unknown layer tag {t}"))),
    })
}

pub(crate) fn put_tensor(buf: &mut BytesMut, t: &Tensor) {
    buf.put_u32_le(t.shape().rank() as u32);
    for &d in t.shape().dims() {
        put_usize(buf, d);
    }
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
}

pub(crate) fn get_tensor(buf: &mut Bytes) -> Result<Tensor> {
    if buf.remaining() < 4 {
        return Err(NnError::Serialization("truncated tensor header".into()));
    }
    let rank = buf.get_u32_le() as usize;
    if rank > 8 {
        return Err(NnError::Serialization(format!(
            "implausible tensor rank {rank}"
        )));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(get_usize(buf)?);
    }
    let shape = Shape::new(dims);
    let n = shape.volume();
    if buf.remaining() < n * 4 {
        return Err(NnError::Serialization("truncated tensor data".into()));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Tensor::from_vec(data, shape).map_err(NnError::Tensor)
}

/// Serializes a network (architecture + weights) to bytes.
pub fn model_to_bytes(net: &Sequential) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u64_le(net.seed());
    buf.put_u32_le(net.specs().len() as u32);
    for spec in net.specs() {
        put_spec(&mut buf, spec);
    }
    let params = net.params();
    buf.put_u32_le(params.len() as u32);
    for p in params {
        put_tensor(&mut buf, &p.value);
    }
    buf.to_vec()
}

/// Reconstructs a network from bytes produced by [`model_to_bytes`].
///
/// # Errors
///
/// Returns [`NnError::Serialization`] on truncated or corrupted input, or
/// when the stored parameter tensors disagree with the architecture.
pub fn model_from_bytes(data: &[u8]) -> Result<Sequential> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 8 || &buf.split_to(8)[..] != MAGIC {
        return Err(NnError::Serialization("bad magic".into()));
    }
    if buf.remaining() < 12 {
        return Err(NnError::Serialization("truncated header".into()));
    }
    let seed = buf.get_u64_le();
    let spec_count = buf.get_u32_le() as usize;
    if spec_count > 10_000 {
        return Err(NnError::Serialization(format!(
            "implausible layer count {spec_count}"
        )));
    }
    let mut specs = Vec::with_capacity(spec_count);
    for _ in 0..spec_count {
        specs.push(get_spec(&mut buf)?);
    }
    let mut net = Sequential::from_specs(&specs, seed)?;
    if buf.remaining() < 4 {
        return Err(NnError::Serialization("truncated parameter count".into()));
    }
    let param_count = buf.get_u32_le() as usize;
    {
        let mut params = net.params_mut();
        if params.len() != param_count {
            return Err(NnError::Serialization(format!(
                "architecture has {} parameters, file has {param_count}",
                params.len()
            )));
        }
        for p in params.iter_mut() {
            let t = get_tensor(&mut buf)?;
            if t.shape() != p.value.shape() {
                return Err(NnError::Serialization(format!(
                    "parameter shape {} does not match architecture {}",
                    t.shape(),
                    p.value.shape()
                )));
            }
            p.value = t;
        }
    }
    // A valid model file ends exactly at the last parameter value. Trailing
    // bytes mean the file was not produced by `model_to_bytes` (appended
    // garbage, a concatenation accident, or corruption the checksum layer
    // did not cover) — reject rather than silently ignore them.
    if buf.remaining() != 0 {
        return Err(NnError::Serialization(format!(
            "{} trailing bytes after final parameter tensor",
            buf.remaining()
        )));
    }
    Ok(net)
}

/// Writes a network to `path` through the artifact store: the `ADVNN001`
/// image is sealed in a CRC-checked envelope and committed with the atomic
/// temp-write/fsync/rename sequence, so a crash mid-save leaves the previous
/// model (or nothing), never a torn file.
///
/// # Errors
///
/// Returns I/O errors from the filesystem (as [`NnError::Store`]).
pub fn save_model(net: &Sequential, path: impl AsRef<Path>) -> Result<()> {
    adv_store::save_artifact(path, &model_to_bytes(net))?;
    Ok(())
}

/// Reads a network from `path`, validating the store envelope before
/// decoding. A file that fails validation — or that validates but does not
/// decode as a model — is quarantined to `<name>.corrupt` so the caller's
/// next run regenerates it instead of re-reading the same bad bytes.
///
/// # Errors
///
/// Returns [`NnError::Store`] for missing or corrupt files (check
/// [`adv_store::StoreError::is_not_found`]) and [`NnError::Serialization`]
/// for CRC-valid payloads that are not a model.
pub fn load_model(path: impl AsRef<Path>) -> Result<Sequential> {
    let path = path.as_ref();
    let payload = adv_store::load_artifact(path)?;
    match model_from_bytes(&payload) {
        Ok(net) => Ok(net),
        Err(e) => {
            // CRC-valid but undecodable (format drift, foreign file): just
            // as unusable as a corrupt one.
            adv_store::quarantine(path);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn sample_net() -> Sequential {
        Sequential::from_specs(
            &[
                LayerSpec::Conv2d(Conv2dSpec::same(1, 3, 3)),
                LayerSpec::Activation(Activation::Sigmoid),
                LayerSpec::AvgPool2d { k: 2 },
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    inputs: 3 * 2 * 2,
                    outputs: 4,
                },
                LayerSpec::Dropout { p: 0.25 },
            ],
            99,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let net = sample_net();
        let bytes = model_to_bytes(&net);
        let restored = model_from_bytes(&bytes).unwrap();
        assert_eq!(restored.specs(), net.specs());
        assert_eq!(restored.seed(), net.seed());
        for (a, b) in net.params().iter().zip(restored.params()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let mut net = sample_net();
        let mut restored = model_from_bytes(&model_to_bytes(&net)).unwrap();
        let x = Tensor::from_fn(Shape::nchw(2, 1, 4, 4), |i| (i % 13) as f32 * 0.07);
        let ya = net.forward(&x, Mode::Eval).unwrap();
        let yb = restored.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya, yb);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            model_from_bytes(b"NOTMODEL"),
            Err(NnError::Serialization(_))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = model_to_bytes(&sample_net());
        // Chop the file at several points; every prefix must fail cleanly.
        for cut in [4usize, 10, 20, bytes.len() / 2, bytes.len() - 3] {
            assert!(
                model_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("adv_nn_serialize_test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("model.advnn");
        let net = sample_net();
        save_model(&net, &path).unwrap();
        let restored = load_model(&path).unwrap();
        assert_eq!(restored.specs(), net.specs());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let net = sample_net();
        let bytes = model_to_bytes(&net);
        assert!(model_from_bytes(&bytes).is_ok());
        // Any appended tail — even a single byte — must fail decode.
        for extra in [1usize, 4, 64] {
            let mut padded = bytes.clone();
            padded.extend(std::iter::repeat_n(0xAB, extra));
            let err = model_from_bytes(&padded).unwrap_err();
            assert!(
                matches!(err, NnError::Serialization(ref m) if m.contains("trailing")),
                "{extra} extra bytes: {err}"
            );
        }
        // A duplicated file (concatenation accident) also fails.
        let doubled: Vec<u8> = bytes.iter().chain(bytes.iter()).copied().collect();
        assert!(model_from_bytes(&doubled).is_err());
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        // Truncation fuzz: a kill mid-write can leave any prefix of the
        // image; every single one must error — never panic, never "parse".
        let bytes = model_to_bytes(&sample_net());
        for cut in 0..bytes.len() {
            assert!(
                model_from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes unexpectedly parsed",
                bytes.len()
            );
        }
    }

    #[test]
    fn legacy_unenveloped_file_is_quarantined() {
        // Files written by the pre-store `fs::write` path carry no envelope;
        // the strict loader must reject and quarantine them so callers
        // retrain instead of looping on the same bytes.
        let dir = std::env::temp_dir().join("adv_nn_serialize_legacy");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.advnn");
        std::fs::write(&path, model_to_bytes(&sample_net())).unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(
            err,
            NnError::Store(adv_store::StoreError::Corrupt { .. })
        ));
        assert!(!path.exists(), "legacy file should be moved aside");
        assert!(dir.join("legacy.advnn.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn valid_envelope_bad_payload_is_quarantined() {
        let dir = std::env::temp_dir().join("adv_nn_serialize_badpayload");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.advnn");
        // CRC-valid envelope around bytes that are not a model.
        adv_store::save_artifact(&path, b"not a model at all").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, NnError::Serialization(_)), "{err}");
        assert!(!path.exists());
        assert!(dir.join("model.advnn.corrupt").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_tag_rejected() {
        let mut bytes = model_to_bytes(&sample_net());
        // First spec tag sits right after magic(8) + seed(8) + count(4).
        bytes[20] = 250;
        assert!(model_from_bytes(&bytes).is_err());
    }
}
