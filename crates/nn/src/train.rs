//! Minibatch training loop.
//!
//! The trainer is deliberately small: shuffle, batch, forward, loss,
//! backward, optimizer step — with per-epoch statistics returned to the
//! caller. Everything is seeded, so a `(architecture, data, seed)` triple
//! always produces the same model.

use crate::loss::{accuracy, softmax_cross_entropy_smoothed, ReconstructionLoss};
use crate::optim::Optimizer;
use crate::{Mode, NnError, Result, Sequential};
use adv_obs::Span;
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Cached `adv-obs` handles for one training loop, resolved once so the
/// per-batch path never touches the registry map. `None` when metrics are
/// disabled; recording never perturbs the numerics (it only reads clocks
/// and bumps atomics).
struct TrainObs {
    loss: std::sync::Arc<adv_obs::Gauge>,
    accuracy: std::sync::Arc<adv_obs::Gauge>,
    epochs: std::sync::Arc<adv_obs::Counter>,
    batches: std::sync::Arc<adv_obs::Counter>,
    epoch_ns: std::sync::Arc<adv_obs::Histogram>,
    batch_ns: std::sync::Arc<adv_obs::Histogram>,
}

impl TrainObs {
    /// `kind` is `"classifier"` or `"autoencoder"`.
    fn resolve(kind: &str) -> Option<TrainObs> {
        if !adv_obs::metrics_enabled() {
            return None;
        }
        let r = adv_obs::global();
        Some(TrainObs {
            loss: r.gauge(&format!("train.{kind}.loss")),
            accuracy: r.gauge(&format!("train.{kind}.accuracy")),
            epochs: r.counter(&format!("train.{kind}.epochs")),
            batches: r.counter(&format!("train.{kind}.batches")),
            epoch_ns: r.histogram(&format!("train.{kind}.epoch_ns")),
            batch_ns: r.histogram(&format!("train.{kind}.batch_ns")),
        })
    }

    fn record_batch(&self, started: Instant) {
        self.batches.incr();
        self.batch_ns.record_duration(started.elapsed());
    }

    fn record_epoch(&self, started: Instant, loss: f32, accuracy: Option<f32>) {
        self.epochs.incr();
        self.epoch_ns.record_duration(started.elapsed());
        self.loss.set(loss as f64);
        if let Some(acc) = accuracy {
            self.accuracy.set(acc as f64);
        }
    }
}

/// Hyperparameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for shuffling (and noise injection, when enabled).
    pub seed: u64,
    /// Label-smoothing ε for classification (0.0 = plain cross-entropy).
    /// Smoothing caps logit margins, keeping confidence-κ sweeps meaningful.
    pub label_smoothing: f32,
    /// When `true`, prints one line per epoch to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 64,
            seed: 0,
            label_smoothing: 0.0,
            verbose: false,
        }
    }
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean minibatch loss.
    pub loss: f32,
    /// Training accuracy (classification runs only).
    pub accuracy: Option<f32>,
}

/// Gathers rows `indices` of a batched tensor into a new batch.
///
/// # Errors
///
/// Returns an index error when any index exceeds the batch size.
pub fn gather0(x: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if x.shape().rank() == 0 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 1,
            actual: 0,
        }));
    }
    let n = x.shape().dim(0);
    let item = x.shape().volume() / n.max(1);
    let mut data = Vec::with_capacity(indices.len() * item);
    for &i in indices {
        if i >= n {
            return Err(NnError::Tensor(adv_tensor::TensorError::IndexOutOfBounds {
                index: i,
                bound: n,
            }));
        }
        data.extend_from_slice(&x.as_slice()[i * item..(i + 1) * item]);
    }
    let mut dims = vec![indices.len()];
    dims.extend_from_slice(&x.shape().dims()[1..]);
    Tensor::from_vec(data, Shape::new(dims)).map_err(NnError::Tensor)
}

fn check_nonempty(x: &Tensor, cfg: &TrainConfig) -> Result<usize> {
    if cfg.batch_size == 0 {
        return Err(NnError::InvalidArgument("batch_size must be > 0".into()));
    }
    let n = x.shape().dim(0);
    if n == 0 {
        return Err(NnError::InvalidArgument("empty training set".into()));
    }
    Ok(n)
}

/// Trains a classifier with softmax cross-entropy.
///
/// # Errors
///
/// Returns shape errors from the network, label errors from the loss, and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_classifier(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let n = check_nonempty(x, cfg)?;
    if labels.len() != n {
        return Err(NnError::Tensor(adv_tensor::TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        }));
    }
    let obs = TrainObs::resolve("classifier");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = Span::enter("train/epoch");
        // lint-ok(gated-clocks): per-epoch wall time feeds EpochStats, part
        // of the training-history API returned to callers.
        let epoch_start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _batch_span = Span::enter("train/batch");
            // lint-ok(gated-clocks): batch timing feeds the same
            // EpochStats throughput numbers; measuring it is the feature.
            let batch_start = Instant::now();
            let xb = gather0(x, chunk)?;
            let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let logits = net.forward(&xb, Mode::Train)?;
            let (loss, grad) = softmax_cross_entropy_smoothed(&logits, &yb, cfg.label_smoothing)?;
            acc_sum += accuracy(&logits, &yb)?;
            net.backward(&grad)?;
            opt.step(&mut net.params_mut())?;
            loss_sum += loss;
            batches += 1;
            if let Some(obs) = &obs {
                obs.record_batch(batch_start);
            }
        }
        let stats = EpochStats {
            epoch,
            loss: loss_sum / batches as f32,
            accuracy: Some(acc_sum / batches as f32),
        };
        if let Some(obs) = &obs {
            obs.record_epoch(epoch_start, stats.loss, stats.accuracy);
        }
        if cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.4}, acc {:.3}",
                epoch,
                stats.loss,
                stats.accuracy.unwrap_or(0.0)
            );
        }
        history.push(stats);
    }
    Ok(history)
}

/// How auto-encoder training inputs are corrupted.
///
/// MagNet trains its auto-encoders to map corrupted inputs back to the clean
/// image; the corruption distribution determines *which* off-manifold
/// deviations the trained map removes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// No corruption (a plain auto-encoder).
    None,
    /// Pixel-wise Gaussian noise with the given σ — MagNet's original
    /// scheme; teaches removal of high-frequency deviations.
    Gaussian(f32),
    /// Gaussian noise *plus* a smooth low-frequency random field of the
    /// given σ (a coarse per-channel grid, nearest-upsampled). Teaches the
    /// auto-encoder to also remove *smooth, spread-out* deviations — the
    /// signature of L2-based (C&W-like) adversarial perturbations — while
    /// leaving sparse spikes outside its training distribution.
    GaussianPlusSmooth {
        /// σ of the pixel-wise component.
        gaussian: f32,
        /// σ of the low-frequency field.
        smooth: f32,
    },
}

fn gaussian_sample(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Adds a smooth per-image random field to an NCHW batch in place.
fn add_smooth_field(batch: &mut Tensor, std: f32, rng: &mut StdRng) {
    let dims = batch.shape().dims().to_vec();
    if dims.len() != 4 {
        return; // non-image data: skip the spatial component
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (gh, gw) = (h.div_ceil(4).max(1), w.div_ceil(4).max(1));
    let data = batch.as_mut_slice();
    for b in 0..n {
        for ch in 0..c {
            let grid: Vec<f32> = (0..gh * gw).map(|_| std * gaussian_sample(rng)).collect();
            let plane = &mut data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            for y in 0..h {
                for x in 0..w {
                    let g = grid[(y * gh / h).min(gh - 1) * gw + (x * gw / w).min(gw - 1)];
                    let v = &mut plane[y * w + x];
                    *v = (*v + g).clamp(0.0, 1.0);
                }
            }
        }
    }
}

impl Corruption {
    /// Applies the corruption to a clean batch, producing the training input.
    fn apply(self, clean: &Tensor, rng: &mut StdRng) -> Tensor {
        match self {
            Corruption::None => clean.clone(),
            Corruption::Gaussian(std) => {
                let mut noisy = clean.clone();
                for v in noisy.as_mut_slice() {
                    *v = (*v + std * gaussian_sample(rng)).clamp(0.0, 1.0);
                }
                noisy
            }
            Corruption::GaussianPlusSmooth { gaussian, smooth } => {
                let mut noisy = Corruption::Gaussian(gaussian).apply(clean, rng);
                add_smooth_field(&mut noisy, smooth, rng);
                noisy
            }
        }
    }
}

/// Trains an auto-encoder to reconstruct its (optionally noise-corrupted)
/// input.
///
/// MagNet trains its auto-encoders on inputs corrupted with Gaussian noise of
/// standard deviation `noise_std` while targeting the *clean* image — this is
/// what pulls off-manifold points back toward the data manifold. See
/// [`fit_autoencoder_with`] for richer corruption models.
///
/// # Errors
///
/// Returns shape errors from the network and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_autoencoder(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    loss_kind: ReconstructionLoss,
    noise_std: f32,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let corruption = if noise_std > 0.0 {
        Corruption::Gaussian(noise_std)
    } else {
        Corruption::None
    };
    fit_autoencoder_with(net, opt, x, loss_kind, corruption, cfg)
}

/// [`fit_autoencoder`] with an explicit [`Corruption`] model.
///
/// # Errors
///
/// Returns shape errors from the network and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_autoencoder_with(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    loss_kind: ReconstructionLoss,
    corruption: Corruption,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let n = check_nonempty(x, cfg)?;
    let obs = TrainObs::resolve("autoencoder");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let _epoch_span = Span::enter("train/epoch");
        // lint-ok(gated-clocks): per-epoch wall time feeds EpochStats, part
        // of the training-history API returned to callers.
        let epoch_start = Instant::now();
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _batch_span = Span::enter("train/batch");
            // lint-ok(gated-clocks): batch timing feeds the same
            // EpochStats throughput numbers; measuring it is the feature.
            let batch_start = Instant::now();
            let clean = gather0(x, chunk)?;
            let input = corruption.apply(&clean, &mut rng);
            let recon = net.forward(&input, Mode::Train)?;
            let (loss, grad) = loss_kind.compute(&recon, &clean)?;
            net.backward(&grad)?;
            opt.step(&mut net.params_mut())?;
            loss_sum += loss;
            batches += 1;
            if let Some(obs) = &obs {
                obs.record_batch(batch_start);
            }
        }
        let stats = EpochStats {
            epoch,
            loss: loss_sum / batches as f32,
            accuracy: None,
        };
        if let Some(obs) = &obs {
            obs.record_epoch(epoch_start, stats.loss, stats.accuracy);
        }
        if cfg.verbose {
            eprintln!("epoch {:>3}: recon loss {:.6}", epoch, stats.loss);
        }
        history.push(stats);
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use crate::optim::Adam;
    use crate::LayerSpec;

    /// Two linearly separable blobs in 2-D.
    fn blobs(n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let (cx, cy) = if cls == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            // Deterministic jitter.
            let jx = ((i * 37 % 17) as f32 / 17.0 - 0.5) * 0.5;
            let jy = ((i * 61 % 13) as f32 / 13.0 - 0.5) * 0.5;
            data.push(cx + jx);
            data.push(cy + jy);
            labels.push(cls);
        }
        (Tensor::from_vec(data, Shape::matrix(n, 2)).unwrap(), labels)
    }

    #[test]
    fn classifier_learns_separable_blobs() {
        let (x, y) = blobs(200);
        let mut net = Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 2,
                    outputs: 8,
                },
                LayerSpec::Activation(Activation::Relu),
                LayerSpec::Dense {
                    inputs: 8,
                    outputs: 2,
                },
            ],
            5,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.05);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 32,
            seed: 1,
            label_smoothing: 0.0,
            verbose: false,
        };
        let history = fit_classifier(&mut net, &mut opt, &x, &y, &cfg).unwrap();
        let last = history.last().unwrap();
        assert!(
            last.accuracy.unwrap() > 0.95,
            "accuracy {:?}",
            last.accuracy
        );
        assert!(last.loss < history[0].loss);
    }

    #[test]
    fn autoencoder_reduces_reconstruction_error() {
        // Identity-learnable toy data.
        let x = Tensor::from_fn(Shape::matrix(64, 4), |i| ((i * 31) % 10) as f32 / 10.0);
        let mut net = Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 4,
                    outputs: 6,
                },
                LayerSpec::Activation(Activation::Sigmoid),
                LayerSpec::Dense {
                    inputs: 6,
                    outputs: 4,
                },
                LayerSpec::Activation(Activation::Sigmoid),
            ],
            3,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.02);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            seed: 2,
            label_smoothing: 0.0,
            verbose: false,
        };
        let history = fit_autoencoder(
            &mut net,
            &mut opt,
            &x,
            ReconstructionLoss::MeanSquaredError,
            0.05,
            &cfg,
        )
        .unwrap();
        assert!(history.last().unwrap().loss < history[0].loss * 0.8);
    }

    #[test]
    fn corruption_none_is_identity() {
        let x = Tensor::from_fn(Shape::nchw(2, 1, 4, 4), |i| (i % 5) as f32 / 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Corruption::None.apply(&x, &mut rng), x);
    }

    #[test]
    fn gaussian_corruption_stays_in_box_and_perturbs() {
        // Large enough that the 0.05 mean tolerance sits ~10σ out, so the
        // check is about bias, not the luck of one small seed.
        let x = Tensor::full(Shape::nchw(8, 1, 16, 16), 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let y = Corruption::Gaussian(0.2).apply(&x, &mut rng);
        assert!(y.min() >= 0.0 && y.max() <= 1.0);
        assert_ne!(y, x);
        // Roughly zero-mean noise.
        assert!((y.mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn smooth_corruption_is_spatially_correlated() {
        // Neighbouring pixels of the smooth field share coarse-grid cells,
        // so adjacent deltas are more similar than under iid Gaussian noise.
        let x = Tensor::full(Shape::nchw(1, 1, 16, 16), 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let smooth = Corruption::GaussianPlusSmooth {
            gaussian: 0.0,
            smooth: 0.2,
        }
        .apply(&x, &mut rng);
        let delta = smooth.sub(&x).unwrap();
        let d = delta.as_slice();
        let mut neighbour_diff = 0.0f32;
        let mut pair_count = 0;
        for y in 0..16 {
            for xx in 0..15 {
                neighbour_diff += (d[y * 16 + xx] - d[y * 16 + xx + 1]).abs();
                pair_count += 1;
            }
        }
        let mean_abs: f32 = d.iter().map(|v| v.abs()).sum::<f32>() / 256.0;
        // For iid noise, E|d_i − d_j| ≈ 1.13 · E|d_i| · √2 ≈ 1.6 · mean_abs;
        // smooth fields are far below that.
        let mean_neighbour_diff = neighbour_diff / pair_count as f32;
        assert!(
            mean_neighbour_diff < mean_abs,
            "field not smooth: {mean_neighbour_diff} vs {mean_abs}"
        );
    }

    #[test]
    fn gather0_selects_rows() {
        let x = Tensor::from_fn(Shape::matrix(4, 2), |i| i as f32);
        let g = gather0(&x, &[2, 0]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(gather0(&x, &[9]).is_err());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let (x, y) = blobs(4);
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.01);
        let bad = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(fit_classifier(&mut net, &mut opt, &x, &y, &bad).is_err());
        let cfg = TrainConfig::default();
        assert!(fit_classifier(&mut net, &mut opt, &x, &y[..2], &cfg).is_err());
    }

    #[test]
    fn training_is_reproducible() {
        let (x, y) = blobs(50);
        let run = || {
            let mut net = Sequential::from_specs(
                &[LayerSpec::Dense {
                    inputs: 2,
                    outputs: 2,
                }],
                7,
            )
            .unwrap();
            let mut opt = Adam::with_defaults(0.01);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 16,
                seed: 11,
                label_smoothing: 0.0,
                verbose: false,
            };
            fit_classifier(&mut net, &mut opt, &x, &y, &cfg).unwrap();
            net.params()[0].value.clone()
        };
        assert_eq!(run(), run());
    }
}
