//! Minibatch training loop.
//!
//! The trainer is deliberately small: shuffle, batch, forward, loss,
//! backward, optimizer step — with per-epoch statistics returned to the
//! caller. Everything is seeded, so a `(architecture, data, seed)` triple
//! always produces the same model.

use crate::checkpoint::{self, CheckpointCfg, TrainCheckpoint};
use crate::loss::{accuracy, softmax_cross_entropy_smoothed, ReconstructionLoss};
use crate::optim::Optimizer;
use crate::{Mode, NnError, Result, Sequential};
use adv_obs::Span;
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Cached `adv-obs` handles for one training loop, resolved once so the
/// per-batch path never touches the registry map. `None` when metrics are
/// disabled; recording never perturbs the numerics (it only reads clocks
/// and bumps atomics).
struct TrainObs {
    loss: std::sync::Arc<adv_obs::Gauge>,
    accuracy: std::sync::Arc<adv_obs::Gauge>,
    epochs: std::sync::Arc<adv_obs::Counter>,
    batches: std::sync::Arc<adv_obs::Counter>,
    epoch_ns: std::sync::Arc<adv_obs::Histogram>,
    batch_ns: std::sync::Arc<adv_obs::Histogram>,
}

impl TrainObs {
    /// `kind` is `"classifier"` or `"autoencoder"`.
    fn resolve(kind: &str) -> Option<TrainObs> {
        if !adv_obs::metrics_enabled() {
            return None;
        }
        let r = adv_obs::global();
        Some(TrainObs {
            loss: r.gauge(&format!("train.{kind}.loss")),
            accuracy: r.gauge(&format!("train.{kind}.accuracy")),
            epochs: r.counter(&format!("train.{kind}.epochs")),
            batches: r.counter(&format!("train.{kind}.batches")),
            epoch_ns: r.histogram(&format!("train.{kind}.epoch_ns")),
            batch_ns: r.histogram(&format!("train.{kind}.batch_ns")),
        })
    }

    fn record_batch(&self, started: Instant) {
        self.batches.incr();
        self.batch_ns.record_duration(started.elapsed());
    }

    fn record_epoch(&self, started: Instant, loss: f32, accuracy: Option<f32>) {
        self.epochs.incr();
        self.epoch_ns.record_duration(started.elapsed());
        self.loss.set(loss as f64);
        if let Some(acc) = accuracy {
            self.accuracy.set(acc as f64);
        }
    }
}

/// Hyperparameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Seed for shuffling (and noise injection, when enabled).
    pub seed: u64,
    /// Label-smoothing ε for classification (0.0 = plain cross-entropy).
    /// Smoothing caps logit margins, keeping confidence-κ sweeps meaningful.
    pub label_smoothing: f32,
    /// When `true`, prints one line per epoch to stderr.
    pub verbose: bool,
    /// When set, the loop saves a resumable checkpoint (model + optimizer
    /// state + history) every [`CheckpointCfg::every`] epochs and, on the
    /// next call with a matching configuration, resumes from it instead of
    /// retraining — bit-identically, because each epoch's RNG is derived
    /// from `(seed, epoch)` rather than threaded across epochs.
    pub checkpoint: Option<CheckpointCfg>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 64,
            seed: 0,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        }
    }
}

/// The RNG for one epoch, derived from `(seed, epoch)` with a splitmix64
/// finalizer. Keying by epoch (instead of advancing one RNG across epochs)
/// is what makes a checkpoint's "resume at epoch k" equal to the RNG
/// position of an uninterrupted run.
fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    let mut z = seed
        ^ (epoch as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Tries to resume a checkpointed run: restores the model, optimizer state
/// and history, and returns the epoch to continue from. Any mismatch
/// (architecture, digest, corrupt file) falls back to a fresh start —
/// checkpoints accelerate, they never gate.
fn try_resume(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
    digest: u64,
) -> Result<(usize, Vec<EpochStats>)> {
    let Some(ck) = &cfg.checkpoint else {
        return Ok((0, Vec::new()));
    };
    let Some(saved) = checkpoint::load_matching(&ck.path, digest)? else {
        return Ok((0, Vec::new()));
    };
    let Ok(restored) = crate::serialize::model_from_bytes(&saved.model) else {
        return Ok((0, Vec::new()));
    };
    if restored.specs() != net.specs() || opt.restore_state(&saved.optimizer).is_err() {
        return Ok((0, Vec::new()));
    }
    *net = restored;
    let start = saved.epochs_done.min(cfg.epochs);
    let mut history = saved.history;
    history.truncate(start);
    if start > 0 {
        adv_store::bump_counter(adv_store::metric_names::RESUMES);
        if cfg.verbose {
            eprintln!("resumed from checkpoint at epoch {start}");
        }
    }
    Ok((start, history))
}

/// Saves a checkpoint when the cadence (or the final epoch) says so.
fn maybe_checkpoint(
    net: &Sequential,
    opt: &dyn Optimizer,
    cfg: &TrainConfig,
    digest: u64,
    epochs_done: usize,
    history: &[EpochStats],
) -> Result<()> {
    let Some(ck) = &cfg.checkpoint else {
        return Ok(());
    };
    if !epochs_done.is_multiple_of(ck.every.max(1)) && epochs_done != cfg.epochs {
        return Ok(());
    }
    checkpoint::save(
        &ck.path,
        &TrainCheckpoint {
            digest,
            epochs_done,
            model: crate::serialize::model_to_bytes(net),
            optimizer: opt.state_bytes(),
            history: history.to_vec(),
        },
    )
}

/// Statistics of one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean minibatch loss.
    pub loss: f32,
    /// Training accuracy (classification runs only).
    pub accuracy: Option<f32>,
}

/// Gathers rows `indices` of a batched tensor into a new batch.
///
/// # Errors
///
/// Returns an index error when any index exceeds the batch size.
pub fn gather0(x: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if x.shape().rank() == 0 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 1,
            actual: 0,
        }));
    }
    let n = x.shape().dim(0);
    let item = x.shape().volume() / n.max(1);
    let mut data = Vec::with_capacity(indices.len() * item);
    for &i in indices {
        if i >= n {
            return Err(NnError::Tensor(adv_tensor::TensorError::IndexOutOfBounds {
                index: i,
                bound: n,
            }));
        }
        data.extend_from_slice(&x.as_slice()[i * item..(i + 1) * item]);
    }
    let mut dims = vec![indices.len()];
    dims.extend_from_slice(&x.shape().dims()[1..]);
    Tensor::from_vec(data, Shape::new(dims)).map_err(NnError::Tensor)
}

fn check_nonempty(x: &Tensor, cfg: &TrainConfig) -> Result<usize> {
    if cfg.batch_size == 0 {
        return Err(NnError::InvalidArgument("batch_size must be > 0".into()));
    }
    let n = x.shape().dim(0);
    if n == 0 {
        return Err(NnError::InvalidArgument("empty training set".into()));
    }
    Ok(n)
}

/// Trains a classifier with softmax cross-entropy.
///
/// # Errors
///
/// Returns shape errors from the network, label errors from the loss, and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_classifier(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let n = check_nonempty(x, cfg)?;
    if labels.len() != n {
        return Err(NnError::Tensor(adv_tensor::TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        }));
    }
    let obs = TrainObs::resolve("classifier");
    // Config fingerprint for checkpoint matching; the epoch count is
    // deliberately excluded so extending a run resumes instead of restarts.
    let mut digest_words = vec![
        1u64, // classifier
        cfg.batch_size as u64,
        cfg.seed,
        cfg.label_smoothing.to_bits() as u64,
        n as u64,
    ];
    digest_words.extend(x.shape().dims().iter().map(|&d| d as u64));
    let digest = checkpoint::digest_parts(&digest_words);
    let (start_epoch, mut history) = try_resume(net, opt, cfg, digest)?;
    let mut order: Vec<usize> = (0..n).collect();
    history.reserve(cfg.epochs.saturating_sub(history.len()));
    for epoch in start_epoch..cfg.epochs {
        let _epoch_span = Span::enter("train/epoch");
        // lint-ok(gated-clocks): per-epoch wall time feeds EpochStats, part
        // of the training-history API returned to callers.
        let epoch_start = Instant::now();
        let mut rng = epoch_rng(cfg.seed, epoch);
        // Reset to the identity permutation so the epoch's order depends
        // only on (seed, epoch) — a resumed run must see the same shuffle
        // an uninterrupted one would.
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i;
        }
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut acc_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _batch_span = Span::enter("train/batch");
            // lint-ok(gated-clocks): batch timing feeds the same
            // EpochStats throughput numbers; measuring it is the feature.
            let batch_start = Instant::now();
            let xb = gather0(x, chunk)?;
            let yb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            let logits = net.forward(&xb, Mode::Train)?;
            let (loss, grad) = softmax_cross_entropy_smoothed(&logits, &yb, cfg.label_smoothing)?;
            acc_sum += accuracy(&logits, &yb)?;
            net.backward(&grad)?;
            opt.step(&mut net.params_mut())?;
            loss_sum += loss;
            batches += 1;
            if let Some(obs) = &obs {
                obs.record_batch(batch_start);
            }
        }
        let stats = EpochStats {
            epoch,
            loss: loss_sum / batches as f32,
            accuracy: Some(acc_sum / batches as f32),
        };
        if let Some(obs) = &obs {
            obs.record_epoch(epoch_start, stats.loss, stats.accuracy);
        }
        if cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.4}, acc {:.3}",
                epoch,
                stats.loss,
                stats.accuracy.unwrap_or(0.0)
            );
        }
        history.push(stats);
        maybe_checkpoint(net, &*opt, cfg, digest, epoch + 1, &history)?;
    }
    Ok(history)
}

/// How auto-encoder training inputs are corrupted.
///
/// MagNet trains its auto-encoders to map corrupted inputs back to the clean
/// image; the corruption distribution determines *which* off-manifold
/// deviations the trained map removes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// No corruption (a plain auto-encoder).
    None,
    /// Pixel-wise Gaussian noise with the given σ — MagNet's original
    /// scheme; teaches removal of high-frequency deviations.
    Gaussian(f32),
    /// Gaussian noise *plus* a smooth low-frequency random field of the
    /// given σ (a coarse per-channel grid, nearest-upsampled). Teaches the
    /// auto-encoder to also remove *smooth, spread-out* deviations — the
    /// signature of L2-based (C&W-like) adversarial perturbations — while
    /// leaving sparse spikes outside its training distribution.
    GaussianPlusSmooth {
        /// σ of the pixel-wise component.
        gaussian: f32,
        /// σ of the low-frequency field.
        smooth: f32,
    },
}

fn gaussian_sample(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Adds a smooth per-image random field to an NCHW batch in place.
fn add_smooth_field(batch: &mut Tensor, std: f32, rng: &mut StdRng) {
    let dims = batch.shape().dims().to_vec();
    if dims.len() != 4 {
        return; // non-image data: skip the spatial component
    }
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (gh, gw) = (h.div_ceil(4).max(1), w.div_ceil(4).max(1));
    let data = batch.as_mut_slice();
    for b in 0..n {
        for ch in 0..c {
            let grid: Vec<f32> = (0..gh * gw).map(|_| std * gaussian_sample(rng)).collect();
            let plane = &mut data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
            for y in 0..h {
                for x in 0..w {
                    let g = grid[(y * gh / h).min(gh - 1) * gw + (x * gw / w).min(gw - 1)];
                    let v = &mut plane[y * w + x];
                    *v = (*v + g).clamp(0.0, 1.0);
                }
            }
        }
    }
}

impl Corruption {
    /// Applies the corruption to a clean batch, producing the training input.
    fn apply(self, clean: &Tensor, rng: &mut StdRng) -> Tensor {
        match self {
            Corruption::None => clean.clone(),
            Corruption::Gaussian(std) => {
                let mut noisy = clean.clone();
                for v in noisy.as_mut_slice() {
                    *v = (*v + std * gaussian_sample(rng)).clamp(0.0, 1.0);
                }
                noisy
            }
            Corruption::GaussianPlusSmooth { gaussian, smooth } => {
                let mut noisy = Corruption::Gaussian(gaussian).apply(clean, rng);
                add_smooth_field(&mut noisy, smooth, rng);
                noisy
            }
        }
    }
}

/// Trains an auto-encoder to reconstruct its (optionally noise-corrupted)
/// input.
///
/// MagNet trains its auto-encoders on inputs corrupted with Gaussian noise of
/// standard deviation `noise_std` while targeting the *clean* image — this is
/// what pulls off-manifold points back toward the data manifold. See
/// [`fit_autoencoder_with`] for richer corruption models.
///
/// # Errors
///
/// Returns shape errors from the network and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_autoencoder(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    loss_kind: ReconstructionLoss,
    noise_std: f32,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let corruption = if noise_std > 0.0 {
        Corruption::Gaussian(noise_std)
    } else {
        Corruption::None
    };
    fit_autoencoder_with(net, opt, x, loss_kind, corruption, cfg)
}

/// [`fit_autoencoder`] with an explicit [`Corruption`] model.
///
/// # Errors
///
/// Returns shape errors from the network and
/// [`NnError::InvalidArgument`] for degenerate configs.
pub fn fit_autoencoder_with(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    x: &Tensor,
    loss_kind: ReconstructionLoss,
    corruption: Corruption,
    cfg: &TrainConfig,
) -> Result<Vec<EpochStats>> {
    let n = check_nonempty(x, cfg)?;
    let obs = TrainObs::resolve("autoencoder");
    let (loss_tag, corruption_words) = match corruption {
        Corruption::None => (0u64, [0u64, 0]),
        Corruption::Gaussian(s) => (1, [s.to_bits() as u64, 0]),
        Corruption::GaussianPlusSmooth { gaussian, smooth } => {
            (2, [gaussian.to_bits() as u64, smooth.to_bits() as u64])
        }
    };
    let mut digest_words = vec![
        2u64, // autoencoder
        cfg.batch_size as u64,
        cfg.seed,
        match loss_kind {
            ReconstructionLoss::MeanSquaredError => 0,
            ReconstructionLoss::MeanAbsoluteError => 1,
        },
        loss_tag,
        corruption_words[0],
        corruption_words[1],
        n as u64,
    ];
    digest_words.extend(x.shape().dims().iter().map(|&d| d as u64));
    let digest = checkpoint::digest_parts(&digest_words);
    let (start_epoch, mut history) = try_resume(net, opt, cfg, digest)?;
    let mut order: Vec<usize> = (0..n).collect();
    history.reserve(cfg.epochs.saturating_sub(history.len()));
    for epoch in start_epoch..cfg.epochs {
        let _epoch_span = Span::enter("train/epoch");
        // lint-ok(gated-clocks): per-epoch wall time feeds EpochStats, part
        // of the training-history API returned to callers.
        let epoch_start = Instant::now();
        let mut rng = epoch_rng(cfg.seed, epoch);
        // Reset to the identity permutation so the epoch's order depends
        // only on (seed, epoch) — a resumed run must see the same shuffle
        // an uninterrupted one would.
        for (i, slot) in order.iter_mut().enumerate() {
            *slot = i;
        }
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let _batch_span = Span::enter("train/batch");
            // lint-ok(gated-clocks): batch timing feeds the same
            // EpochStats throughput numbers; measuring it is the feature.
            let batch_start = Instant::now();
            let clean = gather0(x, chunk)?;
            let input = corruption.apply(&clean, &mut rng);
            let recon = net.forward(&input, Mode::Train)?;
            let (loss, grad) = loss_kind.compute(&recon, &clean)?;
            net.backward(&grad)?;
            opt.step(&mut net.params_mut())?;
            loss_sum += loss;
            batches += 1;
            if let Some(obs) = &obs {
                obs.record_batch(batch_start);
            }
        }
        let stats = EpochStats {
            epoch,
            loss: loss_sum / batches as f32,
            accuracy: None,
        };
        if let Some(obs) = &obs {
            obs.record_epoch(epoch_start, stats.loss, stats.accuracy);
        }
        if cfg.verbose {
            eprintln!("epoch {:>3}: recon loss {:.6}", epoch, stats.loss);
        }
        history.push(stats);
        maybe_checkpoint(net, &*opt, cfg, digest, epoch + 1, &history)?;
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use crate::optim::{Adam, Sgd};
    use crate::LayerSpec;

    /// Two linearly separable blobs in 2-D.
    fn blobs(n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let cls = i % 2;
            let (cx, cy) = if cls == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            // Deterministic jitter.
            let jx = ((i * 37 % 17) as f32 / 17.0 - 0.5) * 0.5;
            let jy = ((i * 61 % 13) as f32 / 13.0 - 0.5) * 0.5;
            data.push(cx + jx);
            data.push(cy + jy);
            labels.push(cls);
        }
        (Tensor::from_vec(data, Shape::matrix(n, 2)).unwrap(), labels)
    }

    #[test]
    fn classifier_learns_separable_blobs() {
        let (x, y) = blobs(200);
        let mut net = Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 2,
                    outputs: 8,
                },
                LayerSpec::Activation(Activation::Relu),
                LayerSpec::Dense {
                    inputs: 8,
                    outputs: 2,
                },
            ],
            5,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.05);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 32,
            seed: 1,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        };
        let history = fit_classifier(&mut net, &mut opt, &x, &y, &cfg).unwrap();
        let last = history.last().unwrap();
        assert!(
            last.accuracy.unwrap() > 0.95,
            "accuracy {:?}",
            last.accuracy
        );
        assert!(last.loss < history[0].loss);
    }

    #[test]
    fn autoencoder_reduces_reconstruction_error() {
        // Identity-learnable toy data.
        let x = Tensor::from_fn(Shape::matrix(64, 4), |i| ((i * 31) % 10) as f32 / 10.0);
        let mut net = Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 4,
                    outputs: 6,
                },
                LayerSpec::Activation(Activation::Sigmoid),
                LayerSpec::Dense {
                    inputs: 6,
                    outputs: 4,
                },
                LayerSpec::Activation(Activation::Sigmoid),
            ],
            3,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.02);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 16,
            seed: 2,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: None,
        };
        let history = fit_autoencoder(
            &mut net,
            &mut opt,
            &x,
            ReconstructionLoss::MeanSquaredError,
            0.05,
            &cfg,
        )
        .unwrap();
        assert!(history.last().unwrap().loss < history[0].loss * 0.8);
    }

    #[test]
    fn corruption_none_is_identity() {
        let x = Tensor::from_fn(Shape::nchw(2, 1, 4, 4), |i| (i % 5) as f32 / 5.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Corruption::None.apply(&x, &mut rng), x);
    }

    #[test]
    fn gaussian_corruption_stays_in_box_and_perturbs() {
        // Large enough that the 0.05 mean tolerance sits ~10σ out, so the
        // check is about bias, not the luck of one small seed.
        let x = Tensor::full(Shape::nchw(8, 1, 16, 16), 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let y = Corruption::Gaussian(0.2).apply(&x, &mut rng);
        assert!(y.min() >= 0.0 && y.max() <= 1.0);
        assert_ne!(y, x);
        // Roughly zero-mean noise.
        assert!((y.mean() - 0.5).abs() < 0.05);
    }

    #[test]
    fn smooth_corruption_is_spatially_correlated() {
        // Neighbouring pixels of the smooth field share coarse-grid cells,
        // so adjacent deltas are more similar than under iid Gaussian noise.
        let x = Tensor::full(Shape::nchw(1, 1, 16, 16), 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let smooth = Corruption::GaussianPlusSmooth {
            gaussian: 0.0,
            smooth: 0.2,
        }
        .apply(&x, &mut rng);
        let delta = smooth.sub(&x).unwrap();
        let d = delta.as_slice();
        let mut neighbour_diff = 0.0f32;
        let mut pair_count = 0;
        for y in 0..16 {
            for xx in 0..15 {
                neighbour_diff += (d[y * 16 + xx] - d[y * 16 + xx + 1]).abs();
                pair_count += 1;
            }
        }
        let mean_abs: f32 = d.iter().map(|v| v.abs()).sum::<f32>() / 256.0;
        // For iid noise, E|d_i − d_j| ≈ 1.13 · E|d_i| · √2 ≈ 1.6 · mean_abs;
        // smooth fields are far below that.
        let mean_neighbour_diff = neighbour_diff / pair_count as f32;
        assert!(
            mean_neighbour_diff < mean_abs,
            "field not smooth: {mean_neighbour_diff} vs {mean_abs}"
        );
    }

    #[test]
    fn gather0_selects_rows() {
        let x = Tensor::from_fn(Shape::matrix(4, 2), |i| i as f32);
        let g = gather0(&x, &[2, 0]).unwrap();
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(gather0(&x, &[9]).is_err());
    }

    #[test]
    fn degenerate_configs_rejected() {
        let (x, y) = blobs(4);
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        let mut opt = Adam::with_defaults(0.01);
        let bad = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert!(fit_classifier(&mut net, &mut opt, &x, &y, &bad).is_err());
        let cfg = TrainConfig::default();
        assert!(fit_classifier(&mut net, &mut opt, &x, &y[..2], &cfg).is_err());
    }

    fn blob_net(seed: u64) -> Sequential {
        Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 2,
                    outputs: 8,
                },
                LayerSpec::Activation(Activation::Relu),
                LayerSpec::Dense {
                    inputs: 8,
                    outputs: 2,
                },
            ],
            seed,
        )
        .unwrap()
    }

    fn params_of(net: &Sequential) -> Vec<Tensor> {
        net.params().iter().map(|p| p.value.clone()).collect()
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        let dir = std::env::temp_dir().join("adv_nn_train_resume_cls");
        std::fs::remove_dir_all(&dir).ok();
        let (x, y) = blobs(60);
        let cfg = |epochs: usize, ckpt: Option<CheckpointCfg>| TrainConfig {
            epochs,
            batch_size: 16,
            seed: 21,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: ckpt,
        };

        // Uninterrupted 6-epoch run, no checkpointing at all.
        let mut net_a = blob_net(9);
        let mut opt_a = Adam::with_defaults(0.05);
        let hist_a = fit_classifier(&mut net_a, &mut opt_a, &x, &y, &cfg(6, None)).unwrap();

        // "Killed" run: 3 epochs with a checkpoint, then a *fresh* net and
        // optimizer asked for 6 epochs — must resume at 3 and land on the
        // same bits.
        let ck = CheckpointCfg::every_epoch(dir.join("cls.ckpt"));
        let mut net_b = blob_net(9);
        let mut opt_b = Adam::with_defaults(0.05);
        fit_classifier(&mut net_b, &mut opt_b, &x, &y, &cfg(3, Some(ck.clone()))).unwrap();

        let mut net_c = blob_net(9);
        let mut opt_c = Adam::with_defaults(0.05);
        let hist_c = fit_classifier(&mut net_c, &mut opt_c, &x, &y, &cfg(6, Some(ck))).unwrap();

        assert_eq!(params_of(&net_a), params_of(&net_c), "weights diverged");
        assert_eq!(hist_a.len(), hist_c.len());
        for (a, c) in hist_a.iter().zip(&hist_c) {
            assert_eq!(a.epoch, c.epoch);
            assert_eq!(a.loss.to_bits(), c.loss.to_bits(), "epoch {}", a.epoch);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn autoencoder_checkpoint_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join("adv_nn_train_resume_ae");
        std::fs::remove_dir_all(&dir).ok();
        let x = Tensor::from_fn(Shape::matrix(48, 4), |i| ((i * 29) % 11) as f32 / 11.0);
        let ae = || {
            Sequential::from_specs(
                &[
                    LayerSpec::Dense {
                        inputs: 4,
                        outputs: 5,
                    },
                    LayerSpec::Activation(Activation::Sigmoid),
                    LayerSpec::Dense {
                        inputs: 5,
                        outputs: 4,
                    },
                ],
                4,
            )
            .unwrap()
        };
        let cfg = |epochs: usize, ckpt: Option<CheckpointCfg>| TrainConfig {
            epochs,
            batch_size: 16,
            seed: 33,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: ckpt,
        };
        let mut net_a = ae();
        let mut opt_a = Sgd::new(0.1, 0.9);
        fit_autoencoder(
            &mut net_a,
            &mut opt_a,
            &x,
            ReconstructionLoss::MeanAbsoluteError,
            0.05,
            &cfg(4, None),
        )
        .unwrap();

        let ck = CheckpointCfg::every_epoch(dir.join("ae.ckpt"));
        let mut net_b = ae();
        let mut opt_b = Sgd::new(0.1, 0.9);
        fit_autoencoder(
            &mut net_b,
            &mut opt_b,
            &x,
            ReconstructionLoss::MeanAbsoluteError,
            0.05,
            &cfg(2, Some(ck.clone())),
        )
        .unwrap();
        let mut net_c = ae();
        let mut opt_c = Sgd::new(0.1, 0.9);
        fit_autoencoder(
            &mut net_c,
            &mut opt_c,
            &x,
            ReconstructionLoss::MeanAbsoluteError,
            0.05,
            &cfg(4, Some(ck)),
        )
        .unwrap();
        assert_eq!(params_of(&net_a), params_of(&net_c));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_change_ignores_stale_checkpoint() {
        let dir = std::env::temp_dir().join("adv_nn_train_stale_ckpt");
        std::fs::remove_dir_all(&dir).ok();
        let (x, y) = blobs(40);
        let ck = CheckpointCfg::every_epoch(dir.join("cls.ckpt"));
        let mk = |seed: u64| TrainConfig {
            epochs: 2,
            batch_size: 8,
            seed,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint: Some(ck.clone()),
        };
        let mut net = blob_net(1);
        let mut opt = Adam::with_defaults(0.05);
        fit_classifier(&mut net, &mut opt, &x, &y, &mk(1)).unwrap();

        // Different seed ⇒ different digest ⇒ a full 2-epoch retrain, which
        // must match a run that never saw the stale checkpoint.
        let mut net_b = blob_net(1);
        let mut opt_b = Adam::with_defaults(0.05);
        fit_classifier(&mut net_b, &mut opt_b, &x, &y, &mk(2)).unwrap();
        let mut net_c = blob_net(1);
        let mut opt_c = Adam::with_defaults(0.05);
        let cfg_clean = TrainConfig {
            checkpoint: None,
            ..mk(2)
        };
        fit_classifier(&mut net_c, &mut opt_c, &x, &y, &cfg_clean).unwrap();
        assert_eq!(params_of(&net_b), params_of(&net_c));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn training_is_reproducible() {
        let (x, y) = blobs(50);
        let run = || {
            let mut net = Sequential::from_specs(
                &[LayerSpec::Dense {
                    inputs: 2,
                    outputs: 2,
                }],
                7,
            )
            .unwrap();
            let mut opt = Adam::with_defaults(0.01);
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 16,
                seed: 11,
                label_smoothing: 0.0,
                verbose: false,
                checkpoint: None,
            };
            fit_classifier(&mut net, &mut opt, &x, &y, &cfg).unwrap();
            net.params()[0].value.clone()
        };
        assert_eq!(run(), run());
    }
}
