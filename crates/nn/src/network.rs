use crate::layer::{Layer, Mode, Param};
use crate::layers::{
    Activation, ActivationLayer, AvgPool2d, Conv2d, Dense, Dropout, Flatten, MaxPool2d, Reshape,
    Upsample2d,
};
use crate::{NnError, Result};
use adv_tensor::ops::{Conv2dSpec, Pool2dSpec};
use adv_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A declarative layer description.
///
/// Networks are built from a `Vec<LayerSpec>` plus a seed, which makes
/// architectures serializable (see [`crate::serialize`]) and reconstruction
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// Input feature count.
        inputs: usize,
        /// Output feature count.
        outputs: usize,
    },
    /// 2-D convolution.
    Conv2d(Conv2dSpec),
    /// Pointwise activation.
    Activation(Activation),
    /// Non-overlapping square max pooling.
    MaxPool2d {
        /// Window/stride size.
        k: usize,
    },
    /// Non-overlapping square average pooling.
    AvgPool2d {
        /// Window/stride size.
        k: usize,
    },
    /// Nearest-neighbour upsampling.
    Upsample2d {
        /// Integer scale factor.
        factor: usize,
    },
    /// Flatten NCHW to `[batch, features]`.
    Flatten,
    /// Reshape rows to a fixed per-item shape.
    Reshape {
        /// Target per-item shape.
        item_shape: Vec<usize>,
    },
    /// Inverted dropout.
    Dropout {
        /// Drop probability.
        p: f32,
    },
}

impl LayerSpec {
    fn build(&self, seed: u64) -> Result<Box<dyn Layer>> {
        Ok(match self {
            LayerSpec::Dense { inputs, outputs } => Box::new(Dense::new(*inputs, *outputs, seed)),
            LayerSpec::Conv2d(spec) => Box::new(Conv2d::new(*spec, seed)),
            LayerSpec::Activation(a) => Box::new(ActivationLayer::new(*a)),
            LayerSpec::MaxPool2d { k } => Box::new(MaxPool2d::new(Pool2dSpec::square(*k))),
            LayerSpec::AvgPool2d { k } => Box::new(AvgPool2d::new(Pool2dSpec::square(*k))),
            LayerSpec::Upsample2d { factor } => Box::new(Upsample2d::new(*factor)),
            LayerSpec::Flatten => Box::new(Flatten::new()),
            LayerSpec::Reshape { item_shape } => Box::new(Reshape::new(item_shape.clone())),
            LayerSpec::Dropout { p } => Box::new(Dropout::new(*p, seed)?),
        })
    }
}

/// A model that exposes its output and the gradient of a scalar loss with
/// respect to its *input* — the two capabilities every gradient-based attack
/// needs. The usage protocol is `forward` then `backward_input` with the
/// upstream gradient of whatever loss the caller assembled from the output.
pub trait Differentiable: Send {
    /// Runs the model in evaluation mode and returns its output
    /// (logits for classifiers, reconstructions for auto-encoders).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape does not match the model.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Back-propagates `grad_output` through the most recent [`forward`]
    /// call, returning `∂loss/∂input`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when no forward pass preceded.
    ///
    /// [`forward`]: Differentiable::forward
    fn backward_input(&mut self, grad_output: &Tensor) -> Result<Tensor>;
}

/// A feed-forward stack of layers built from [`LayerSpec`]s.
///
/// # Example
///
/// ```
/// use adv_nn::{Activation, LayerSpec, Mode, Sequential};
/// use adv_tensor::{Shape, Tensor};
///
/// let mut net = Sequential::from_specs(
///     &[
///         LayerSpec::Dense { inputs: 2, outputs: 4 },
///         LayerSpec::Activation(Activation::Tanh),
///         LayerSpec::Dense { inputs: 4, outputs: 2 },
///     ],
///     7,
/// )?;
/// let y = net.forward(&Tensor::zeros(Shape::matrix(1, 2)), Mode::Eval)?;
/// assert_eq!(y.shape().dims(), &[1, 2]);
/// # Ok::<(), adv_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct Sequential {
    specs: Vec<LayerSpec>,
    layers: Vec<Box<dyn Layer>>,
    seed: u64,
}

impl Sequential {
    /// Builds a network from layer specs; layer `i` is seeded with
    /// `seed ⊕ hash(i)` so two networks with the same specs and seed are
    /// identical.
    ///
    /// # Errors
    ///
    /// Returns construction errors from the individual layers (e.g. invalid
    /// dropout probability).
    pub fn from_specs(specs: &[LayerSpec], seed: u64) -> Result<Self> {
        let layers = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.build(seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Sequential {
            specs: specs.to_vec(),
            layers,
            seed,
        })
    }

    /// The architecture this network was built from.
    pub fn specs(&self) -> &[LayerSpec] {
        &self.specs
    }

    /// The construction seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Runs the full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from any layer.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Runs a cache-free evaluation-mode forward pass from `&self`.
    ///
    /// Agrees bit-for-bit with `forward(input, Mode::Eval)` but never writes
    /// backward caches, so a `Sequential` behind an `Arc` can serve
    /// inference from many threads concurrently (the serving engine's hot
    /// path).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from any layer.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x)?;
        }
        Ok(x)
    }

    /// Predicted class per batch row (argmax of [`infer`](Self::infer)
    /// logits), callable from `&self`.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; the output must be rank 2.
    pub fn predict_shared(&self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.infer(input)?;
        logits.argmax_rows().map_err(NnError::Tensor)
    }

    /// Back-propagates `grad_output` through all layers (accumulating
    /// parameter gradients) and returns the gradient with respect to the
    /// network input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] when called before `forward`.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Flat immutable parameter list across all layers.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Flat mutable parameter list across all layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// `true` when `other` computes the same function as `self`: identical
    /// architecture specs and bit-identical parameter values.
    ///
    /// Construction seeds and any cached activations are ignored — two
    /// networks that agree here produce bit-identical
    /// [`infer`](Self::infer) outputs for every input, which is what the
    /// fused defense pipeline keys its memoisation on.
    pub fn same_function(&self, other: &Sequential) -> bool {
        if self.specs != other.specs {
            return false;
        }
        let a = self.params();
        let b = other.params();
        a.len() == b.len() && a.iter().zip(&b).all(|(p, q)| p.value == q.value)
    }

    /// Predicted class per batch row (argmax of the output logits), in
    /// evaluation mode.
    ///
    /// # Errors
    ///
    /// Propagates forward errors; the output must be rank 2.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(input, Mode::Eval)?;
        logits.argmax_rows().map_err(NnError::Tensor)
    }
}

impl Clone for Sequential {
    /// Rebuilds the network from its specs and copies the parameter values.
    /// Forward/backward caches are not cloned.
    fn clone(&self) -> Self {
        // lint-ok(no-panic-lib): Clone cannot return Result; from_specs
        // re-validates specs that already built `self`, so this expect is
        // provably unreachable (pinned by clone tests over every layer kind).
        let mut net = Sequential::from_specs(&self.specs, self.seed)
            .expect("specs were validated when self was constructed");
        for (dst, src) in net.params_mut().into_iter().zip(self.params()) {
            dst.value = src.value.clone();
        }
        net
    }
}

impl Differentiable for Sequential {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        Sequential::forward(self, input, Mode::Eval)
    }

    fn backward_input(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.backward(grad_output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    fn mlp() -> Sequential {
        Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 3,
                    outputs: 5,
                },
                LayerSpec::Activation(Activation::Tanh),
                LayerSpec::Dense {
                    inputs: 5,
                    outputs: 2,
                },
            ],
            13,
        )
        .unwrap()
    }

    #[test]
    fn forward_produces_expected_shape() {
        let mut net = mlp();
        let y = net
            .forward(&Tensor::zeros(Shape::matrix(4, 3)), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape().dims(), &[4, 2]);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = mlp();
        let b = mlp();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.value, pb.value);
        }
    }

    #[test]
    fn different_layers_get_different_seeds() {
        let net = Sequential::from_specs(
            &[
                LayerSpec::Dense {
                    inputs: 4,
                    outputs: 4,
                },
                LayerSpec::Dense {
                    inputs: 4,
                    outputs: 4,
                },
            ],
            1,
        )
        .unwrap();
        let ps = net.params();
        assert_ne!(ps[0].value, ps[2].value);
    }

    #[test]
    fn end_to_end_input_gradient_matches_finite_differences() {
        let mut net = mlp();
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.7], Shape::matrix(1, 3)).unwrap();
        let y = net.forward(&x, Mode::Train).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let dx = net.backward(&dy).unwrap();

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut probe = mlp();
            let fp = probe.forward(&xp, Mode::Train).unwrap().sum();
            let fm = probe.forward(&xm, Mode::Train).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: {fd} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn param_counting() {
        let net = mlp();
        // 3*5 + 5 + 5*2 + 2 = 32
        assert_eq!(net.num_parameters(), 32);
        assert_eq!(net.num_layers(), 3);
    }

    #[test]
    fn zero_grads_clears_everything() {
        let mut net = mlp();
        let x = Tensor::ones(Shape::matrix(1, 3));
        let y = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert!(net
            .params()
            .iter()
            .any(|p| p.grad.map(f32::abs).sum() > 0.0));
        net.zero_grads();
        assert!(net
            .params()
            .iter()
            .all(|p| p.grad.map(f32::abs).sum() == 0.0));
    }

    #[test]
    fn predict_returns_argmax() {
        let mut net = mlp();
        let preds = net.predict(&Tensor::zeros(Shape::matrix(3, 3))).unwrap();
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| p < 2));
    }

    #[test]
    fn infer_matches_eval_forward_bitwise() {
        let mut net = mlp();
        let x = Tensor::from_fn(Shape::matrix(5, 3), |i| (i as f32 - 7.0) * 0.3);
        let eager = net.forward(&x, Mode::Eval).unwrap();
        let shared = net.infer(&x).unwrap();
        assert_eq!(eager, shared);
        assert_eq!(net.predict(&x).unwrap(), net.predict_shared(&x).unwrap());
    }

    #[test]
    fn infer_runs_concurrently_from_shared_reference() {
        let net = std::sync::Arc::new(mlp());
        let x = Tensor::from_fn(Shape::matrix(2, 3), |i| i as f32 * 0.1);
        let expected = net.infer(&x).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let net = net.clone();
                let x = x.clone();
                std::thread::spawn(move || net.infer(&x).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }

    #[test]
    fn differentiable_trait_object_usable() {
        let mut net = mlp();
        let model: &mut dyn Differentiable = &mut net;
        let x = Tensor::zeros(Shape::matrix(1, 3));
        let y = model.forward(&x).unwrap();
        let dx = model
            .backward_input(&Tensor::ones(y.shape().clone()))
            .unwrap();
        assert_eq!(dx.shape().dims(), &[1, 3]);
    }
}
