//! Loss functions.
//!
//! Every loss returns `(value, gradient)` where the gradient is with respect
//! to the first argument (predictions / logits), averaged over the batch.
//! The MSE/MAE pair matters to the paper: MagNet's default auto-encoders are
//! trained with mean squared error, and Figures 12–13 compare that against
//! mean absolute error to show the weakness to L1 attacks is not an artifact
//! of the L2 reconstruction loss.

use crate::softmax::{log_softmax_rows, softmax_rows};
use crate::{NnError, Result};
use adv_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which reconstruction loss an auto-encoder trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconstructionLoss {
    /// Mean squared error — MagNet's default.
    MeanSquaredError,
    /// Mean absolute error — the variant in paper Figures 12–13.
    MeanAbsoluteError,
}

impl ReconstructionLoss {
    /// Computes the loss value and gradient for this variant.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `pred` and `target` disagree.
    pub fn compute(self, pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
        match self {
            ReconstructionLoss::MeanSquaredError => mse(pred, target),
            ReconstructionLoss::MeanAbsoluteError => mae(pred, target),
        }
    }
}

/// Mean squared error `mean((pred − target)²)` with gradient
/// `2(pred − target)/N`.
///
/// # Errors
///
/// Returns a shape error when the operands disagree.
pub fn mse(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = pred.sub(target)?;
    let n = diff.len().max(1) as f32;
    let loss = diff.map(|v| v * v).sum() / n;
    let grad = diff.scale(2.0 / n);
    Ok((loss, grad))
}

/// Mean absolute error `mean(|pred − target|)` with (sub)gradient
/// `sign(pred − target)/N`.
///
/// # Errors
///
/// Returns a shape error when the operands disagree.
pub fn mae(pred: &Tensor, target: &Tensor) -> Result<(f32, Tensor)> {
    let diff = pred.sub(target)?;
    let n = diff.len().max(1) as f32;
    let loss = diff.map(f32::abs).sum() / n;
    let grad = diff.map(|v| {
        if v > 0.0 {
            1.0
        } else if v < 0.0 {
            -1.0
        } else {
            0.0
        }
    });
    Ok((loss, grad.scale(1.0 / n)))
}

/// Softmax cross-entropy over `[batch, classes]` logits against integer
/// labels, averaged over the batch. The gradient uses the standard
/// `(softmax − one_hot)/batch` form.
///
/// # Errors
///
/// Returns a rank error for non-matrix logits, a length error when the label
/// count differs from the batch, and [`NnError::InvalidLabel`] for labels
/// outside the class range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.shape().rank() != 2 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if labels.len() != n {
        return Err(NnError::Tensor(adv_tensor::TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        }));
    }
    for &label in labels {
        if label >= k {
            return Err(NnError::InvalidLabel { label, classes: k });
        }
    }
    let log_probs = log_softmax_rows(logits)?;
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        loss -= log_probs.as_slice()[i * k + label];
    }
    loss /= n as f32;

    let mut grad = softmax_rows(logits)?;
    let g = grad.as_mut_slice();
    for (i, &label) in labels.iter().enumerate() {
        g[i * k + label] -= 1.0;
    }
    let grad = grad.scale(1.0 / n as f32);
    Ok((loss, grad))
}

/// Softmax cross-entropy with **label smoothing**: the target distribution
/// puts `1 − ε` on the true class and `ε/(K−1)` on the rest.
///
/// Smoothing caps the logit margins a classifier can earn, which keeps its
/// confidence in the regime where confidence-κ attack sweeps are meaningful
/// (an over-confident victim needs enormous perturbations at moderate κ and
/// distorts the paper's defense curves).
///
/// # Errors
///
/// Same as [`softmax_cross_entropy`], plus [`NnError::InvalidArgument`] when
/// `epsilon` is outside `[0, 1)`.
pub fn softmax_cross_entropy_smoothed(
    logits: &Tensor,
    labels: &[usize],
    epsilon: f32,
) -> Result<(f32, Tensor)> {
    if !(0.0..1.0).contains(&epsilon) {
        return Err(NnError::InvalidArgument(format!(
            "label smoothing {epsilon} outside [0, 1)"
        )));
    }
    if epsilon == 0.0 {
        return softmax_cross_entropy(logits, labels);
    }
    if logits.shape().rank() != 2 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if labels.len() != n {
        return Err(NnError::Tensor(adv_tensor::TensorError::LengthMismatch {
            expected: n,
            actual: labels.len(),
        }));
    }
    for &label in labels {
        if label >= k {
            return Err(NnError::InvalidLabel { label, classes: k });
        }
    }
    let off = epsilon / (k - 1).max(1) as f32;
    let on = 1.0 - epsilon;
    let log_probs = log_softmax_rows(logits)?;
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        for j in 0..k {
            let target = if j == label { on } else { off };
            loss -= target * log_probs.as_slice()[i * k + j];
        }
    }
    loss /= n as f32;

    let mut grad = softmax_rows(logits)?;
    let g = grad.as_mut_slice();
    for (i, &label) in labels.iter().enumerate() {
        for j in 0..k {
            let target = if j == label { on } else { off };
            g[i * k + j] -= target;
        }
    }
    let grad = grad.scale(1.0 / n as f32);
    Ok((loss, grad))
}

/// Classification accuracy of logits against labels (fraction correct).
///
/// # Errors
///
/// Returns a rank error for non-matrix logits or mismatched label counts.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let preds = logits.argmax_rows().map_err(NnError::Tensor)?;
    if preds.len() != labels.len() {
        return Err(NnError::Tensor(adv_tensor::TensorError::LengthMismatch {
            expected: preds.len(),
            actual: labels.len(),
        }));
    }
    if preds.is_empty() {
        return Ok(0.0);
    }
    let correct = preds
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    fn t(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::matrix(r, c)).unwrap()
    }

    #[test]
    fn mse_known_value() {
        let p = t(&[1.0, 2.0], 1, 2);
        let y = t(&[0.0, 0.0], 1, 2);
        let (loss, grad) = mse(&p, &y).unwrap();
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn mae_known_value() {
        let p = t(&[1.0, -2.0], 1, 2);
        let y = t(&[0.0, 0.0], 1, 2);
        let (loss, grad) = mae(&p, &y).unwrap();
        assert!((loss - 1.5).abs() < 1e-6);
        assert_eq!(grad.as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_zero_at_target() {
        let p = t(&[0.3, 0.7], 1, 2);
        let (loss, grad) = mse(&p, &p).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = t(&[10.0, 0.0], 1, 2);
        let bad = t(&[0.0, 10.0], 1, 2);
        let (l_good, _) = softmax_cross_entropy(&good, &[0]).unwrap();
        let (l_bad, _) = softmax_cross_entropy(&bad, &[0]).unwrap();
        assert!(l_good < l_bad);
        assert!(l_good < 0.01);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits = t(&[0.5, -0.3, 1.2, -1.0, 0.7, 0.1], 2, 3);
        let labels = [2usize, 1usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-2,
                "grad[{i}]: {fd} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = t(&[0.0, 0.0], 1, 2);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[5]),
            Err(NnError::InvalidLabel { .. })
        ));
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = t(&[0.9, 0.1, 0.2, 0.8], 2, 2);
        assert_eq!(accuracy(&logits, &[0, 1]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]).unwrap(), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]).unwrap(), 0.5);
    }

    #[test]
    fn smoothed_loss_matches_unsmoothed_at_zero() {
        let logits = t(&[0.5, -0.3, 1.2], 1, 3);
        let (a, ga) = softmax_cross_entropy(&logits, &[2]).unwrap();
        let (b, gb) = softmax_cross_entropy_smoothed(&logits, &[2], 0.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(ga, gb);
    }

    #[test]
    fn smoothed_gradient_matches_finite_differences() {
        let logits = t(&[0.5, -0.3, 1.2, -1.0, 0.7, 0.1], 2, 3);
        let labels = [2usize, 1usize];
        let eps_smooth = 0.1;
        let (_, grad) = softmax_cross_entropy_smoothed(&logits, &labels, eps_smooth).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy_smoothed(&lp, &labels, eps_smooth).unwrap();
            let (fm, _) = softmax_cross_entropy_smoothed(&lm, &labels, eps_smooth).unwrap();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-2,
                "grad[{i}]: {fd} vs {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn smoothing_bounds_the_optimal_margin() {
        // With smoothing, pushing the true logit to infinity *increases*
        // loss beyond a point — the gradient on the true class flips sign.
        let small = t(&[2.0, 0.0], 1, 2);
        let huge = t(&[50.0, 0.0], 1, 2);
        let (_, g_small) = softmax_cross_entropy_smoothed(&small, &[0], 0.1).unwrap();
        let (_, g_huge) = softmax_cross_entropy_smoothed(&huge, &[0], 0.1).unwrap();
        assert!(g_small.as_slice()[0] < 0.0); // still wants to grow
        assert!(g_huge.as_slice()[0] > 0.0); // over-confident: pushed back
    }

    #[test]
    fn smoothed_loss_validates_epsilon() {
        let logits = t(&[0.0, 0.0], 1, 2);
        assert!(softmax_cross_entropy_smoothed(&logits, &[0], 1.0).is_err());
        assert!(softmax_cross_entropy_smoothed(&logits, &[0], -0.1).is_err());
    }

    #[test]
    fn reconstruction_loss_dispatch() {
        let p = t(&[1.0], 1, 1);
        let y = t(&[0.0], 1, 1);
        let (l2, _) = ReconstructionLoss::MeanSquaredError
            .compute(&p, &y)
            .unwrap();
        let (l1, _) = ReconstructionLoss::MeanAbsoluteError
            .compute(&p, &y)
            .unwrap();
        assert_eq!(l2, 1.0);
        assert_eq!(l1, 1.0);
    }
}
