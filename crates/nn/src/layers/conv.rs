use crate::layer::{Layer, Mode, Param};
use crate::{NnError, Result};
use adv_tensor::ops::{conv2d, conv2d_backward, Conv2dSpec};
use adv_tensor::{init, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-D convolution layer over NCHW batches.
///
/// Weights are `[out_channels, in_channels, kh, kw]`, initialized
/// Glorot-uniform with fan-in `c·kh·kw` and fan-out `oc·kh·kw` — suitable for
/// the sigmoid auto-encoders MagNet uses as well as the ReLU classifiers.
#[derive(Debug)]
pub struct Conv2d {
    spec: Conv2dSpec,
    weight: Param,
    bias: Param,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer from a geometry spec, seeded by `seed`.
    pub fn new(spec: Conv2dSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = spec.in_channels * spec.kh * spec.kw;
        let fan_out = spec.out_channels * spec.kh * spec.kw;
        let weight = init::glorot_uniform(
            Shape::new(vec![spec.out_channels, spec.in_channels, spec.kh, spec.kw]),
            fan_in,
            fan_out,
            &mut rng,
        );
        Conv2d {
            spec,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(Shape::vector(spec.out_channels))),
            cache: None,
        }
    }

    /// The convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.cache = Some(input.clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(conv2d(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
        )?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "conv2d" })?;
        let (dx, dw, db) = conv2d_backward(x, &self.weight.value, grad_out, &self.spec)?;
        self.weight.grad.add_assign(&dw)?;
        self.bias.grad.add_assign(&db)?;
        Ok(dx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn layer_type(&self) -> &'static str {
        "conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_same_padding() {
        let mut layer = Conv2d::new(Conv2dSpec::same(1, 4, 3), 0);
        let x = Tensor::zeros(Shape::nchw(2, 1, 8, 8));
        let y = layer.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Conv2d::new(Conv2dSpec::same(1, 1, 3), 0);
        let dy = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        assert!(matches!(
            layer.backward(&dy),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let spec = Conv2dSpec::same(1, 2, 3);
        let mut layer = Conv2d::new(spec, 11);
        let x = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| ((i % 7) as f32 - 3.0) * 0.2);
        let y = layer.forward(&x, Mode::Train).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let dx = layer.backward(&dy).unwrap();

        let eps = 1e-3f32;
        for i in [0usize, 3, 7, 12, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut probe = Conv2d::new(spec, 11);
            let fp = probe.forward(&xp, Mode::Train).unwrap().sum();
            let fm = probe.forward(&xm, Mode::Train).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 2e-2,
                "dx[{i}]: {fd} vs {}",
                dx.as_slice()[i]
            );
        }
    }
}
