use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use adv_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The pointwise nonlinearities used across the reproduction.
///
/// MagNet's auto-encoders are sigmoid end-to-end (paper Tables II and V);
/// the victim classifiers use ReLU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// `1 / (1 + e^{−x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* `y = apply(x)`.
    ///
    /// Using the output keeps the backward pass a single elementwise multiply
    /// over the cached forward result.
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Stable lowercase name for serialization.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
        }
    }
}

/// A parameter-free layer applying an [`Activation`] elementwise.
#[derive(Debug)]
pub struct ActivationLayer {
    activation: Activation,
    cache: Option<Tensor>,
}

impl ActivationLayer {
    /// Creates the layer.
    pub fn new(activation: Activation) -> Self {
        ActivationLayer {
            activation,
            cache: None,
        }
    }

    /// The wrapped activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.cache = Some(y.clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        let a = self.activation;
        Ok(input.map(|v| a.apply(v)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "activation",
        })?;
        let a = self.activation;
        Ok(grad_out.zip_map(y, |g, yv| g * a.derivative_from_output(yv))?)
    }

    fn layer_type(&self) -> &'static str {
        "activation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::vector(data.len())).unwrap()
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut l = ActivationLayer::new(Activation::Relu);
        let y = l.forward(&t(&[-1.0, 0.0, 2.0]), Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_known_values() {
        let mut l = ActivationLayer::new(Activation::Sigmoid);
        let y = l.forward(&t(&[0.0]), Mode::Eval).unwrap();
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tanh_is_odd() {
        let a = Activation::Tanh;
        assert!((a.apply(1.3) + a.apply(-1.3)).abs() < 1e-6);
    }

    #[test]
    fn backward_gates_gradient() {
        let mut l = ActivationLayer::new(Activation::Relu);
        let _ = l.forward(&t(&[-1.0, 2.0]), Mode::Train).unwrap();
        let dx = l.backward(&t(&[5.0, 5.0])).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        for act in [Activation::Relu, Activation::Sigmoid, Activation::Tanh] {
            let x = t(&[0.3, -0.7, 1.5, -2.1]);
            let mut l = ActivationLayer::new(act);
            let _ = l.forward(&x, Mode::Train).unwrap();
            let dx = l.backward(&Tensor::ones(x.shape().clone())).unwrap();
            let eps = 1e-3f32;
            for i in 0..x.len() {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let fd =
                    (xp.map(|v| act.apply(v)).sum() - xm.map(|v| act.apply(v)).sum()) / (2.0 * eps);
                assert!(
                    (fd - dx.as_slice()[i]).abs() < 1e-2,
                    "{act:?} dx[{i}]: {fd} vs {}",
                    dx.as_slice()[i]
                );
            }
        }
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = ActivationLayer::new(Activation::Sigmoid);
        assert!(matches!(
            l.backward(&t(&[1.0])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Activation::Relu.name(), "relu");
        assert_eq!(Activation::Sigmoid.name(), "sigmoid");
        assert_eq!(Activation::Tanh.name(), "tanh");
    }
}
