use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use adv_tensor::ops::{upsample2d_nearest, upsample2d_nearest_backward};
use adv_tensor::Tensor;

/// Nearest-neighbour upsampling by an integer factor (MagNet's MNIST
/// auto-encoder decoder, paper Table II).
#[derive(Debug)]
pub struct Upsample2d {
    factor: usize,
    ran_forward: bool,
}

impl Upsample2d {
    /// Creates an upsampling layer with the given integer factor.
    pub fn new(factor: usize) -> Self {
        Upsample2d {
            factor,
            ran_forward: false,
        }
    }

    /// The upsampling factor.
    pub fn factor(&self) -> usize {
        self.factor
    }
}

impl Layer for Upsample2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.ran_forward = true;
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(upsample2d_nearest(input, self.factor)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if !self.ran_forward {
            return Err(NnError::NoForwardCache {
                layer: "upsample2d",
            });
        }
        Ok(upsample2d_nearest_backward(grad_out, self.factor)?)
    }

    fn layer_type(&self) -> &'static str {
        "upsample2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    #[test]
    fn doubles_spatial_size() {
        let mut l = Upsample2d::new(2);
        let x = Tensor::ones(Shape::nchw(1, 1, 3, 3));
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 6, 6]);
    }

    #[test]
    fn backward_sums_blocks() {
        let mut l = Upsample2d::new(2);
        let x = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let y = l.forward(&x, Mode::Eval).unwrap();
        let dx = l.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert!(dx.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = Upsample2d::new(2);
        assert!(matches!(
            l.backward(&Tensor::zeros(Shape::nchw(1, 1, 2, 2))),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
