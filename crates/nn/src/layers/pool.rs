use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use adv_tensor::ops::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Pool2dSpec,
};
use adv_tensor::{Shape, Tensor};

/// Max pooling over NCHW batches (used by the victim classifiers).
#[derive(Debug)]
pub struct MaxPool2d {
    spec: Pool2dSpec,
    cache: Option<(Shape, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    pub fn new(spec: Pool2dSpec) -> Self {
        MaxPool2d { spec, cache: None }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &Pool2dSpec {
        &self.spec
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let (y, idx) = max_pool2d(input, &self.spec)?;
        self.cache = Some((input.shape().clone(), idx));
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(max_pool2d(input, &self.spec)?.0)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (shape, idx) = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "maxpool2d" })?;
        Ok(max_pool2d_backward(shape, grad_out, idx)?)
    }

    fn layer_type(&self) -> &'static str {
        "maxpool2d"
    }
}

/// Average pooling over NCHW batches (MagNet's MNIST auto-encoder encoder).
#[derive(Debug)]
pub struct AvgPool2d {
    spec: Pool2dSpec,
    cache: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(spec: Pool2dSpec) -> Self {
        AvgPool2d { spec, cache: None }
    }

    /// The pooling geometry.
    pub fn spec(&self) -> &Pool2dSpec {
        &self.spec
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.cache = Some(input.shape().clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        Ok(avg_pool2d(input, &self.spec)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "avgpool2d" })?;
        Ok(avg_pool2d_backward(shape, grad_out, &self.spec)?)
    }

    fn layer_type(&self) -> &'static str {
        "avgpool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_forward_backward_roundtrip() {
        let mut l = MaxPool2d::new(Pool2dSpec::square(2));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::nchw(1, 1, 2, 2)).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[4.0]);
        let dx = l.backward(&Tensor::ones(Shape::nchw(1, 1, 1, 1))).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn avg_pool_forward_backward_roundtrip() {
        let mut l = AvgPool2d::new(Pool2dSpec::square(2));
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], Shape::nchw(1, 1, 2, 2)).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[5.0]);
        let dx = l.backward(&Tensor::ones(Shape::nchw(1, 1, 1, 1))).unwrap();
        assert_eq!(dx.as_slice(), &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut l = MaxPool2d::new(Pool2dSpec::square(2));
        assert!(matches!(
            l.backward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1))),
            Err(NnError::NoForwardCache { .. })
        ));
        let mut l = AvgPool2d::new(Pool2dSpec::square(2));
        assert!(matches!(
            l.backward(&Tensor::zeros(Shape::nchw(1, 1, 1, 1))),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
