use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use adv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: active only in [`Mode::Train`], identity in
/// [`Mode::Eval`].
///
/// Kept values are scaled by `1/(1−p)` during training so the eval path needs
/// no rescaling. The mask RNG is owned by the layer and seeded at
/// construction, keeping training reproducible.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer dropping each unit with probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidArgument(format!(
                "dropout probability {p} outside [0, 1)"
            )));
        }
        Ok(Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: None,
        })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => {
                self.mask = Some(Tensor::ones(input.shape().clone()));
                Ok(input.clone())
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let mask = Tensor::from_fn(input.shape().clone(), |_| {
                    if self.rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                });
                let y = input.mul(&mask)?;
                self.mask = Some(mask);
                Ok(y)
            }
        }
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        // Inverted dropout is the identity in evaluation mode.
        Ok(input.clone())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dropout" })?;
        Ok(grad_out.mul(mask)?)
    }

    fn layer_type(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0).unwrap();
        let x = Tensor::ones(Shape::vector(8));
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.3, 123).unwrap();
        let x = Tensor::ones(Shape::vector(20_000));
        let y = d.forward(&x, Mode::Train).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 7).unwrap();
        let x = Tensor::ones(Shape::vector(16));
        let y = d.forward(&x, Mode::Train).unwrap();
        let dx = d.backward(&Tensor::ones(x.shape().clone())).unwrap();
        // Where the output was zeroed, the gradient must be zeroed too.
        for (yo, go) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(yo == &0.0, go == &0.0);
        }
    }

    #[test]
    fn rejects_invalid_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }
}
