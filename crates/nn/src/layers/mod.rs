//! Concrete layer implementations.
//!
//! All layers obey the [`Layer`](crate::Layer) contract: `forward` caches,
//! `backward` consumes the cache and returns the input gradient.

mod activation;
mod conv;
mod dense;
mod dropout;
mod pool;
mod reshape;
mod upsample;

pub use activation::{Activation, ActivationLayer};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use pool::{AvgPool2d, MaxPool2d};
pub use reshape::{Flatten, Reshape};
pub use upsample::Upsample2d;
