use crate::layer::{Layer, Mode};
use crate::{NnError, Result};
use adv_tensor::{Shape, Tensor};

/// Flattens NCHW (or any rank ≥ 2) batches to `[batch, features]`, the shape
/// dense layers expect.
#[derive(Debug)]
pub struct Flatten {
    cache: Option<Shape>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Flatten { cache: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.cache = Some(input.shape().clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() < 2 {
            return Err(NnError::InvalidArgument(
                "flatten requires a batched input (rank >= 2)".into(),
            ));
        }
        let n = input.shape().dim(0);
        let features = input.shape().volume() / n;
        Ok(input.reshape(Shape::matrix(n, features))?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "flatten" })?;
        Ok(grad_out.reshape(shape.clone())?)
    }

    fn layer_type(&self) -> &'static str {
        "flatten"
    }
}

/// Reshapes `[batch, features]` rows back into a fixed per-item shape
/// (the inverse of [`Flatten`], used by auto-encoder decoders).
#[derive(Debug)]
pub struct Reshape {
    item_shape: Vec<usize>,
    cache: Option<Shape>,
}

impl Reshape {
    /// Creates a layer that reshapes each batch item to `item_shape`.
    pub fn new(item_shape: Vec<usize>) -> Self {
        Reshape {
            item_shape,
            cache: None,
        }
    }

    /// Target per-item shape.
    pub fn item_shape(&self) -> &[usize] {
        &self.item_shape
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.infer(input)?;
        self.cache = Some(input.shape().clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        if input.shape().rank() < 1 {
            return Err(NnError::InvalidArgument(
                "reshape requires a batched input".into(),
            ));
        }
        let n = input.shape().dim(0);
        let mut dims = vec![n];
        dims.extend_from_slice(&self.item_shape);
        Ok(input.reshape(Shape::new(dims))?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "reshape" })?;
        Ok(grad_out.reshape(shape.clone())?)
    }

    fn layer_type(&self) -> &'static str {
        "reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(Shape::nchw(2, 3, 4, 4), |i| i as f32);
        let y = f.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[2, 48]);
        let dx = f.backward(&y).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.as_slice(), x.as_slice());
    }

    #[test]
    fn reshape_restores_images() {
        let mut r = Reshape::new(vec![1, 4, 4]);
        let x = Tensor::from_fn(Shape::matrix(3, 16), |i| i as f32);
        let y = r.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[3, 1, 4, 4]);
        let dx = r.backward(&y).unwrap();
        assert_eq!(dx.shape().dims(), &[3, 16]);
    }

    #[test]
    fn flatten_rejects_rank1() {
        let mut f = Flatten::new();
        assert!(f
            .forward(&Tensor::zeros(Shape::vector(4)), Mode::Eval)
            .is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(matches!(
            f.backward(&Tensor::zeros(Shape::matrix(1, 4))),
            Err(NnError::NoForwardCache { .. })
        ));
        let mut r = Reshape::new(vec![2, 2]);
        assert!(matches!(
            r.backward(&Tensor::zeros(Shape::new(vec![1, 2, 2]))),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
