use crate::layer::{Layer, Mode, Param};
use crate::{NnError, Result};
use adv_tensor::ops::{matmul, matmul_a_bt, matmul_at_b};
use adv_tensor::{init, Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully connected layer: `y = x·W + b` with `x: [batch, in]`,
/// `W: [in, out]`, `b: [out]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    inputs: usize,
    outputs: usize,
    cache: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights drawn from `seed`.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weight =
            init::glorot_uniform(Shape::matrix(inputs, outputs), inputs, outputs, &mut rng);
        Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(Shape::vector(outputs))),
            inputs,
            outputs,
            cache: None,
        }
    }

    /// Input feature count.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output feature count.
    pub fn outputs(&self) -> usize {
        self.outputs
    }
}

impl Dense {
    fn affine(&self, input: &Tensor) -> Result<Tensor> {
        let mut y = matmul(input, &self.weight.value)?;
        let b = self.bias.value.as_slice();
        for row in y.as_mut_slice().chunks_exact_mut(self.outputs) {
            for (v, &bi) in row.iter_mut().zip(b.iter()) {
                *v += bi;
            }
        }
        Ok(y)
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let y = self.affine(input)?;
        self.cache = Some(input.clone());
        Ok(y)
    }

    fn infer(&self, input: &Tensor) -> Result<Tensor> {
        self.affine(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        // dW = xᵀ·dy
        let dw = matmul_at_b(x, grad_out)?;
        self.weight.grad.add_assign(&dw)?;
        // db = column sums of dy
        for row in grad_out.as_slice().chunks_exact(self.outputs) {
            for (g, &v) in self.bias.grad.as_mut_slice().iter_mut().zip(row.iter()) {
                *g += v;
            }
        }
        // dx = dy·Wᵀ
        Ok(matmul_a_bt(grad_out, &self.weight.value)?)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn layer_type(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_applies_affine_map() {
        let mut layer = Dense::new(2, 2, 0);
        // Overwrite weights with a known matrix.
        layer.params_mut()[0].value =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2)).unwrap();
        layer.params_mut()[1].value = Tensor::from_vec(vec![0.5, -0.5], Shape::vector(2)).unwrap();
        let x = Tensor::from_vec(vec![1.0, 1.0], Shape::matrix(1, 2)).unwrap();
        let y = layer.forward(&x, Mode::Eval).unwrap();
        // [1,1]·[[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Dense::new(2, 2, 0);
        let dy = Tensor::zeros(Shape::matrix(1, 2));
        assert!(matches!(
            layer.backward(&dy),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut layer = Dense::new(3, 2, 7);
        let x =
            Tensor::from_vec(vec![0.2, -0.4, 0.9, 1.0, 0.0, -1.0], Shape::matrix(2, 3)).unwrap();
        let y = layer.forward(&x, Mode::Train).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let dx = layer.backward(&dy).unwrap();

        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut probe = Dense::new(3, 2, 7);
            let fp = probe.forward(&xp, Mode::Train).unwrap().sum();
            let fm = probe.forward(&xm, Mode::Train).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: {fd} vs {}",
                dx.as_slice()[i]
            );
        }
    }

    #[test]
    fn weight_gradient_accumulates() {
        let mut layer = Dense::new(2, 1, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0], Shape::matrix(1, 2)).unwrap();
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let dy = Tensor::ones(Shape::matrix(1, 1));
        let _ = layer.backward(&dy).unwrap();
        let _ = layer.forward(&x, Mode::Train).unwrap();
        let _ = layer.backward(&dy).unwrap();
        // dW = x for each pass; two passes accumulate.
        assert_eq!(layer.params()[0].grad.as_slice(), &[2.0, 4.0]);
        assert_eq!(layer.params()[1].grad.as_slice(), &[2.0]);
    }

    #[test]
    fn seeded_construction_reproducible() {
        let a = Dense::new(4, 4, 9);
        let b = Dense::new(4, 4, 9);
        assert_eq!(a.params()[0].value, b.params()[0].value);
    }
}
