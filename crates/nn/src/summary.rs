//! Static shape inference and human-readable network summaries.
//!
//! [`infer_output_shape`] propagates a per-item input shape through a
//! [`LayerSpec`] list *without building the network*, catching architecture
//! mistakes (channel mismatches, indivisible pooling, flatten/dense size
//! disagreements) at configuration time. [`summarize`] renders a Keras-style
//! table with per-layer output shapes and parameter counts.

use crate::layers::Activation;
use crate::{LayerSpec, NnError, Result};

/// The per-item shape flowing between layers: either an image `[c, h, w]`
/// or a feature vector `[features]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemShape {
    /// Channels × height × width.
    Image {
        /// Channel count.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A flat feature vector.
    Features(usize),
}

impl ItemShape {
    /// Total number of scalars.
    pub fn volume(&self) -> usize {
        match self {
            ItemShape::Image { c, h, w } => c * h * w,
            ItemShape::Features(n) => *n,
        }
    }
}

impl std::fmt::Display for ItemShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ItemShape::Image { c, h, w } => write!(f, "{c}x{h}x{w}"),
            ItemShape::Features(n) => write!(f, "{n}"),
        }
    }
}

/// Number of learnable parameters a layer spec will create.
pub fn parameter_count(spec: &LayerSpec) -> usize {
    match spec {
        LayerSpec::Dense { inputs, outputs } => inputs * outputs + outputs,
        LayerSpec::Conv2d(c) => c.out_channels * c.in_channels * c.kh * c.kw + c.out_channels,
        _ => 0,
    }
}

/// Propagates `input` through one layer spec.
///
/// # Errors
///
/// Returns [`NnError::InvalidArgument`] when the shape is incompatible with
/// the layer (wrong channel count, indivisible pooling, vector into a
/// convolution, dense size mismatch…).
pub fn layer_output_shape(spec: &LayerSpec, input: &ItemShape) -> Result<ItemShape> {
    let err = |msg: String| Err(NnError::InvalidArgument(msg));
    match spec {
        LayerSpec::Dense { inputs, outputs } => match input {
            ItemShape::Features(n) if n == inputs => Ok(ItemShape::Features(*outputs)),
            ItemShape::Features(n) => err(format!("dense expects {inputs} features, got {n}")),
            img => err(format!("dense expects a feature vector, got image {img}")),
        },
        LayerSpec::Conv2d(c) => match input {
            ItemShape::Image { c: ic, h, w } if *ic == c.in_channels => {
                if h + 2 * c.padding < c.kh || w + 2 * c.padding < c.kw {
                    return err(format!(
                        "conv kernel {}x{} larger than input {h}x{w}",
                        c.kh, c.kw
                    ));
                }
                let (ho, wo) = c.output_hw(*h, *w);
                Ok(ItemShape::Image {
                    c: c.out_channels,
                    h: ho,
                    w: wo,
                })
            }
            ItemShape::Image { c: ic, .. } => {
                err(format!("conv expects {} channels, got {ic}", c.in_channels))
            }
            v => err(format!("conv expects an image, got vector {v}")),
        },
        LayerSpec::Activation(_) | LayerSpec::Dropout { .. } => Ok(input.clone()),
        LayerSpec::MaxPool2d { k } | LayerSpec::AvgPool2d { k } => match input {
            ItemShape::Image { c, h, w } => {
                if *k == 0 || h < k || w < k {
                    return err(format!("pool window {k} invalid for {h}x{w}"));
                }
                Ok(ItemShape::Image {
                    c: *c,
                    h: h / k,
                    w: w / k,
                })
            }
            v => err(format!("pooling expects an image, got vector {v}")),
        },
        LayerSpec::Upsample2d { factor } => match input {
            ItemShape::Image { c, h, w } => {
                if *factor == 0 {
                    return err("upsample factor must be > 0".into());
                }
                Ok(ItemShape::Image {
                    c: *c,
                    h: h * factor,
                    w: w * factor,
                })
            }
            v => err(format!("upsample expects an image, got vector {v}")),
        },
        LayerSpec::Flatten => Ok(ItemShape::Features(input.volume())),
        LayerSpec::Reshape { item_shape } => {
            let target: usize = item_shape.iter().product();
            if target != input.volume() {
                return err(format!(
                    "reshape to {item_shape:?} ({target}) from volume {}",
                    input.volume()
                ));
            }
            match item_shape.as_slice() {
                [c, h, w] => Ok(ItemShape::Image {
                    c: *c,
                    h: *h,
                    w: *w,
                }),
                [n] => Ok(ItemShape::Features(*n)),
                other => err(format!("unsupported reshape target {other:?}")),
            }
        }
    }
}

/// Propagates `input` through a whole architecture, returning the output
/// shape.
///
/// # Errors
///
/// Returns the first layer's incompatibility, naming its index.
pub fn infer_output_shape(specs: &[LayerSpec], input: ItemShape) -> Result<ItemShape> {
    let mut shape = input;
    for (i, spec) in specs.iter().enumerate() {
        shape = layer_output_shape(spec, &shape)
            .map_err(|e| NnError::InvalidArgument(format!("layer {i}: {e}")))?;
    }
    Ok(shape)
}

/// Renders a Keras-style summary table with per-layer output shapes and
/// parameter counts.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn summarize(specs: &[LayerSpec], input: ItemShape) -> Result<String> {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>14} {:>10}\n",
        "layer", "output", "params"
    ));
    out.push_str(&"-".repeat(50));
    out.push('\n');
    out.push_str(&format!(
        "{:<24} {:>14} {:>10}\n",
        "(input)",
        input.to_string(),
        0
    ));
    let mut shape = input;
    let mut total = 0usize;
    for spec in specs {
        shape = layer_output_shape(spec, &shape)?;
        let params = parameter_count(spec);
        total += params;
        let name = match spec {
            LayerSpec::Dense { .. } => "Dense".to_string(),
            LayerSpec::Conv2d(c) => format!("Conv2d {}x{}", c.kh, c.kw),
            LayerSpec::Activation(a) => format!(
                "Activation({})",
                match a {
                    Activation::Relu => "relu",
                    Activation::Sigmoid => "sigmoid",
                    Activation::Tanh => "tanh",
                }
            ),
            LayerSpec::MaxPool2d { k } => format!("MaxPool2d {k}x{k}"),
            LayerSpec::AvgPool2d { k } => format!("AvgPool2d {k}x{k}"),
            LayerSpec::Upsample2d { factor } => format!("Upsample2d x{factor}"),
            LayerSpec::Flatten => "Flatten".to_string(),
            LayerSpec::Reshape { .. } => "Reshape".to_string(),
            LayerSpec::Dropout { p } => format!("Dropout {p}"),
        };
        out.push_str(&format!(
            "{:<24} {:>14} {:>10}\n",
            name,
            shape.to_string(),
            params
        ));
    }
    out.push_str(&"-".repeat(50));
    out.push('\n');
    out.push_str(&format!("total parameters: {total}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::ops::Conv2dSpec;

    fn cnn() -> Vec<LayerSpec> {
        vec![
            LayerSpec::Conv2d(Conv2dSpec::same(1, 8, 3)),
            LayerSpec::Activation(Activation::Relu),
            LayerSpec::MaxPool2d { k: 2 },
            LayerSpec::Flatten,
            LayerSpec::Dense {
                inputs: 8 * 14 * 14,
                outputs: 10,
            },
        ]
    }

    #[test]
    fn infers_cnn_shapes() {
        let out = infer_output_shape(&cnn(), ItemShape::Image { c: 1, h: 28, w: 28 }).unwrap();
        assert_eq!(out, ItemShape::Features(10));
    }

    #[test]
    fn shape_inference_matches_execution() {
        use crate::{Mode, Sequential};
        use adv_tensor::{Shape, Tensor};
        let specs = cnn();
        let inferred = infer_output_shape(&specs, ItemShape::Image { c: 1, h: 28, w: 28 }).unwrap();
        let mut net = Sequential::from_specs(&specs, 0).unwrap();
        let y = net
            .forward(&Tensor::zeros(Shape::nchw(2, 1, 28, 28)), Mode::Eval)
            .unwrap();
        assert_eq!(inferred.volume(), y.shape().volume() / 2);
    }

    #[test]
    fn catches_channel_mismatch() {
        let specs = [LayerSpec::Conv2d(Conv2dSpec::same(3, 8, 3))];
        let err = infer_output_shape(&specs, ItemShape::Image { c: 1, h: 8, w: 8 }).unwrap_err();
        assert!(err.to_string().contains("layer 0"));
        assert!(err.to_string().contains("3 channels"));
    }

    #[test]
    fn catches_dense_size_mismatch() {
        let specs = [
            LayerSpec::Flatten,
            LayerSpec::Dense {
                inputs: 100,
                outputs: 10,
            },
        ];
        assert!(infer_output_shape(&specs, ItemShape::Image { c: 1, h: 8, w: 8 }).is_err());
    }

    #[test]
    fn catches_vector_into_conv() {
        let specs = [LayerSpec::Conv2d(Conv2dSpec::same(1, 2, 3))];
        assert!(infer_output_shape(&specs, ItemShape::Features(64)).is_err());
    }

    #[test]
    fn reshape_roundtrip() {
        let specs = [
            LayerSpec::Flatten,
            LayerSpec::Reshape {
                item_shape: vec![2, 4, 4],
            },
        ];
        let out = infer_output_shape(&specs, ItemShape::Image { c: 2, h: 4, w: 4 }).unwrap();
        assert_eq!(out, ItemShape::Image { c: 2, h: 4, w: 4 });
    }

    #[test]
    fn parameter_counts_match_built_network() {
        use crate::Sequential;
        let specs = cnn();
        let net = Sequential::from_specs(&specs, 0).unwrap();
        let counted: usize = specs.iter().map(parameter_count).sum();
        assert_eq!(counted, net.num_parameters());
    }

    #[test]
    fn summary_renders_table() {
        let s = summarize(&cnn(), ItemShape::Image { c: 1, h: 28, w: 28 }).unwrap();
        assert!(s.contains("Conv2d 3x3"));
        assert!(s.contains("total parameters:"));
        assert!(s.contains("8x14x14"));
    }

    #[test]
    fn magnet_architectures_infer_cleanly() {
        // The auto-encoders must map images back to their own shape.
        use adv_tensor::ops::Conv2dSpec as C;
        let ae = vec![
            LayerSpec::Conv2d(C::same(1, 3, 3)),
            LayerSpec::Activation(Activation::Sigmoid),
            LayerSpec::AvgPool2d { k: 2 },
            LayerSpec::Conv2d(C::same(3, 3, 3)),
            LayerSpec::Activation(Activation::Sigmoid),
            LayerSpec::Upsample2d { factor: 2 },
            LayerSpec::Conv2d(C::same(3, 1, 3)),
            LayerSpec::Activation(Activation::Sigmoid),
        ];
        let input = ItemShape::Image { c: 1, h: 28, w: 28 };
        assert_eq!(infer_output_shape(&ae, input.clone()).unwrap(), input);
    }
}
