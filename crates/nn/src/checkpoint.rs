//! Epoch-granular training checkpoints.
//!
//! A checkpoint freezes everything a killed training run needs to continue
//! bit-identically: the model weights, the optimizer's accumulated state
//! (momentum buffers, Adam moments and step count) and the epoch history.
//! The RNG needs no saved position — the training loop derives each epoch's
//! RNG from `(seed, epoch)`, so "resume at epoch k" *is* the RNG position.
//!
//! Checkpoints are artifacts like any other: sealed in the `ADVSTOR1`
//! envelope and committed atomically, so a kill mid-checkpoint leaves the
//! previous checkpoint intact. The payload layout (little-endian):
//!
//! ```text
//! magic "ADVCKPT1" (8)
//! digest u64          — fingerprint of the train config (epochs excluded)
//! epochs_done u64
//! model_len u64   | model bytes (ADVNN001)
//! opt_len u64     | optimizer state bytes
//! history count u32, per epoch: epoch u64 | loss f32 | has_acc u8 | acc f32
//! ```
//!
//! The digest deliberately excludes the epoch count: training to 3 epochs
//! and later asking for 6 must resume at 3, not restart. Everything else
//! that shapes the trajectory (batch size, seed, smoothing, data size,
//! corruption model) is folded in, so a checkpoint from a different
//! configuration is ignored rather than resumed into.

use crate::train::EpochStats;
use crate::{NnError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ADVCKPT1";

/// Where and how often a training loop checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointCfg {
    /// Checkpoint file path (conventionally `<model>.ckpt`).
    pub path: PathBuf,
    /// Save every `every` epochs (clamped to at least 1). The final epoch
    /// is always saved so a later run with a higher epoch target resumes
    /// instead of retraining.
    pub every: usize,
}

impl CheckpointCfg {
    /// Checkpoint every epoch at `path`.
    pub fn every_epoch(path: impl Into<PathBuf>) -> Self {
        CheckpointCfg {
            path: path.into(),
            every: 1,
        }
    }
}

/// A deserialized training checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct TrainCheckpoint {
    pub digest: u64,
    pub epochs_done: usize,
    pub model: Vec<u8>,
    pub optimizer: Vec<u8>,
    pub history: Vec<EpochStats>,
}

/// FNV-1a over a list of config words — the checkpoint digest.
pub(crate) fn digest_parts(parts: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn encode(ckpt: &TrainCheckpoint) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u64_le(ckpt.digest);
    buf.put_u64_le(ckpt.epochs_done as u64);
    buf.put_u64_le(ckpt.model.len() as u64);
    buf.put_slice(&ckpt.model);
    buf.put_u64_le(ckpt.optimizer.len() as u64);
    buf.put_slice(&ckpt.optimizer);
    buf.put_u32_le(ckpt.history.len() as u32);
    for s in &ckpt.history {
        buf.put_u64_le(s.epoch as u64);
        buf.put_f32_le(s.loss);
        match s.accuracy {
            Some(acc) => {
                buf.put_u8(1);
                buf.put_f32_le(acc);
            }
            None => {
                buf.put_u8(0);
                buf.put_f32_le(0.0);
            }
        }
    }
    buf.to_vec()
}

fn get_blob(buf: &mut Bytes, what: &str) -> Result<Vec<u8>> {
    if buf.remaining() < 8 {
        return Err(NnError::Serialization(format!("truncated {what} length")));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len {
        return Err(NnError::Serialization(format!("truncated {what} bytes")));
    }
    Ok(buf.split_to(len).to_vec())
}

fn decode(data: &[u8]) -> Result<TrainCheckpoint> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 8 || &buf.split_to(8)[..] != MAGIC {
        return Err(NnError::Serialization("bad checkpoint magic".into()));
    }
    if buf.remaining() < 16 {
        return Err(NnError::Serialization("truncated checkpoint header".into()));
    }
    let digest = buf.get_u64_le();
    let epochs_done = buf.get_u64_le() as usize;
    let model = get_blob(&mut buf, "checkpoint model")?;
    let optimizer = get_blob(&mut buf, "checkpoint optimizer state")?;
    if buf.remaining() < 4 {
        return Err(NnError::Serialization("truncated history count".into()));
    }
    let count = buf.get_u32_le() as usize;
    if count > 1_000_000 {
        return Err(NnError::Serialization(format!(
            "implausible history length {count}"
        )));
    }
    let mut history = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 + 4 + 1 + 4 {
            return Err(NnError::Serialization("truncated history entry".into()));
        }
        let epoch = buf.get_u64_le() as usize;
        let loss = buf.get_f32_le();
        let has_acc = buf.get_u8();
        let acc = buf.get_f32_le();
        history.push(EpochStats {
            epoch,
            loss,
            accuracy: if has_acc == 1 { Some(acc) } else { None },
        });
    }
    if buf.remaining() != 0 {
        return Err(NnError::Serialization(format!(
            "{} trailing bytes after checkpoint",
            buf.remaining()
        )));
    }
    Ok(TrainCheckpoint {
        digest,
        epochs_done,
        model,
        optimizer,
        history,
    })
}

/// Durably saves a checkpoint (envelope + atomic rename).
pub(crate) fn save(path: &Path, ckpt: &TrainCheckpoint) -> Result<()> {
    adv_store::save_artifact(path, &encode(ckpt))?;
    Ok(())
}

/// Loads the checkpoint at `path` if it exists, validates, and matches
/// `digest`. Corrupt files are quarantined (by the store, or here when the
/// CRC-valid payload fails to decode) and reported as absent — a checkpoint
/// is an optimisation, never a hard dependency. A digest mismatch (stale
/// config) also reads as absent; the next save overwrites it.
///
/// # Errors
///
/// Only unexpected I/O failures (permissions, etc.).
pub(crate) fn load_matching(path: &Path, digest: u64) -> Result<Option<TrainCheckpoint>> {
    let payload = match adv_store::load_artifact(path) {
        Ok(p) => p,
        Err(e) if e.is_not_found() => return Ok(None),
        Err(adv_store::StoreError::Corrupt { .. }) => return Ok(None),
        Err(e) => return Err(NnError::Store(e)),
    };
    match decode(&payload) {
        Ok(ckpt) if ckpt.digest == digest => Ok(Some(ckpt)),
        Ok(_) => Ok(None),
        Err(_) => {
            adv_store::quarantine(path);
            Ok(None)
        }
    }
}

/// Removes a checkpoint file — for callers to invoke once the final model
/// artifact has been durably saved and the checkpoint is dead weight.
///
/// # Errors
///
/// Filesystem errors (a missing file is fine).
pub fn clear_checkpoint(path: impl AsRef<Path>) -> Result<()> {
    match std::fs::remove_file(path.as_ref()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(NnError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            digest: 0xDEAD_BEEF,
            epochs_done: 3,
            model: vec![1, 2, 3, 4, 5],
            optimizer: vec![9, 8, 7],
            history: vec![
                EpochStats {
                    epoch: 0,
                    loss: 0.5,
                    accuracy: Some(0.8),
                },
                EpochStats {
                    epoch: 1,
                    loss: 0.25,
                    accuracy: None,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ckpt = sample();
        let decoded = decode(&encode(&ckpt)).unwrap();
        assert_eq!(decoded.digest, ckpt.digest);
        assert_eq!(decoded.epochs_done, ckpt.epochs_done);
        assert_eq!(decoded.model, ckpt.model);
        assert_eq!(decoded.optimizer, ckpt.optimizer);
        assert_eq!(decoded.history, ckpt.history);
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} parsed");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode(&padded).is_err(), "trailing byte accepted");
    }

    #[test]
    fn save_load_matching_filters_by_digest() {
        let dir = std::env::temp_dir().join("adv_nn_checkpoint_digest");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("model.ckpt");
        let ckpt = sample();
        save(&path, &ckpt).unwrap();
        assert!(load_matching(&path, ckpt.digest).unwrap().is_some());
        assert!(load_matching(&path, ckpt.digest ^ 1).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_reads_as_absent_and_quarantines() {
        let dir = std::env::temp_dir().join("adv_nn_checkpoint_corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let ckpt = sample();
        save(&path, &ckpt).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_matching(&path, ckpt.digest).unwrap().is_none());
        assert!(!path.exists(), "corrupt checkpoint should be quarantined");
        assert!(dir.join("model.ckpt.corrupt").exists());
        // Missing file is also absent, not an error.
        assert!(load_matching(&path, ckpt.digest).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest_parts(&[1, 2]), digest_parts(&[2, 1]));
        assert_ne!(digest_parts(&[]), digest_parts(&[0]));
    }
}
