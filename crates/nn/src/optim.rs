//! First-order optimizers.
//!
//! Optimizers operate on the flat parameter list a [`Sequential`] network
//! exposes; per-parameter state (momentum / moment estimates) is kept by
//! index, so a given optimizer instance must stay paired with one network.
//!
//! [`Sequential`]: crate::Sequential

use crate::layer::Param;
use crate::{NnError, Result};
use adv_tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated `grad`s,
    /// then zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Returns an error when the parameter count changes between calls.
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Serializes the optimizer's accumulated state (momentum buffers,
    /// moment estimates, step counts — everything `step` evolves) so a
    /// training run can be checkpointed and resumed bit-identically. The
    /// *configuration* (learning rate, betas) is not included: it is the
    /// caller's to reconstruct.
    ///
    /// Stateless optimizers may return an empty vector (the default).
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`Optimizer::state_bytes`] on an
    /// identically-configured optimizer paired with the same architecture.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Serialization`] when the bytes do not describe
    /// this optimizer's state.
    fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(NnError::Serialization(
                "optimizer does not carry serializable state".into(),
            ))
        }
    }
}

/// Encodes a list of state tensors as `count u32 | tensors…`.
fn tensors_to_bytes(tag: u8, tensors: &[Tensor]) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.put_u8(tag);
    buf.put_u32_le(tensors.len() as u32);
    for t in tensors {
        crate::serialize::put_tensor(&mut buf, t);
    }
    buf
}

/// Decodes a tensor list written by [`tensors_to_bytes`].
fn tensors_from_bytes(buf: &mut Bytes) -> Result<Vec<Tensor>> {
    if buf.remaining() < 4 {
        return Err(NnError::Serialization(
            "truncated state tensor count".into(),
        ));
    }
    let n = buf.get_u32_le() as usize;
    if n > 100_000 {
        return Err(NnError::Serialization(format!(
            "implausible state tensor count {n}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(crate::serialize::get_tensor(buf)?);
    }
    Ok(out)
}

fn expect_tag(buf: &mut Bytes, want: u8, kind: &str) -> Result<()> {
    if buf.remaining() < 1 {
        return Err(NnError::Serialization(format!("empty {kind} state")));
    }
    let got = buf.get_u8();
    if got != want {
        return Err(NnError::Serialization(format!(
            "state tag {got} is not {kind} state"
        )));
    }
    Ok(())
}

fn expect_consumed(buf: &Bytes, kind: &str) -> Result<()> {
    if buf.remaining() != 0 {
        return Err(NnError::Serialization(format!(
            "{} trailing bytes after {kind} state",
            buf.remaining()
        )));
    }
    Ok(())
}

const SGD_STATE_TAG: u8 = 1;
const ADAM_STATE_TAG: u8 = 2;

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum coefficient
    /// (`0.0` for plain SGD).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer saw {} params, previously {}",
                params.len(),
                self.velocity.len()
            )));
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            v.scale_assign(self.momentum);
            v.add_scaled_assign(&p.grad, 1.0)?;
            p.value.add_scaled_assign(v, -self.lr)?;
            p.zero_grad();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes(&self) -> Vec<u8> {
        tensors_to_bytes(SGD_STATE_TAG, &self.velocity).to_vec()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut buf = Bytes::copy_from_slice(bytes);
        expect_tag(&mut buf, SGD_STATE_TAG, "SGD")?;
        let velocity = tensors_from_bytes(&mut buf)?;
        expect_consumed(&buf, "SGD")?;
        self.velocity = velocity;
        Ok(())
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
///
/// The attack literature's reference implementations (C&W, EAD) optimize
/// with Adam; the same hyperparameter defaults are used here.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with custom coefficients.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with the standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn with_defaults(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
            self.v = self.m.clone();
        }
        if self.m.len() != params.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer saw {} params, previously {}",
                params.len(),
                self.m.len()
            )));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let g = p.grad.as_slice();
            let mv = m.as_mut_slice();
            let vv = v.as_mut_slice();
            let pv = p.value.as_mut_slice();
            for i in 0..g.len() {
                mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * g[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = mv[i] / bc1;
                let vhat = vv[i] / bc2;
                pv[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut buf = tensors_to_bytes(ADAM_STATE_TAG, &self.m);
        buf.put_u64_le(self.t);
        let mut vbuf = BytesMut::new();
        vbuf.put_u32_le(self.v.len() as u32);
        for t in &self.v {
            crate::serialize::put_tensor(&mut vbuf, t);
        }
        buf.put_slice(&vbuf.to_vec());
        buf.to_vec()
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<()> {
        let mut buf = Bytes::copy_from_slice(bytes);
        expect_tag(&mut buf, ADAM_STATE_TAG, "Adam")?;
        let m = tensors_from_bytes(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(NnError::Serialization("truncated Adam step count".into()));
        }
        let t = buf.get_u64_le();
        let v = tensors_from_bytes(&mut buf)?;
        expect_consumed(&buf, "Adam")?;
        if m.len() != v.len() {
            return Err(NnError::Serialization(format!(
                "Adam moment lists disagree: {} vs {}",
                m.len(),
                v.len()
            )));
        }
        self.m = m;
        self.v = v;
        self.t = t;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    fn quadratic_grad(p: &Param) -> Tensor {
        // ∇(x²/2) = x
        p.value.clone()
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.as_slice()[0].abs() < 0.01);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                p.grad = quadratic_grad(&p);
                opt.step(&mut [&mut p]).unwrap();
            }
            p.value.as_slice()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut p = Param::new(Tensor::full(Shape::vector(2), 5.0));
        let mut opt = Adam::with_defaults(0.3);
        for _ in 0..200 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.map(f32::abs).max() < 0.05);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(Tensor::ones(Shape::vector(3)));
        p.grad.fill(1.0);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]).unwrap();
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_count_change_is_an_error() {
        let mut a = Param::new(Tensor::ones(Shape::vector(1)));
        let mut b = Param::new(Tensor::ones(Shape::vector(1)));
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut a]).unwrap();
        assert!(opt.step(&mut [&mut a, &mut b]).is_err());
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::with_defaults(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    /// Runs `steps` quadratic-descent steps on a fresh param, snapshotting
    /// optimizer state after `snapshot_at`, then finishes two ways: straight
    /// through, and via a fresh optimizer restored from the snapshot. Both
    /// must land on bit-identical parameters.
    fn resume_matches<O: Optimizer + Clone>(
        mut opt: O,
        fresh: O,
        steps: usize,
        snapshot_at: usize,
    ) {
        let mut p = Param::new(Tensor::full(Shape::vector(3), 7.0));
        for _ in 0..snapshot_at {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        let state = opt.state_bytes();
        let p_mid = p.value.clone();

        // Straight through.
        let mut p_a = Param::new(p_mid.clone());
        let mut opt_a = opt;
        for _ in snapshot_at..steps {
            p_a.grad = quadratic_grad(&p_a);
            opt_a.step(&mut [&mut p_a]).unwrap();
        }

        // Restored.
        let mut p_b = Param::new(p_mid);
        let mut opt_b = fresh;
        opt_b.restore_state(&state).unwrap();
        for _ in snapshot_at..steps {
            p_b.grad = quadratic_grad(&p_b);
            opt_b.step(&mut [&mut p_b]).unwrap();
        }
        assert_eq!(p_a.value, p_b.value, "resume diverged");
    }

    #[test]
    fn sgd_state_roundtrip_resumes_bit_identically() {
        resume_matches(Sgd::new(0.05, 0.9), Sgd::new(0.05, 0.9), 20, 7);
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        resume_matches(Adam::with_defaults(0.1), Adam::with_defaults(0.1), 20, 7);
    }

    #[test]
    fn state_bytes_reject_cross_optimizer_restore() {
        let mut p = Param::new(Tensor::ones(Shape::vector(2)));
        let mut sgd = Sgd::new(0.1, 0.9);
        p.grad = quadratic_grad(&p);
        sgd.step(&mut [&mut p]).unwrap();
        let mut adam = Adam::with_defaults(0.1);
        assert!(adam.restore_state(&sgd.state_bytes()).is_err());
        let mut sgd2 = Sgd::new(0.1, 0.9);
        assert!(sgd2.restore_state(&adam.state_bytes()).is_err());
    }

    #[test]
    fn truncated_state_is_rejected() {
        let mut p = Param::new(Tensor::ones(Shape::vector(4)));
        let mut opt = Adam::with_defaults(0.1);
        p.grad = quadratic_grad(&p);
        opt.step(&mut [&mut p]).unwrap();
        let state = opt.state_bytes();
        for cut in 0..state.len() {
            let mut fresh = Adam::with_defaults(0.1);
            assert!(
                fresh.restore_state(&state[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly restored"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = state.clone();
        padded.push(0);
        let mut fresh = Adam::with_defaults(0.1);
        assert!(fresh.restore_state(&padded).is_err());
    }
}
