//! First-order optimizers.
//!
//! Optimizers operate on the flat parameter list a [`Sequential`] network
//! exposes; per-parameter state (momentum / moment estimates) is kept by
//! index, so a given optimizer instance must stay paired with one network.
//!
//! [`Sequential`]: crate::Sequential

use crate::layer::Param;
use crate::{NnError, Result};
use adv_tensor::Tensor;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step to `params` using their accumulated `grad`s,
    /// then zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Returns an error when the parameter count changes between calls.
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and momentum coefficient
    /// (`0.0` for plain SGD).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer saw {} params, previously {}",
                params.len(),
                self.velocity.len()
            )));
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            v.scale_assign(self.momentum);
            v.add_scaled_assign(&p.grad, 1.0)?;
            p.value.add_scaled_assign(v, -self.lr)?;
            p.zero_grad();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
///
/// The attack literature's reference implementations (C&W, EAD) optimize
/// with Adam; the same hyperparameter defaults are used here.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with custom coefficients.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adam with the standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn with_defaults(lr: f32) -> Self {
        Self::new(lr, 0.9, 0.999, 1e-8)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().clone()))
                .collect();
            self.v = self.m.clone();
        }
        if self.m.len() != params.len() {
            return Err(NnError::InvalidArgument(format!(
                "optimizer saw {} params, previously {}",
                params.len(),
                self.m.len()
            )));
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let g = p.grad.as_slice();
            let mv = m.as_mut_slice();
            let vv = v.as_mut_slice();
            let pv = p.value.as_mut_slice();
            for i in 0..g.len() {
                mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * g[i];
                vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = mv[i] / bc1;
                let vhat = vv[i] / bc2;
                pv[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    fn quadratic_grad(p: &Param) -> Tensor {
        // ∇(x²/2) = x
        p.value.clone()
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.as_slice()[0].abs() < 0.01);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = Param::new(Tensor::full(Shape::vector(1), 10.0));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                p.grad = quadratic_grad(&p);
                opt.step(&mut [&mut p]).unwrap();
            }
            p.value.as_slice()[0].abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut p = Param::new(Tensor::full(Shape::vector(2), 5.0));
        let mut opt = Adam::with_defaults(0.3);
        for _ in 0..200 {
            p.grad = quadratic_grad(&p);
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value.map(f32::abs).max() < 0.05);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::new(Tensor::ones(Shape::vector(3)));
        p.grad.fill(1.0);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]).unwrap();
        assert!(p.grad.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn param_count_change_is_an_error() {
        let mut a = Param::new(Tensor::ones(Shape::vector(1)));
        let mut b = Param::new(Tensor::ones(Shape::vector(1)));
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut a]).unwrap();
        assert!(opt.step(&mut [&mut a, &mut b]).is_err());
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::with_defaults(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
