//! Numerically stable softmax utilities.
//!
//! Used by the cross-entropy loss, by attack success checks, and by MagNet's
//! JSD detector — which compares `softmax(logit/T)` of an image and its
//! auto-encoded reconstruction.

use crate::{NnError, Result};
use adv_profile::{KernelKind, KernelScope, Work};
use adv_tensor::{Shape, Tensor};

/// Row-wise softmax of a `[batch, classes]` logit matrix.
///
/// Each row is shifted by its max before exponentiation for stability.
///
/// # Errors
///
/// Returns a rank error when `logits` is not rank 2.
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let probs = softmax_rows_with_temperature(logits, 1.0)?;
    Ok(probs)
}

/// Row-wise softmax of `logits / temperature`.
///
/// Temperature `T > 1` flattens the distribution; MagNet's JSD detectors use
/// `T = 10` and `T = 40`.
///
/// # Errors
///
/// Returns a rank error for non-matrix input and
/// [`NnError::InvalidArgument`] for non-positive temperature.
pub fn softmax_rows_with_temperature(logits: &Tensor, temperature: f32) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    if temperature <= 0.0 {
        return Err(NnError::InvalidArgument(format!(
            "temperature {temperature} must be positive"
        )));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    let _prof = KernelScope::enter(KernelKind::Softmax, || Work::softmax(n, k));
    let mut out = vec![0.0f32; n * k];
    for (row_in, row_out) in logits
        .as_slice()
        .chunks_exact(k)
        .zip(out.chunks_exact_mut(k))
    {
        let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (o, &v) in row_out.iter_mut().zip(row_in.iter()) {
            let e = ((v - max) / temperature).exp();
            *o = e;
            sum += e;
        }
        for o in row_out.iter_mut() {
            *o /= sum;
        }
    }
    Ok(Tensor::from_vec(out, Shape::matrix(n, k))?)
}

/// Row-wise log-softmax (stable `log(softmax(x))`).
///
/// # Errors
///
/// Returns a rank error when `logits` is not rank 2.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    if logits.shape().rank() != 2 {
        return Err(NnError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    let _prof = KernelScope::enter(KernelKind::LogSoftmax, || Work::softmax(n, k));
    let mut out = vec![0.0f32; n * k];
    for (row_in, row_out) in logits
        .as_slice()
        .chunks_exact(k)
        .zip(out.chunks_exact_mut(k))
    {
        let max = row_in.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row_in.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
        for (o, &v) in row_out.iter_mut().zip(row_in.iter()) {
            *o = v - max - log_sum;
        }
    }
    Ok(Tensor::from_vec(out, Shape::matrix(n, k))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let l = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], Shape::matrix(2, 3)).unwrap();
        let p = softmax_rows(&l).unwrap();
        for row in p.as_slice().chunks_exact(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::matrix(1, 3)).unwrap();
        let b = a.add_scalar(100.0);
        let pa = softmax_rows(&a).unwrap();
        let pb = softmax_rows(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let l = Tensor::from_vec(vec![1000.0, 999.0], Shape::matrix(1, 2)).unwrap();
        let p = softmax_rows(&l).unwrap();
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!(p.as_slice()[0] > p.as_slice()[1]);
    }

    #[test]
    fn high_temperature_flattens() {
        let l = Tensor::from_vec(vec![0.0, 5.0], Shape::matrix(1, 2)).unwrap();
        let sharp = softmax_rows_with_temperature(&l, 1.0).unwrap();
        let flat = softmax_rows_with_temperature(&l, 40.0).unwrap();
        assert!(flat.as_slice()[0] > sharp.as_slice()[0]);
        assert!((flat.as_slice()[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let l = Tensor::from_vec(vec![0.5, -1.0, 2.0], Shape::matrix(1, 3)).unwrap();
        let ls = log_softmax_rows(&l).unwrap();
        let p = softmax_rows(&l).unwrap();
        for (a, b) in ls.as_slice().iter().zip(p.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_bad_temperature_and_rank() {
        let l = Tensor::zeros(Shape::matrix(1, 2));
        assert!(softmax_rows_with_temperature(&l, 0.0).is_err());
        assert!(softmax_rows(&Tensor::zeros(Shape::vector(2))).is_err());
    }
}
