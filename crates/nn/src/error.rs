use adv_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, execution and serialization.
#[derive(Debug)]
pub enum NnError {
    /// An underlying tensor operation failed (shape or geometry mismatch).
    Tensor(TensorError),
    /// `backward` was called before `forward`, so the layer has no cache.
    NoForwardCache {
        /// Layer type that was asked to run backward.
        layer: &'static str,
    },
    /// A label index was outside `0..num_classes`.
    InvalidLabel {
        /// The offending label.
        label: usize,
        /// Number of classes in the output layer.
        classes: usize,
    },
    /// Model (de)serialization failed.
    Serialization(String),
    /// An I/O error while reading or writing a model file.
    Io(std::io::Error),
    /// The artifact store rejected a model or checkpoint file (corruption,
    /// injected fault) or failed to persist one.
    Store(adv_store::StoreError),
    /// An invalid hyperparameter or architecture argument.
    InvalidArgument(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called before forward on {layer} layer")
            }
            NnError::InvalidLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            NnError::Io(e) => write!(f, "i/o error: {e}"),
            NnError::Store(e) => write!(f, "artifact store error: {e}"),
            NnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Io(e) => Some(e),
            NnError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

impl From<adv_store::StoreError> for NnError {
    fn from(e: adv_store::StoreError) -> Self {
        NnError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::RankMismatch {
            expected: 2,
            actual: 4,
        };
        let ne: NnError = te.into();
        assert!(ne.to_string().contains("rank mismatch"));
        assert!(std::error::Error::source(&ne).is_some());
    }

    #[test]
    fn display_no_cache() {
        let e = NnError::NoForwardCache { layer: "dense" };
        assert_eq!(
            e.to_string(),
            "backward called before forward on dense layer"
        );
    }
}
