//! Neural-network substrate with manual backpropagation.
//!
//! This crate implements everything the MagNet/EAD reproduction needs from a
//! deep-learning framework, in plain Rust:
//!
//! - [`Layer`]: forward/backward with explicit caches; `backward` returns the
//!   gradient **with respect to the layer input**, which is what lets the
//!   attack crates differentiate a loss through a whole network down to the
//!   image pixels,
//! - layers: dense, 2-D convolution, ReLU/sigmoid/tanh activations, max/avg
//!   pooling, nearest upsampling, flatten/reshape (in [`layers`]),
//! - losses: softmax cross-entropy, MSE and MAE (in [`loss`]) — MSE and MAE
//!   are the two auto-encoder reconstruction losses the paper compares in
//!   Figures 12–13,
//! - optimizers: SGD with momentum, Adam (in [`optim`]),
//! - [`Sequential`]: a network container with an architecture spec
//!   ([`LayerSpec`]) so models round-trip through the binary codec in
//!   [`serialize`],
//! - a training loop ([`train::fit_classifier`] / [`train::fit_autoencoder`])
//!   driving epochs/minibatches reproducibly from a seed.
//!
//! Every layer's backward pass is validated against central finite
//! differences in the test suite — wrong input gradients would silently break
//! every attack built on top.
//!
//! # Example
//!
//! ```
//! use adv_nn::{LayerSpec, Sequential, Activation};
//! use adv_tensor::{Shape, Tensor};
//!
//! let mut net = Sequential::from_specs(
//!     &[
//!         LayerSpec::Dense { inputs: 4, outputs: 8 },
//!         LayerSpec::Activation(Activation::Relu),
//!         LayerSpec::Dense { inputs: 8, outputs: 3 },
//!     ],
//!     42,
//! )?;
//! let x = Tensor::zeros(Shape::matrix(2, 4));
//! let logits = net.forward(&x, adv_nn::Mode::Eval)?;
//! assert_eq!(logits.shape().dims(), &[2, 3]);
//! # Ok::<(), adv_nn::NnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod network;

pub mod checkpoint;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;
pub mod softmax;
pub mod summary;
pub mod train;

pub use checkpoint::CheckpointCfg;
pub use error::NnError;
pub use layer::{Layer, Mode, Param};
pub use layers::Activation;
pub use network::{Differentiable, LayerSpec, Sequential};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
