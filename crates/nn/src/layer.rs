use crate::Result;
use adv_tensor::Tensor;
use std::fmt;

/// Execution mode: training (stochastic layers active) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode — dropout and other stochastic layers are active.
    Train,
    /// Evaluation mode — the network is deterministic.
    Eval,
}

/// A learnable parameter: its value and the gradient accumulated by the last
/// backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value` (zeroed by
    /// [`Param::zero_grad`], written by the owning layer's backward pass).
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zero gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` when the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable network layer.
///
/// The contract mirrors classic define-by-run frameworks:
///
/// 1. `forward(x)` computes the output and caches whatever the backward pass
///    needs (inputs, masks, pooling indices…),
/// 2. `backward(dy)` consumes the cache, accumulates parameter gradients into
///    [`Param::grad`], and returns `∂L/∂x` — the gradient with respect to the
///    layer *input*.
///
/// Returning the input gradient is what allows `adv-attacks` to obtain
/// `∂loss/∂image` by chaining `backward` calls from the logits to the pixels.
///
/// Layers additionally expose [`infer`](Layer::infer), a cache-free
/// evaluation-mode forward taking `&self`. This is the path the serving
/// engine uses: because it never touches the backward cache, one network can
/// run inference from many threads at once behind an `Arc`.
///
/// # Errors
///
/// `backward` must return [`crate::NnError::NoForwardCache`] when invoked
/// before any `forward` call.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Computes the layer output for `input`, caching backward state.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Computes the layer output for `input` in evaluation mode without
    /// writing any backward state, allowing concurrent calls through `&self`.
    ///
    /// Must agree bit-for-bit with `forward(input, Mode::Eval)`.
    ///
    /// # Errors
    ///
    /// Returns the same shape errors as [`forward`](Layer::forward).
    fn infer(&self, input: &Tensor) -> Result<Tensor>;

    /// Back-propagates `grad_out = ∂L/∂output`; returns `∂L/∂input` and
    /// accumulates parameter gradients.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Immutable views of the layer's learnable parameters (empty for
    /// parameter-free layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable views of the layer's learnable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Short layer-type name for diagnostics ("dense", "conv2d", …).
    fn layer_type(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::ones(Shape::vector(3)));
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(Shape::vector(2)));
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.as_slice(), &[0.0, 0.0]);
    }
}
