//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the building blocks whose cost dominates the
//! reproduction: convolution forward/backward, matrix products, attack
//! iterations (EAD's ISTA step vs C&W's Adam-in-tanh-space step), detector
//! scoring, JSD, and the full defense pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use adv_magnet::variants::{train_mnist_autoencoders, MnistAutoencoders, TrainSpec};
use adv_nn::optim::Adam;
use adv_nn::train::{fit_classifier, TrainConfig};
use adv_nn::Sequential;
use adv_tensor::{Shape, Tensor};

/// A deterministic pseudo-random image batch in `[0, 1]`.
pub fn image_batch(n: usize, c: usize, side: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(n, c, side, side), |i| {
        ((i as u64).wrapping_mul(2_654_435_761) % 1000) as f32 / 1000.0
    })
}

/// A small trained MNIST-family classifier (trained briefly on synthetic
/// digits so gradients and logits are realistic, not random).
pub fn trained_classifier() -> Sequential {
    let train = adv_data::synth::mnist_like(300, 77);
    let specs = adv_magnet::arch::mnist_classifier(28, 1, 6, 12, 48, 10);
    let mut net = Sequential::from_specs(&specs, 7).expect("valid specs");
    let mut opt = Adam::with_defaults(1e-3);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 32,
        seed: 5,
        label_smoothing: 0.0,
        verbose: false,
        checkpoint: None,
    };
    fit_classifier(&mut net, &mut opt, train.images(), train.labels(), &cfg)
        .expect("training succeeds");
    net
}

/// Briefly trained MNIST auto-encoders for detector/reformer benches.
pub fn trained_autoencoders() -> MnistAutoencoders {
    let train = adv_data::synth::mnist_like(200, 78);
    let spec = TrainSpec {
        epochs: 1,
        batch_size: 32,
        ..TrainSpec::default()
    };
    train_mnist_autoencoders(1, &spec, train.images()).expect("training succeeds")
}

/// Labels for a batch (deterministic, in 0..10).
pub fn labels(n: usize) -> Vec<usize> {
    (0..n).map(|i| (i * 7) % 10).collect()
}
