//! End-to-end benchmark of the experiment machinery itself: one full
//! oblivious evaluation point (craft a small batch of adversarial examples,
//! run them through a calibrated MagNet) — the unit of work every table row
//! and figure point costs.

use adv_attacks::{Attack, DecisionRule, EadConfig, ElasticNetAttack};
use adv_bench::{image_batch, labels, trained_autoencoders, trained_classifier};
use adv_magnet::{MagnetDefense, ReconstructionDetector, ReconstructionNorm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_evaluation_point(c: &mut Criterion) {
    let mut clf = trained_classifier();
    let aes = trained_autoencoders();
    let mut defense = MagnetDefense::new(
        "bench",
        vec![
            Box::new(ReconstructionDetector::new(
                aes.ae_one.clone(),
                ReconstructionNorm::L2,
            )),
            Box::new(ReconstructionDetector::new(
                aes.ae_two.clone(),
                ReconstructionNorm::L1,
            )),
        ],
        aes.ae_one.clone(),
        clf.clone(),
    );
    defense
        .calibrate_detectors(&image_batch(64, 1, 28), 0.02)
        .expect("calibrate_detectors failed");

    let x = image_batch(4, 1, 28);
    let y = labels(4);
    let attack = ElasticNetAttack::new(EadConfig {
        kappa: 0.0,
        beta: 0.01,
        iterations: 10,
        binary_search_steps: 1,
        initial_c: 0.5,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })
    .expect("ElasticNetAttack::new failed");

    let mut g = c.benchmark_group("evaluation_point");
    g.sample_size(10);
    g.bench_function("craft_and_evaluate_b4", |bench| {
        bench.iter(|| {
            let outcome = attack
                .run(&mut clf, black_box(&x), &y)
                .expect("attack.run failed");
            defense
                .accuracy(&outcome.adversarial, &y, adv_magnet::DefenseScheme::Full)
                .expect("accuracy failed")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_evaluation_point);
criterion_main!(benches);
