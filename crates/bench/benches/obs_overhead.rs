//! Cost of the `adv-obs` instrumentation points at each telemetry level.
//!
//! The contract the instrumented crates rely on: with `ObsLevel::Off`
//! (the default), every `Span::enter` and every `metrics_enabled()` gate is
//! one relaxed atomic load plus a predictable branch — cheap enough to leave
//! in the EAD ISTA loop and the training batch loop unconditionally. The
//! `*_off` benchmarks here pin that down; the `*_trace`/`*_metrics`
//! variants show what turning telemetry on actually buys per event.

use adv_obs::{ObsLevel, Span};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CALLS: usize = 4096;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");

    adv_obs::set_level(ObsLevel::Off);
    g.bench_function("span_enter_off_4096", |b| {
        b.iter(|| {
            for _ in 0..CALLS {
                let _guard = Span::enter(black_box("bench/span"));
            }
        })
    });
    g.bench_function("metrics_gate_off_4096", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..CALLS {
                if adv_obs::metrics_enabled() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    adv_obs::set_level(ObsLevel::Metrics);
    g.bench_function("counter_add_metrics_4096", |b| {
        let counter = adv_obs::global().counter("bench.obs_overhead");
        b.iter(|| {
            for _ in 0..CALLS {
                if adv_obs::metrics_enabled() {
                    counter.incr();
                }
            }
        })
    });

    adv_obs::set_level(ObsLevel::Trace);
    g.bench_function("span_enter_trace_4096", |b| {
        b.iter(|| {
            for _ in 0..CALLS {
                let _guard = Span::enter(black_box("bench/span"));
            }
            // Keep the global sink from saturating across iterations.
            adv_obs::trace::flush_current_thread();
            let _ = adv_obs::trace::drain();
        })
    });

    adv_obs::set_level(ObsLevel::Off);
    adv_obs::trace::reset();
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
