//! Benchmarks of the attacks themselves: full (small) attack runs and the
//! relative cost of EAD's ISTA machinery vs C&W's tanh-space Adam, plus the
//! batching ablation DESIGN.md calls out (batched vs per-example execution).

use adv_attacks::{
    Attack, CarliniWagnerL2, CwConfig, DecisionRule, EadConfig, ElasticNetAttack, Fgsm,
};
use adv_bench::{image_batch, labels, trained_classifier};
use adv_nn::train::gather0;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn ead(iterations: usize, bs: usize) -> ElasticNetAttack {
    ElasticNetAttack::new(EadConfig {
        kappa: 0.0,
        beta: 0.01,
        iterations,
        binary_search_steps: bs,
        initial_c: 0.5,
        rule: DecisionRule::ElasticNet,
        ..EadConfig::default()
    })
    .expect("ElasticNetAttack::new failed")
}

fn cw(iterations: usize, bs: usize) -> CarliniWagnerL2 {
    CarliniWagnerL2::new(CwConfig {
        kappa: 0.0,
        iterations,
        binary_search_steps: bs,
        initial_c: 0.5,
        ..CwConfig::default()
    })
    .expect("CarliniWagnerL2::new failed")
}

fn bench_attacks(c: &mut Criterion) {
    let mut net = trained_classifier();
    let x = image_batch(8, 1, 28);
    let y = labels(8);

    let mut g = c.benchmark_group("attack_runs_b8");
    g.sample_size(10);
    g.bench_function("fgsm", |bench| {
        let attack = Fgsm::new(0.1).expect("Fgsm::new failed");
        bench.iter(|| {
            attack
                .run(&mut net, black_box(&x), &y)
                .expect("attack.run failed")
        })
    });
    g.bench_function("ead_10it_1bs", |bench| {
        let attack = ead(10, 1);
        bench.iter(|| {
            attack
                .run(&mut net, black_box(&x), &y)
                .expect("attack.run failed")
        })
    });
    g.bench_function("cw_10it_1bs", |bench| {
        let attack = cw(10, 1);
        bench.iter(|| {
            attack
                .run(&mut net, black_box(&x), &y)
                .expect("attack.run failed")
        })
    });
    g.finish();
}

fn bench_batched_vs_per_example(c: &mut Criterion) {
    // Ablation: attacking 8 images in one batch vs 8 single-image runs.
    // Batched execution amortizes the network passes into larger matmuls.
    let mut net = trained_classifier();
    let x = image_batch(8, 1, 28);
    let y = labels(8);

    let mut g = c.benchmark_group("batching_ablation");
    g.sample_size(10);
    g.bench_function("batched_8", |bench| {
        let attack = ead(10, 1);
        bench.iter(|| {
            attack
                .run(&mut net, black_box(&x), &y)
                .expect("attack.run failed")
        })
    });
    g.bench_function("per_example_8", |bench| {
        let attack = ead(10, 1);
        bench.iter(|| {
            for i in 0..8 {
                let xi = gather0(&x, &[i]).expect("gather0 failed");
                attack
                    .run(&mut net, black_box(&xi), &y[i..=i])
                    .expect("attack.run failed");
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_attacks, bench_batched_vs_per_example);
criterion_main!(benches);
