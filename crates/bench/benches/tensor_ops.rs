//! Benchmarks of the tensor kernels that dominate runtime: matmul variants,
//! im2col-based convolution (forward and backward), pooling and norms.

use adv_bench::image_batch;
use adv_tensor::ops::{
    avg_pool2d, conv2d, conv2d_backward, im2col, matmul, matmul_a_bt, matmul_at_b, Conv2dSpec,
    Pool2dSpec,
};
use adv_tensor::{norms, Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::from_fn(Shape::matrix(128, 128), |i| (i % 13) as f32 * 0.1);
    let b = Tensor::from_fn(Shape::matrix(128, 128), |i| (i % 7) as f32 * 0.1);
    let mut g = c.benchmark_group("matmul_128");
    g.bench_function("a_b", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)).expect("matmul failed"))
    });
    g.bench_function("at_b", |bench| {
        bench.iter(|| matmul_at_b(black_box(&a), black_box(&b)).expect("matmul_at_b failed"))
    });
    g.bench_function("a_bt", |bench| {
        bench.iter(|| matmul_a_bt(black_box(&a), black_box(&b)).expect("matmul_a_bt failed"))
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let x = image_batch(8, 1, 28);
    let spec = Conv2dSpec::same(1, 8, 3);
    let w = Tensor::from_fn(Shape::new(vec![8, 1, 3, 3]), |i| (i % 5) as f32 * 0.1 - 0.2);
    let b = Tensor::zeros(Shape::vector(8));
    let y = conv2d(&x, &w, &b, &spec).expect("conv2d failed");
    let dy = Tensor::ones(y.shape().clone());

    let mut g = c.benchmark_group("conv2d_28x28_b8");
    g.bench_function("im2col", |bench| {
        bench.iter(|| im2col(black_box(&x), &spec).expect("im2col failed"))
    });
    g.bench_function("forward", |bench| {
        bench.iter(|| conv2d(black_box(&x), &w, &b, &spec).expect("conv2d failed"))
    });
    g.bench_function("backward", |bench| {
        bench.iter(|| {
            conv2d_backward(black_box(&x), &w, &dy, &spec).expect("conv2d_backward failed")
        })
    });
    g.finish();
}

fn bench_pool_and_norms(c: &mut Criterion) {
    let x = image_batch(8, 3, 16);
    let y = image_batch(8, 3, 16);
    let mut g = c.benchmark_group("pool_and_norms");
    g.bench_function("avg_pool2d", |bench| {
        bench.iter(|| avg_pool2d(black_box(&x), &Pool2dSpec::square(2)).expect("avg_pool2d failed"))
    });
    g.bench_function("l1_dist", |bench| {
        bench.iter(|| norms::l1_dist(black_box(&x), black_box(&y)).expect("norms::l1_dist failed"))
    });
    g.bench_function("elastic_net_dist", |bench| {
        bench.iter(|| {
            norms::elastic_net_dist(black_box(&x), black_box(&y), 0.05)
                .expect("norms::elastic_net_dist failed")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_conv, bench_pool_and_norms);
criterion_main!(benches);
