//! Wire cost of the `adv-net` front door.
//!
//! The pipeline behind the engine is a no-op stub, so the numbers isolate
//! what the network path adds on top of in-process serving: frame
//! encode/CRC/decode, one loopback TCP roundtrip, and the server's
//! admission pipeline (auth lookup, token bucket, deadline bookkeeping).
//! `inprocess_submit` on the same engine config is the baseline to
//! subtract; the codec-only benchmark bounds the serialization share.

use adv_magnet::{DefensePipeline, DefenseScheme, StageTimings, Verdict};
use adv_net::{
    ClientConfig, Frame, NetClient, NetServer, NetServerConfig, Reply, TenantPolicy, TenantSpec,
};
use adv_serve::{ServeConfig, ServeEngine};
use adv_tensor::{Shape, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const KEY: u64 = 0xBEE5_BEE5_0000_0001;

/// Verdict arithmetic only — isolates the serving/wire overhead.
#[derive(Debug)]
struct NoopPipeline;

impl DefensePipeline for NoopPipeline {
    fn name(&self) -> &str {
        "noop"
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        _scheme: DefenseScheme,
    ) -> adv_magnet::Result<(Vec<Verdict>, StageTimings)> {
        let n = x.shape().dims().first().copied().unwrap_or(0);
        Ok((
            (0..n).map(Verdict::Classified).collect(),
            StageTimings::default(),
        ))
    }
}

fn engine() -> Arc<ServeEngine> {
    Arc::new(
        ServeEngine::start(
            Arc::new(NoopPipeline),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                ..ServeConfig::default()
            },
        )
        .expect("ServeEngine::start failed"),
    )
}

fn input() -> Tensor {
    Tensor::from_fn(Shape::new(vec![1, 8, 8]), |i| (i % 23) as f32 / 23.0)
}

fn bench_net_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_roundtrip");

    let x = input();
    let request = Frame::Request {
        id: 1,
        deadline_ms: 0,
        route: 0,
        sample: 0,
        variant: 0,
        dims: vec![1, 8, 8],
        data: x.as_slice().to_vec(),
    };
    g.bench_function("frame_encode_decode_8x8", |b| {
        b.iter(|| {
            let bytes = black_box(&request).encode();
            black_box(Frame::decode(&bytes).expect("Frame::decode failed"))
        })
    });

    let eng = engine();
    g.bench_function("inprocess_submit_8x8", |b| {
        b.iter(|| {
            let pending = eng.submit(black_box(x.clone())).expect("submit failed");
            black_box(pending.wait().expect("wait failed").verdict)
        })
    });

    let server = NetServer::start(
        eng.clone(),
        "127.0.0.1:0",
        NetServerConfig {
            tenants: TenantPolicy::Static(vec![TenantSpec {
                tenant: 1,
                key: KEY,
                rate_per_sec: 1e9,
                burst: 1e9,
            }]),
            ..NetServerConfig::default()
        },
    )
    .expect("NetServer::start failed");
    let mut client =
        NetClient::connect(server.addr(), 1, KEY, ClientConfig::default()).expect("connect failed");
    g.bench_function("loopback_classify_8x8", |b| {
        b.iter(|| {
            match client
                .classify(black_box(&x), 0, 0, 0)
                .expect("classify failed")
            {
                Reply::Verdict { verdict, .. } => black_box(verdict),
                Reply::Busy { reason, .. } => panic!("refused: {reason}"),
            }
        })
    });

    drop(client);
    server.shutdown();
    g.finish();
}

criterion_group!(benches, bench_net_roundtrip);
criterion_main!(benches);
