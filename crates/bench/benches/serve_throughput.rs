//! Serial vs batched-server throughput of the full defense pipeline.
//!
//! The serial baseline classifies one sample per `classify` call — the
//! pattern every evaluation binary used before `adv-serve`. The server
//! variants push the same 32-sample corpus through a one-worker
//! `ServeEngine` at `max_batch` ∈ {1, 8, 32}, so any speedup comes from
//! batching plus the engine's fused pipeline (shared sub-computations run
//! once per batch), not extra parallelism.
//!
//! The fixture mirrors the paper's D+JSD MNIST assembly — two
//! reconstruction detectors, two JSD detectors at `T ∈ {10, 40}`, reformer
//! sharing detector 1's auto-encoder — because that is the deployment shape
//! the fused pass deduplicates.

use adv_bench::{image_batch, trained_autoencoders, trained_classifier};
use adv_chaos::FaultInjector;
use adv_magnet::{
    DefenseScheme, Detector, JsdDetector, MagnetDefense, ReconstructionDetector, ReconstructionNorm,
};
use adv_serve::{ServeConfig, ServeEngine};
use adv_telemetry::{RecorderConfig, TelemetryRecorder};
use adv_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const CORPUS: usize = 32;

fn calibrated_defense() -> Arc<MagnetDefense> {
    let aes = trained_autoencoders();
    let clf = trained_classifier();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            aes.ae_one.clone(),
            ReconstructionNorm::L2,
        )),
        Box::new(ReconstructionDetector::new(
            aes.ae_two.clone(),
            ReconstructionNorm::L1,
        )),
        Box::new(
            JsdDetector::new(aes.ae_one.clone(), clf.clone(), 10.0)
                .expect("JsdDetector::new failed"),
        ),
        Box::new(
            JsdDetector::new(aes.ae_one.clone(), clf.clone(), 40.0)
                .expect("JsdDetector::new failed"),
        ),
    ];
    let mut defense = MagnetDefense::new("serve-bench-d-jsd", detectors, aes.ae_one.clone(), clf);
    defense
        .calibrate_detectors(&image_batch(64, 1, 28), 0.02)
        .expect("calibrate_detectors failed");
    Arc::new(defense)
}

fn corpus_items() -> Vec<Tensor> {
    let x = image_batch(CORPUS, 1, 28);
    (0..CORPUS)
        .map(|i| x.index_axis0(i).expect("x.index_axis0 failed"))
        .collect()
}

fn server(
    defense: Arc<MagnetDefense>,
    max_batch: usize,
    injector: Option<Arc<FaultInjector>>,
) -> ServeEngine {
    ServeEngine::start(
        defense,
        ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2 * CORPUS,
            workers: 1,
            scheme: DefenseScheme::Full,
            injector,
            ..ServeConfig::default()
        },
    )
    .expect("ServeEngine::start failed")
}

fn bench_serve_throughput(c: &mut Criterion) {
    let defense = calibrated_defense();
    let items = corpus_items();

    let mut g = c.benchmark_group("serve_throughput_32_samples");
    g.sample_size(10);

    g.bench_function("serial_per_sample", |bench| {
        let singles: Vec<Tensor> = items
            .iter()
            .map(|t| Tensor::stack(std::slice::from_ref(t)).expect("Tensor::stack failed"))
            .collect();
        bench.iter(|| {
            for x in &singles {
                black_box(
                    defense
                        .classify(black_box(x), DefenseScheme::Full)
                        .expect("defense.classify failed"),
                );
            }
        })
    });

    for max_batch in [1usize, 8, 32] {
        let engine = server(defense.clone(), max_batch, None);
        g.bench_function(format!("server_b{max_batch}"), |bench| {
            bench.iter(|| {
                let pending: Vec<_> = items
                    .iter()
                    .map(|t| engine.submit(t.clone()).expect("engine.submit failed"))
                    .collect();
                for p in pending {
                    black_box(p.wait().expect("p.wait failed"));
                }
            })
        });
        engine.shutdown();
    }

    // A present-but-empty injector must cost nothing measurable versus
    // `server_b32` above — the hot path pays one Option branch per poll and
    // never reaches the injector's site table.
    let engine = server(
        defense.clone(),
        32,
        Some(Arc::new(FaultInjector::disabled())),
    );
    g.bench_function("server_b32_noop_injector", |bench| {
        bench.iter(|| {
            let pending: Vec<_> = items
                .iter()
                .map(|t| engine.submit(t.clone()).expect("engine.submit failed"))
                .collect();
            for p in pending {
                black_box(p.wait().expect("p.wait failed"));
            }
        })
    });
    engine.shutdown();

    // Telemetry tap on the same batch-32 engine: the per-response cost is
    // one `TelemetryRow` build plus a non-blocking `try_send`, and the
    // scored pipeline path replaces the unscored one. The budget is <5%
    // over `server_b32`.
    let tele_dir =
        std::env::temp_dir().join(format!("adv_bench_serve_telemetry_{}", std::process::id()));
    std::fs::remove_dir_all(&tele_dir).ok();
    let recorder = TelemetryRecorder::start(RecorderConfig::new(&tele_dir))
        .expect("TelemetryRecorder::start failed");
    let engine = ServeEngine::start(
        defense.clone(),
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2 * CORPUS,
            workers: 1,
            scheme: DefenseScheme::Full,
            observer: Some(Arc::new(recorder.sink())),
            ..ServeConfig::default()
        },
    )
    .expect("ServeEngine::start failed");
    g.bench_function("server_b32_telemetry", |bench| {
        bench.iter(|| {
            let pending: Vec<_> = items
                .iter()
                .map(|t| engine.submit(t.clone()).expect("engine.submit failed"))
                .collect();
            for p in pending {
                black_box(p.wait().expect("p.wait failed"));
            }
        })
    });
    engine.shutdown();
    recorder.shutdown().expect("recorder.shutdown failed");
    std::fs::remove_dir_all(&tele_dir).ok();

    // Profiler compiled in but switched off: every kernel/stage scope and
    // the trace-id mint must collapse to one relaxed load each. The budget
    // is <2% over `server_b32` — the perf-gate CI job holds this line.
    adv_profile::set_enabled(false);
    let engine = server(defense.clone(), 32, None);
    g.bench_function("server_b32_profile_off", |bench| {
        bench.iter(|| {
            let pending: Vec<_> = items
                .iter()
                .map(|t| engine.submit(t.clone()).expect("engine.submit failed"))
                .collect();
            for p in pending {
                black_box(p.wait().expect("p.wait failed"));
            }
        })
    });
    engine.shutdown();
    g.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
