//! Benchmarks of the MagNet defense pipeline: detector scoring (both
//! families), the reformer, threshold calibration, and the full
//! detect-reform-classify path.

use adv_bench::{image_batch, trained_autoencoders, trained_classifier};
use adv_magnet::DefenseScheme;
use adv_magnet::{
    Detector, JsdDetector, MagnetDefense, ReconstructionDetector, ReconstructionNorm,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detectors(c: &mut Criterion) {
    let aes = trained_autoencoders();
    let clf = trained_classifier();
    let x = image_batch(16, 1, 28);

    let mut g = c.benchmark_group("detector_scoring_b16");
    g.sample_size(20);
    g.bench_function("recon_l1", |bench| {
        let det = ReconstructionDetector::new(aes.ae_two.clone(), ReconstructionNorm::L1);
        bench.iter(|| det.scores(black_box(&x)).expect("det.scores failed"))
    });
    g.bench_function("recon_l2", |bench| {
        let det = ReconstructionDetector::new(aes.ae_one.clone(), ReconstructionNorm::L2);
        bench.iter(|| det.scores(black_box(&x)).expect("det.scores failed"))
    });
    g.bench_function("jsd_t40", |bench| {
        let det = JsdDetector::new(aes.ae_one.clone(), clf.clone(), 40.0)
            .expect("JsdDetector::new failed");
        bench.iter(|| det.scores(black_box(&x)).expect("det.scores failed"))
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let aes = trained_autoencoders();
    let clean = image_batch(128, 1, 28);
    c.bench_function("calibrate_recon_detector_128", |bench| {
        let mut det = ReconstructionDetector::new(aes.ae_one.clone(), ReconstructionNorm::L2);
        bench.iter(|| {
            det.calibrate(black_box(&clean), 0.02)
                .expect("det.calibrate failed")
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let aes = trained_autoencoders();
    let clf = trained_classifier();
    let mut defense = MagnetDefense::new(
        "bench",
        vec![
            Box::new(ReconstructionDetector::new(
                aes.ae_one.clone(),
                ReconstructionNorm::L2,
            )),
            Box::new(ReconstructionDetector::new(
                aes.ae_two.clone(),
                ReconstructionNorm::L1,
            )),
        ],
        aes.ae_one.clone(),
        clf,
    );
    let clean = image_batch(64, 1, 28);
    defense
        .calibrate_detectors(&clean, 0.02)
        .expect("defense.calibrate_detectors failed");
    let x = image_batch(16, 1, 28);

    let mut g = c.benchmark_group("defense_pipeline_b16");
    g.sample_size(20);
    for scheme in DefenseScheme::ALL {
        g.bench_function(format!("{scheme:?}"), |bench| {
            bench.iter(|| {
                defense
                    .classify(black_box(&x), scheme)
                    .expect("defense.classify failed")
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_detectors,
    bench_calibration,
    bench_full_pipeline
);
criterion_main!(benches);
