//! Benchmarks of whole-network forward and backward passes for the two
//! architecture families the paper uses: the victim CNN and MagNet's
//! sigmoid auto-encoders.

use adv_bench::image_batch;
use adv_magnet::arch::{mnist_ae_one, mnist_classifier};
use adv_nn::loss::softmax_cross_entropy;
use adv_nn::{Mode, Sequential};
use adv_tensor::Tensor;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_classifier(c: &mut Criterion) {
    let mut net = Sequential::from_specs(&mnist_classifier(28, 1, 8, 16, 64, 10), 1)
        .expect("Sequential::from_specs failed");
    let x = image_batch(16, 1, 28);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    let mut g = c.benchmark_group("classifier_cnn_b16");
    g.bench_function("forward", |bench| {
        bench.iter(|| {
            net.forward(black_box(&x), Mode::Eval)
                .expect("net.forward failed")
        })
    });
    g.bench_function("forward_backward_to_input", |bench| {
        bench.iter(|| {
            let logits = net
                .forward(black_box(&x), Mode::Eval)
                .expect("net.forward failed");
            let (_, grad) =
                softmax_cross_entropy(&logits, &labels).expect("softmax_cross_entropy failed");
            net.backward(&grad).expect("net.backward failed")
        })
    });
    g.finish();
}

fn bench_autoencoder(c: &mut Criterion) {
    let mut thin =
        Sequential::from_specs(&mnist_ae_one(1, 3), 2).expect("Sequential::from_specs failed");
    let mut wide =
        Sequential::from_specs(&mnist_ae_one(1, 8), 2).expect("Sequential::from_specs failed");
    let x = image_batch(16, 1, 28);

    let mut g = c.benchmark_group("magnet_autoencoder_b16");
    g.bench_function("forward_3_filters", |bench| {
        bench.iter(|| {
            thin.forward(black_box(&x), Mode::Eval)
                .expect("thin.forward failed")
        })
    });
    g.bench_function("forward_8_filters", |bench| {
        bench.iter(|| {
            wide.forward(black_box(&x), Mode::Eval)
                .expect("wide.forward failed")
        })
    });
    g.bench_function("reconstruction_backward", |bench| {
        bench.iter(|| {
            let y = thin
                .forward(black_box(&x), Mode::Train)
                .expect("thin.forward failed");
            let dy = Tensor::ones(y.shape().clone());
            thin.backward(&dy).expect("thin.backward failed")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_classifier, bench_autoencoder);
criterion_main!(benches);
