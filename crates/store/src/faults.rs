//! Injectable I/O faults for durability testing.
//!
//! The store's crash-safety claims are only worth what they survive, so the
//! write paths consult an optional process-wide [`IoFaultHook`] before
//! committing bytes. `adv-chaos` implements the hook with seeded,
//! deterministic fault schedules; production runs never install one, and
//! the disarmed fast path is a single relaxed atomic load.
//!
//! The three faults model the failure classes the envelope must catch:
//!
//! * [`WriteFault::TornWrite`] — only the first `k` bytes reach the disk
//!   (a kill or power cut mid-write, or filesystem truncation).
//! * [`WriteFault::BitFlip`] — one bit of the written image is flipped
//!   (media corruption past the filesystem's own checks).
//! * [`WriteFault::TransientError`] — the write fails with an error the
//!   caller sees immediately (ENOSPC-style transients).
//!
//! Torn writes and bit flips are *silent*: the writer reports success and
//! detection is the job of envelope validation on the next load. That is
//! deliberate — it simulates corruption the writing process never saw.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// What a fault hook decided for one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Persist only the first `k` bytes (`k` < payload length) and report
    /// success.
    TornWrite(usize),
    /// Flip bit `b` (counting over the whole byte image) and report
    /// success.
    BitFlip(usize),
    /// Fail the write with [`crate::StoreError::InjectedWriteFault`]
    /// without touching the file.
    TransientError,
}

/// A source of write faults. Implemented by `adv-chaos`'s seeded plans.
pub trait IoFaultHook: Send + Sync {
    /// The fault to apply to a `len`-byte write of `path`.
    fn on_write(&self, path: &Path, len: usize) -> WriteFault;
}

static ARMED: AtomicBool = AtomicBool::new(false);
static HOOK: RwLock<Option<Arc<dyn IoFaultHook>>> = RwLock::new(None);

/// Installs (or with `None`, removes) the process-wide fault hook and
/// returns the previous one. Tests that install a hook must serialize on
/// their own lock — the hook is global state.
pub fn install_fault_hook(hook: Option<Arc<dyn IoFaultHook>>) -> Option<Arc<dyn IoFaultHook>> {
    let mut slot = crate::unpoison(HOOK.write());
    // lint-ok(ordering-justified): the armed flag is an optimisation hint;
    // readers that see a stale `true` take the lock and find `None`, and
    // installs are test-setup events ordered by the caller's own lock.
    ARMED.store(hook.is_some(), Ordering::Relaxed);
    std::mem::replace(&mut *slot, hook)
}

/// The fault decision for one write — [`WriteFault::None`] unless a hook is
/// installed.
pub(crate) fn decide(path: &Path, len: usize) -> WriteFault {
    // lint-ok(ordering-justified): see `install_fault_hook`; a stale read
    // only costs (or skips) one lock acquisition during test setup races.
    if !ARMED.load(Ordering::Relaxed) {
        return WriteFault::None;
    }
    let slot = crate::unpoison(HOOK.read());
    match &*slot {
        Some(hook) => hook.on_write(path, len),
        None => WriteFault::None,
    }
}

/// Applies a silent fault to the byte image about to be written.
pub(crate) fn corrupt_image(bytes: &[u8], fault: WriteFault) -> Option<Vec<u8>> {
    match fault {
        WriteFault::TornWrite(k) => Some(bytes.get(..k.min(bytes.len())).unwrap_or(&[]).to_vec()),
        WriteFault::BitFlip(bit) => {
            let mut out = bytes.to_vec();
            if out.is_empty() {
                return Some(out);
            }
            let byte = (bit / 8) % out.len();
            if let Some(b) = out.get_mut(byte) {
                *b ^= 1 << (bit % 8);
            }
            Some(out)
        }
        WriteFault::None | WriteFault::TransientError => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct CountingHook(AtomicUsize);
    impl IoFaultHook for CountingHook {
        fn on_write(&self, _path: &Path, _len: usize) -> WriteFault {
            self.0.fetch_add(1, Ordering::Relaxed);
            WriteFault::None
        }
    }

    #[test]
    fn hook_lifecycle() {
        let _guard = crate::test_hook_lock();
        assert_eq!(decide(Path::new("x"), 4), WriteFault::None);
        let hook = Arc::new(CountingHook(AtomicUsize::new(0)));
        let prev = install_fault_hook(Some(hook.clone()));
        assert!(prev.is_none());
        decide(Path::new("x"), 4);
        decide(Path::new("y"), 4);
        assert_eq!(hook.0.load(Ordering::Relaxed), 2);
        install_fault_hook(None);
        decide(Path::new("x"), 4);
        assert_eq!(hook.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn corrupt_image_shapes() {
        let bytes = vec![0xFFu8; 8];
        assert_eq!(corrupt_image(&bytes, WriteFault::None), None);
        assert_eq!(corrupt_image(&bytes, WriteFault::TransientError), None);
        assert_eq!(
            corrupt_image(&bytes, WriteFault::TornWrite(3))
                .unwrap()
                .len(),
            3
        );
        // Torn length is clamped to the image.
        assert_eq!(
            corrupt_image(&bytes, WriteFault::TornWrite(99))
                .unwrap()
                .len(),
            8
        );
        let flipped = corrupt_image(&bytes, WriteFault::BitFlip(13)).unwrap();
        assert_eq!(flipped.len(), 8);
        let diff: u32 = flipped
            .iter()
            .zip(&bytes)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit must differ");
    }
}
