//! Append-only, CRC-framed record journals.
//!
//! A journal makes a long sequential computation resumable at record
//! granularity: each completed unit of work (one crafted adversarial
//! sample, one finished pipeline stage) is appended as a framed record and
//! fsync'd. A killed process leaves a valid prefix plus at most one torn
//! frame; [`Journal::open`] replays the prefix, truncates the tear, and the
//! caller resumes at the first missing record.
//!
//! Layout (little-endian):
//!
//! ```text
//! header:  magic "ADVJRNL1" (8) | version u32 | context u64
//! record:  length u32 | crc32 u32 (of payload) | payload
//! ```
//!
//! The `context` is a caller-supplied fingerprint of whatever the records
//! depend on (scale parameters, attack configuration, input data). Opening
//! a journal whose context differs resets it — records crafted against a
//! different configuration must never be replayed into the current one.

use crate::crc::crc32;
use crate::faults::{self, WriteFault};
use crate::{Result, StoreError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"ADVJRNL1";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8 + 4 + 8;
const FRAME_HEADER_LEN: usize = 4 + 4;
/// Upper bound on a single record; larger length fields mark a torn or
/// corrupt frame.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// An append-only record log with crash recovery. See the module docs.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    records: Vec<Vec<u8>>,
    recovered: usize,
}

impl Journal {
    /// Opens (or creates) the journal at `path` for `context`, replaying
    /// every valid record and truncating any torn tail. A context mismatch
    /// or an unreadable header resets the journal to empty.
    ///
    /// # Errors
    ///
    /// Filesystem errors only — corruption is handled by recovery, not
    /// reported as an error.
    pub fn open(path: impl AsRef<Path>, context: u64) -> Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let existing = match std::fs::read(&path) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(StoreError::Io(e)),
        };
        let (records, valid_len) = match existing {
            Some(bytes) if header_matches(&bytes, context) => parse_records(&bytes),
            _ => (Vec::new(), 0),
        };
        if valid_len == 0 {
            // Fresh or reset journal: write a clean header.
            let mut header = Vec::with_capacity(HEADER_LEN);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            header.extend_from_slice(&context.to_le_bytes());
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            f.write_all(&header)?;
            f.sync_all()?;
            drop(f);
        } else {
            // Drop any torn tail so appends extend a valid prefix.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        let recovered = records.len();
        Ok(Journal {
            path,
            file,
            records,
            recovered,
        })
    }

    /// Discards any existing journal at `path` and opens an empty one —
    /// for callers that replay records, find them semantically stale (e.g.
    /// out of sequence after a format change), and must start over.
    ///
    /// # Errors
    ///
    /// Filesystem errors only.
    pub fn open_fresh(path: impl AsRef<Path>, context: u64) -> Result<Journal> {
        let path = path.as_ref();
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
        Journal::open(path, context)
    }

    /// Reads the valid record prefix of the journal at `path` without
    /// opening it for append: no header rewrite, no tail truncation, no
    /// file locks — safe while another handle is actively appending. A
    /// missing file, header mismatch, or foreign context yields an empty
    /// list (there is nothing valid to replay), matching [`Journal::open`]'s
    /// recovery semantics.
    ///
    /// # Errors
    ///
    /// Filesystem errors other than `NotFound`.
    pub fn read_records(path: impl AsRef<Path>, context: u64) -> Result<Vec<Vec<u8>>> {
        let bytes = match std::fs::read(path.as_ref()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(StoreError::Io(e)),
        };
        if !header_matches(&bytes, context) {
            return Ok(Vec::new());
        }
        Ok(parse_records(&bytes).0)
    }

    /// The records currently in the journal, oldest first.
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// Number of records replayed from disk at open time — the resume
    /// point of an interrupted run.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Number of records, replayed plus appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record durably (write, flush, fsync).
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected transient write faults.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let fault = faults::decide(&self.path, frame.len());
        if fault == WriteFault::TransientError {
            return Err(StoreError::InjectedWriteFault {
                path: self.path.clone(),
            });
        }
        let image = faults::corrupt_image(&frame, fault);
        let image: &[u8] = image.as_deref().unwrap_or(&frame);
        self.file.write_all(image)?;
        self.file.flush()?;
        self.file.sync_all()?;
        self.records.push(payload.to_vec());
        Ok(())
    }

    /// Deletes the journal file — call when the computation it guarded has
    /// been committed to its final artifact.
    ///
    /// # Errors
    ///
    /// Filesystem errors (a missing file is fine).
    pub fn remove(self) -> Result<()> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e)),
        }
    }
}

fn header_matches(bytes: &[u8], context: u64) -> bool {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return false;
    }
    let version = bytes
        .get(8..12)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes);
    let ctx = bytes
        .get(12..20)
        .and_then(|s| s.try_into().ok())
        .map(u64::from_le_bytes);
    version == Some(VERSION) && ctx == Some(context)
}

/// Parses the valid record prefix; returns the records and the byte length
/// of the valid region (header included).
fn parse_records(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut off = HEADER_LEN;
    while let Some(header) = bytes.get(off..off + FRAME_HEADER_LEN) {
        let Some(len) = header
            .get(..4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
        else {
            break;
        };
        let Some(stored_crc) = header
            .get(4..8)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
        else {
            break;
        };
        if len > MAX_RECORD_LEN {
            break;
        }
        let start = off + FRAME_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break;
        };
        if crc32(payload) != stored_crc {
            break;
        }
        records.push(payload.to_vec());
        off = start + len as usize;
    }
    (records, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_store_journal_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir.join("j.jrnl")
    }

    #[test]
    fn append_and_replay() {
        let path = tmp("replay");
        let mut j = Journal::open(&path, 7).unwrap();
        assert_eq!(j.recovered(), 0);
        j.append(b"alpha").unwrap();
        j.append(b"beta").unwrap();
        drop(j);
        let j = Journal::open(&path, 7).unwrap();
        assert_eq!(j.recovered(), 2);
        assert_eq!(j.records(), &[b"alpha".to_vec(), b"beta".to_vec()]);
        j.remove().unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn read_records_is_nondestructive() {
        let path = tmp("readonly");
        let mut j = Journal::open(&path, 11).unwrap();
        j.append(b"one").unwrap();
        j.append(b"two").unwrap();
        // Read while the writer still holds the journal open for append.
        let records = Journal::read_records(&path, 11).unwrap();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
        // Wrong context reads as empty, and never resets the real journal.
        assert!(Journal::read_records(&path, 12).unwrap().is_empty());
        j.append(b"three").unwrap();
        drop(j);
        // A torn tail is ignored by the reader but left on disk untouched.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert_eq!(Journal::read_records(&path, 11).unwrap().len(), 2);
        assert_eq!(std::fs::read(&path).unwrap().len(), full.len() - 2);
        // Missing file reads as empty.
        assert!(Journal::read_records(tmp("readonly-none"), 1)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn context_mismatch_resets() {
        let path = tmp("context");
        let mut j = Journal::open(&path, 1).unwrap();
        j.append(b"stale").unwrap();
        drop(j);
        let j = Journal::open(&path, 2).unwrap();
        assert!(j.is_empty(), "different context must discard records");
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut() {
        let path = tmp("torn");
        let mut j = Journal::open(&path, 3).unwrap();
        j.append(b"record-one").unwrap();
        j.append(b"record-two").unwrap();
        j.append(b"record-three").unwrap();
        drop(j);
        let full = std::fs::read(&path).unwrap();
        // Every strict prefix of the file must recover a (possibly shorter)
        // valid record prefix — never garbage, never a panic.
        let r1_end = HEADER_LEN + FRAME_HEADER_LEN + 10;
        let r2_end = r1_end + FRAME_HEADER_LEN + 10;
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let j = Journal::open(&path, 3).unwrap();
            let expect = if cut >= r2_end + FRAME_HEADER_LEN + 12 {
                3
            } else if cut >= r2_end {
                2
            } else if cut >= r1_end {
                1
            } else {
                0
            };
            assert_eq!(j.len(), expect, "cut at {cut}");
            for (i, rec) in j.records().iter().enumerate() {
                let want: &[u8] = [&b"record-one"[..], b"record-two", b"record-three"][i];
                assert_eq!(rec, want, "cut at {cut}, record {i}");
            }
        }
    }

    #[test]
    fn mid_stream_corruption_truncates_there() {
        let path = tmp("midflip");
        let mut j = Journal::open(&path, 4).unwrap();
        j.append(b"good").unwrap();
        j.append(b"later").unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the first record's payload.
        bytes[HEADER_LEN + FRAME_HEADER_LEN + 1] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut j = Journal::open(&path, 4).unwrap();
        assert_eq!(j.len(), 0, "corruption in record 0 drops it and the tail");
        // And the journal is usable again.
        j.append(b"fresh").unwrap();
        drop(j);
        let j = Journal::open(&path, 4).unwrap();
        assert_eq!(j.records(), &[b"fresh".to_vec()]);
    }

    #[test]
    fn appends_resume_after_recovery() {
        let path = tmp("resume");
        let mut j = Journal::open(&path, 5).unwrap();
        j.append(b"one").unwrap();
        drop(j);
        let mut j = Journal::open(&path, 5).unwrap();
        j.append(b"two").unwrap();
        drop(j);
        let j = Journal::open(&path, 5).unwrap();
        assert_eq!(j.records(), &[b"one".to_vec(), b"two".to_vec()]);
    }
}
