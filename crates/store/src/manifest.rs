//! Run manifests: stage-completion journals for multi-stage pipelines.
//!
//! `reproduce_all` executes a dozen independent stages (tables, figures),
//! each minutes long. A [`RunManifest`] records every completed stage in an
//! append-only [`Journal`](crate::Journal) keyed by a context fingerprint of
//! the run configuration; a rerun after a kill skips the stages already
//! recorded and resumes at the first unfinished one. Changing the
//! configuration changes the context, which resets the manifest — stale
//! completions never leak across configurations.

use crate::journal::Journal;
use crate::{metric_names, Result};
use std::collections::HashSet;
use std::path::Path;

/// A durable set of completed stage names. See the module docs.
#[derive(Debug)]
pub struct RunManifest {
    journal: Journal,
    done: HashSet<String>,
}

impl RunManifest {
    /// Opens (or creates) the manifest at `path` for a run configuration
    /// fingerprinted by `context`. A context mismatch resets the manifest.
    ///
    /// # Errors
    ///
    /// Filesystem errors only.
    pub fn open(path: impl AsRef<Path>, context: u64) -> Result<RunManifest> {
        let journal = Journal::open(path, context)?;
        let done = journal
            .records()
            .iter()
            .filter_map(|r| std::str::from_utf8(r).ok())
            .map(str::to_string)
            .collect();
        Ok(RunManifest { journal, done })
    }

    /// `true` when `stage` was recorded complete (this run or a previous
    /// interrupted one).
    pub fn is_done(&self, stage: &str) -> bool {
        self.done.contains(stage)
    }

    /// Number of stages recorded complete.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    /// Durably records `stage` as complete. Recording a stage twice is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected transient write faults.
    pub fn record(&mut self, stage: &str) -> Result<()> {
        if self.done.contains(stage) {
            return Ok(());
        }
        self.journal.append(stage.as_bytes())?;
        self.done.insert(stage.to_string());
        Ok(())
    }

    /// Runs `stage` through `f` unless the manifest already recorded it,
    /// then records it. Returns `true` when the stage was skipped. Skips
    /// bump the `store.stages_skipped` counter.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns, or the manifest write after it succeeds.
    pub fn run_stage<E>(
        &mut self,
        stage: &str,
        f: impl FnOnce() -> std::result::Result<(), E>,
    ) -> std::result::Result<bool, E>
    where
        E: From<crate::StoreError>,
    {
        if self.is_done(stage) {
            crate::bump_counter(metric_names::STAGES_SKIPPED);
            return Ok(true);
        }
        f()?;
        self.record(stage)?;
        Ok(false)
    }

    /// Deletes the manifest file — call when the whole run has completed
    /// and its completion marks are no longer needed.
    ///
    /// # Errors
    ///
    /// Filesystem errors (a missing file is fine).
    pub fn remove(self) -> Result<()> {
        self.journal.remove()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_store_manifest_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir.join("run.manifest")
    }

    #[test]
    fn records_survive_reopen() {
        let path = tmp("reopen");
        let mut m = RunManifest::open(&path, 11).unwrap();
        assert!(!m.is_done("table1"));
        m.record("table1").unwrap();
        m.record("table3").unwrap();
        drop(m);
        let m = RunManifest::open(&path, 11).unwrap();
        assert!(m.is_done("table1"));
        assert!(m.is_done("table3"));
        assert!(!m.is_done("table4"));
        assert_eq!(m.completed(), 2);
    }

    #[test]
    fn context_change_resets() {
        let path = tmp("ctx");
        let mut m = RunManifest::open(&path, 1).unwrap();
        m.record("table1").unwrap();
        drop(m);
        let m = RunManifest::open(&path, 2).unwrap();
        assert!(!m.is_done("table1"), "new context must not inherit stages");
    }

    #[test]
    fn run_stage_skips_completed_work() {
        let path = tmp("skip");
        let mut m = RunManifest::open(&path, 5).unwrap();
        let mut runs = 0;
        let skipped = m
            .run_stage("fig2", || -> Result<()> {
                runs += 1;
                Ok(())
            })
            .unwrap();
        assert!(!skipped);
        let skipped = m
            .run_stage("fig2", || -> Result<()> {
                runs += 1;
                Ok(())
            })
            .unwrap();
        assert!(skipped, "second run of the same stage must be skipped");
        assert_eq!(runs, 1);
    }

    #[test]
    fn failed_stage_is_not_recorded() {
        let path = tmp("fail");
        let mut m = RunManifest::open(&path, 9).unwrap();
        let err = m.run_stage("fig3", || {
            Err::<(), crate::StoreError>(crate::StoreError::Corrupt {
                path: PathBuf::from("x"),
                reason: "synthetic".to_string(),
            })
        });
        assert!(err.is_err());
        assert!(!m.is_done("fig3"));
        // A later successful attempt records it.
        m.run_stage("fig3", || Ok::<(), crate::StoreError>(()))
            .unwrap();
        assert!(m.is_done("fig3"));
    }

    #[test]
    fn double_record_is_idempotent() {
        let path = tmp("dup");
        let mut m = RunManifest::open(&path, 3).unwrap();
        m.record("t").unwrap();
        m.record("t").unwrap();
        drop(m);
        let m = RunManifest::open(&path, 3).unwrap();
        assert_eq!(m.completed(), 1);
    }
}
