//! Thin adapter onto the `adv-obs` registry: one relaxed load when
//! telemetry is off, a counter bump when it is on.

pub(crate) fn bump(name: &str) {
    if adv_obs::metrics_enabled() {
        adv_obs::global().counter(name).incr();
    }
}
