//! CRC32 (IEEE 802.3, reflected) — the checksum sealing every envelope.
//!
//! Implemented locally because the build environment is offline; the
//! byte-at-a-time table method is plenty for artifact-sized payloads and
//! the polynomial's guarantees are what matter: every 1- and 2-bit error
//! and every burst up to 32 bits is detected.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC32 of `data` (IEEE polynomial, reflected, init/final `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let base = b"adv-store crc sensitivity probe".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip {byte}:{bit} undetected");
            }
        }
    }
}
