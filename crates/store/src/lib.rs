//! adv-store: the crash-safe artifact layer under the experiment pipeline.
//!
//! Every table and figure of the reproduction depends on cached trained
//! models (`ADVNN001`) and attack corpora (`ADVATK01`) — artifacts that take
//! minutes to hours to regenerate. A bare `fs::write` makes each of them a
//! liability: a kill mid-write leaves a torn file that the next run may
//! half-trust. This crate makes every artifact **either bit-for-bit valid
//! or detectably corrupt**:
//!
//! * [`envelope`] — a versioned envelope (`ADVSTOR1`) carrying a CRC32 of
//!   the payload. One flipped bit anywhere in the file is caught on load.
//! * [`atomic`] — the classic durable-write sequence: write a temp file in
//!   the destination directory, `fsync` it, rename over the target, `fsync`
//!   the directory. A crash leaves either the old file or the new one,
//!   never a hybrid.
//! * [`save_artifact`] / [`load_artifact`] — the two combined. Corrupt
//!   files are **quarantined** (renamed to `<name>.corrupt`) so callers
//!   regenerate instead of repeatedly tripping over them, and every
//!   detection is visible in the `store.*` metrics.
//! * [`Journal`] — an append-only, CRC-framed record log for long sweeps: a
//!   killed attack run replays the valid prefix and resumes at the first
//!   uncrafted sample. Torn tails are truncated, never trusted.
//! * [`RunManifest`] — a journal of completed pipeline stages, letting
//!   `reproduce_all` skip finished stages on rerun.
//! * [`faults`] — an injectable I/O fault hook (torn write, bit flip,
//!   transient error) used by `adv-chaos` to prove, under seeded fault
//!   schedules, that no injected corruption goes undetected.
//!
//! The crate has no dependencies beyond `adv-obs` and performs no clock
//! reads; with no fault hook installed the hook check is a single relaxed
//! atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod envelope;
pub mod faults;
pub mod journal;
pub mod manifest;

mod crc;
mod obs;

pub use atomic::atomic_write;
pub use crc::crc32;
pub use envelope::{open_envelope, seal_envelope, ENVELOPE_MAGIC, ENVELOPE_OVERHEAD};
pub use faults::{install_fault_hook, IoFaultHook, WriteFault};
pub use journal::Journal;
pub use manifest::RunManifest;

use std::path::{Path, PathBuf};

/// Metric names this crate (and the callers it serves) publish through
/// `adv-obs`. Exported so CI schema checks and tests can grep for them.
pub mod metric_names {
    /// Successful atomic temp-write-fsync-rename sequences.
    pub const ATOMIC_RENAMES: &str = "store.atomic_renames";
    /// Envelope payloads rejected by CRC32 mismatch.
    pub const CRC_FAILURES: &str = "store.crc_failures";
    /// Corrupt files moved aside to `<name>.corrupt`.
    pub const QUARANTINED: &str = "store.quarantined";
    /// Interrupted runs resumed from a checkpoint or journal.
    pub const RESUMES: &str = "store.resumes";
    /// Pipeline stages skipped because a run manifest recorded them done.
    pub const STAGES_SKIPPED: &str = "store.stages_skipped";
    /// Cache entries rejected on load (corrupt, undecodable or mismatched).
    pub const CACHE_REJECTS: &str = "store.cache_rejects";
}

/// Bumps a `store.*` counter when metrics are enabled. Public so the crates
/// that own the *semantics* of a counter (e.g. `store.resumes` in the
/// training loop) can report through the same names.
pub fn bump_counter(name: &str) {
    obs::bump(name);
}

/// Errors surfaced by the artifact store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file failed envelope validation (bad magic, bad version, length
    /// mismatch or CRC32 mismatch) or its payload was undecodable.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What validation rejected.
        reason: String,
    },
    /// A deliberately injected transient write fault (see [`faults`]).
    InjectedWriteFault {
        /// The write target the fault hit.
        path: PathBuf,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt artifact {}: {reason}", path.display())
            }
            StoreError::InjectedWriteFault { path } => {
                write!(f, "injected transient write fault at {}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// `true` when the error means the file simply does not exist.
    pub fn is_not_found(&self) -> bool {
        matches!(self, StoreError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Recovers the guard from a poisoned lock. The store's only shared state
/// (the fault-hook slot) is a plain pointer swap that is never left
/// mid-update, so a panic elsewhere cannot have corrupted it.
fn unpoison<G>(r: std::result::Result<G, std::sync::PoisonError<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Serializes unit tests that install the process-wide fault hook.
#[cfg(test)]
pub(crate) fn test_hook_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    unpoison(LOCK.lock())
}

/// Seals `payload` in a CRC-checked envelope and writes it atomically to
/// `path` (creating parent directories).
///
/// # Errors
///
/// Filesystem errors, or [`StoreError::InjectedWriteFault`] when a fault
/// hook injects a transient error.
pub fn save_artifact(path: impl AsRef<Path>, payload: &[u8]) -> Result<()> {
    atomic_write(path.as_ref(), &seal_envelope(payload))
}

/// Loads and validates an artifact written by [`save_artifact`].
///
/// On validation failure the file is quarantined to `<name>.corrupt`
/// (`store.quarantined`) so the caller's next run regenerates it instead of
/// tripping over the same bytes again.
///
/// # Errors
///
/// [`StoreError::Io`] (including `NotFound` — check
/// [`StoreError::is_not_found`]) and [`StoreError::Corrupt`] after
/// quarantine.
pub fn load_artifact(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let path = path.as_ref();
    let data = std::fs::read(path)?;
    match open_envelope(&data) {
        Ok(payload) => Ok(payload.to_vec()),
        Err(reason) => {
            quarantine(path);
            Err(StoreError::Corrupt {
                path: path.to_path_buf(),
                reason,
            })
        }
    }
}

/// Moves a bad file aside to `<file name>.corrupt` (best effort) and bumps
/// the quarantine counter. Exposed for callers whose payload *decoders*
/// reject a CRC-valid file (e.g. a format-version drift): such files are
/// just as unusable and should not be re-read every run.
pub fn quarantine(path: &Path) {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".corrupt");
    let target = path.with_file_name(name);
    if std::fs::rename(path, &target).is_ok() {
        obs::bump(metric_names::QUARANTINED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_store_lib_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp("roundtrip");
        let path = dir.join("a/b/artifact.bin");
        let payload = b"the quick brown fox".to_vec();
        save_artifact(&path, &payload).unwrap();
        assert_eq!(load_artifact(&path).unwrap(), payload);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_not_found() {
        let err = load_artifact(tmp("missing").join("nope.bin")).unwrap_err();
        assert!(err.is_not_found());
    }

    #[test]
    fn bit_flip_is_detected_and_quarantined() {
        let dir = tmp("bitflip");
        let path = dir.join("artifact.bin");
        save_artifact(&path, b"payload bytes under test").unwrap();
        // Flip one bit in every byte position in turn; every single one
        // must be detected (magic, version, length, CRC or payload CRC).
        let pristine = std::fs::read(&path).unwrap();
        for pos in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            let err = load_artifact(&path).unwrap_err();
            assert!(
                matches!(err, StoreError::Corrupt { .. }),
                "flip at byte {pos} not detected"
            );
            // The bad file was moved aside.
            assert!(!path.exists(), "flip at {pos}: file not quarantined");
            assert!(path.with_file_name("artifact.bin.corrupt").exists());
            std::fs::remove_file(path.with_file_name("artifact.bin.corrupt")).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        let dir = tmp("prefix");
        let path = dir.join("artifact.bin");
        save_artifact(&path, b"0123456789abcdef0123456789").unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            assert!(
                open_envelope(&full[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly validated"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_error<T: std::error::Error + Send + Sync>() {}
        assert_error::<StoreError>();
    }
}
