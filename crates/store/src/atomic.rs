//! The durable write sequence.
//!
//! `atomic_write` commits bytes with the classic four-step dance:
//!
//! 1. write the full image to a uniquely-named temp file **in the target's
//!    directory** (same filesystem, so the rename below is atomic),
//! 2. `fsync` the temp file (data reaches the platter before the name),
//! 3. `rename` it over the target (POSIX rename is atomic: readers see the
//!    old file or the new one, never a mix),
//! 4. `fsync` the directory (the rename itself is durable).
//!
//! A crash at any point leaves either the previous artifact or the new one
//! plus at worst an orphaned `.tmp-*` file, which the next successful write
//! of the same artifact cleans up.

use crate::faults::{self, WriteFault};
use crate::obs;
use crate::{metric_names, Result, StoreError};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone suffix so concurrent writers in one process never collide on a
/// temp name.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces `path` with `bytes`, creating parent directories.
///
/// # Errors
///
/// Filesystem errors, or [`StoreError::InjectedWriteFault`] when an
/// installed fault hook injects a transient error. Torn-write and bit-flip
/// faults are *silent* by design (they simulate corruption the writer never
/// observed); they are what envelope validation exists to catch.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => {
            fs::create_dir_all(parent)?;
            parent.to_path_buf()
        }
        _ => std::path::PathBuf::from("."),
    };
    let fault = faults::decide(path, bytes.len());
    if fault == WriteFault::TransientError {
        return Err(StoreError::InjectedWriteFault {
            path: path.to_path_buf(),
        });
    }
    let image = faults::corrupt_image(bytes, fault);
    let image: &[u8] = image.as_deref().unwrap_or(bytes);

    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let tmp = dir.join(format!(".tmp-{}-{seq}-{file_name}", std::process::id()));

    let result = (|| -> Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(image)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directories cannot be fsync'd on
        // every platform; failure to open or sync is not a correctness
        // problem (the data file itself is already synced), so best-effort.
        if let Ok(d) = File::open(&dir) {
            d.sync_all().ok();
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            obs::bump(metric_names::ATOMIC_RENAMES);
            Ok(())
        }
        Err(e) => {
            fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_store_atomic_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp("replace");
        let path = dir.join("f.bin");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        // No temp litter after successful writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    struct FixedFault(WriteFault);
    impl crate::IoFaultHook for FixedFault {
        fn on_write(&self, _path: &Path, _len: usize) -> WriteFault {
            self.0
        }
    }

    #[test]
    fn transient_fault_leaves_previous_file_intact() {
        let _guard = crate::test_hook_lock();
        let dir = tmp("transient");
        let path = dir.join("f.bin");
        atomic_write(&path, b"stable").unwrap();
        crate::install_fault_hook(Some(Arc::new(FixedFault(WriteFault::TransientError))));
        let err = atomic_write(&path, b"doomed").unwrap_err();
        crate::install_fault_hook(None);
        assert!(matches!(err, StoreError::InjectedWriteFault { .. }));
        assert_eq!(std::fs::read(&path).unwrap(), b"stable");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_is_caught_by_the_envelope() {
        let _guard = crate::test_hook_lock();
        let dir = tmp("torn");
        let path = dir.join("f.bin");
        crate::install_fault_hook(Some(Arc::new(FixedFault(WriteFault::TornWrite(10)))));
        crate::save_artifact(&path, b"a payload long enough to tear").unwrap();
        crate::install_fault_hook(None);
        assert!(matches!(
            crate::load_artifact(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
