//! The versioned artifact envelope.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   "ADVSTOR1"   8 bytes
//! version u32          currently 1
//! length  u64          payload byte count
//! crc32   u32          CRC32 of the payload
//! payload [u8; length]
//! ```
//!
//! Validation is strict: wrong magic, unknown version, a length that does
//! not match the file, trailing bytes after the payload, or a CRC mismatch
//! all reject the file. Combined with the atomic writer this means a stored
//! artifact is either exactly what was written or detectably corrupt.

use crate::crc::crc32;
use crate::obs;

/// The envelope magic.
pub const ENVELOPE_MAGIC: &[u8; 8] = b"ADVSTOR1";

/// Envelope format version this build writes and accepts.
const VERSION: u32 = 1;

/// Bytes the envelope adds on top of the payload.
pub const ENVELOPE_OVERHEAD: usize = 8 + 4 + 8 + 4;

/// Wraps `payload` in a sealed envelope.
pub fn seal_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_OVERHEAD + payload.len());
    out.extend_from_slice(ENVELOPE_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates an envelope and returns a view of the payload.
///
/// # Errors
///
/// A human-readable reason string; CRC mismatches additionally bump the
/// `store.crc_failures` counter.
// lint-ok(crate-error-types): the reason string is deliberately path-free —
// `load_artifact` folds it into `StoreError::Corrupt` with the file path,
// which this pure validator does not know.
pub fn open_envelope(data: &[u8]) -> Result<&[u8], String> {
    if data.len() < ENVELOPE_OVERHEAD {
        return Err(format!(
            "truncated envelope: {} bytes, header needs {ENVELOPE_OVERHEAD}",
            data.len()
        ));
    }
    let (magic, rest) = data.split_at(8);
    if magic != ENVELOPE_MAGIC {
        return Err("bad envelope magic".into());
    }
    let version = u32::from_le_bytes(field::<4>(rest, 0)?);
    if version != VERSION {
        return Err(format!("unsupported envelope version {version}"));
    }
    let length = u64::from_le_bytes(field::<8>(rest, 4)?);
    let payload = &rest[16..];
    if payload.len() as u64 != length {
        return Err(format!(
            "length mismatch: header says {length}, file carries {}",
            payload.len()
        ));
    }
    let stored_crc = u32::from_le_bytes(field::<4>(rest, 12)?);
    let actual_crc = crc32(payload);
    if stored_crc != actual_crc {
        obs::bump(crate::metric_names::CRC_FAILURES);
        return Err(format!(
            "crc mismatch: stored {stored_crc:08x}, computed {actual_crc:08x}"
        ));
    }
    Ok(payload)
}

/// Reads `N` bytes at `offset` of `data` as a fixed array.
fn field<const N: usize>(data: &[u8], offset: usize) -> Result<[u8; N], String> {
    data.get(offset..offset + N)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| "truncated envelope header".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for payload in [&b""[..], b"x", b"a longer payload with content"] {
            let sealed = seal_envelope(payload);
            assert_eq!(open_envelope(&sealed).unwrap(), payload);
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut sealed = seal_envelope(b"abc");
        sealed[0] = b'X';
        assert!(open_envelope(&sealed).unwrap_err().contains("magic"));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut sealed = seal_envelope(b"abc");
        sealed[8] = 9;
        assert!(open_envelope(&sealed).unwrap_err().contains("version"));
    }

    #[test]
    fn truncation_and_extension_rejected() {
        let sealed = seal_envelope(b"some payload");
        let short = &sealed[..sealed.len() - 1];
        assert!(open_envelope(short).unwrap_err().contains("length"));
        let mut long = sealed.clone();
        long.push(0);
        assert!(open_envelope(&long).unwrap_err().contains("length"));
    }

    #[test]
    fn payload_corruption_rejected() {
        let mut sealed = seal_envelope(b"some payload");
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert!(open_envelope(&sealed).unwrap_err().contains("crc"));
    }
}
