//! Parsers for the real dataset formats.
//!
//! When the actual corpora are available on disk, the evaluation harness
//! prefers them over the synthetic generators:
//!
//! - [`idx`] parses the IDX format MNIST ships in
//!   (`train-images-idx3-ubyte` / `train-labels-idx1-ubyte`),
//! - [`cifar_bin`] parses the CIFAR-10 binary batches (`data_batch_N.bin`).

pub mod cifar_bin;
pub mod idx;

pub use cifar_bin::{cifar10_from_dir, parse_cifar_batch};
pub use idx::{mnist_from_dir, parse_idx_images, parse_idx_labels};
