//! IDX format parser (the format MNIST is distributed in).
//!
//! IDX is big-endian: a magic number encoding the element type and rank,
//! then one `u32` per dimension, then the raw data. MNIST uses
//! `0x00000803` for images (`u8`, rank 3) and `0x00000801` for labels
//! (`u8`, rank 1).

use crate::{DataError, Dataset, Result};
use adv_tensor::{Shape, Tensor};
use std::path::Path;

const IMAGE_MAGIC: u32 = 0x0000_0803;
const LABEL_MAGIC: u32 = 0x0000_0801;

fn read_u32_be(data: &[u8], offset: usize) -> Result<u32> {
    let bytes: [u8; 4] = data
        .get(offset..offset + 4)
        .ok_or_else(|| DataError::Format("truncated IDX header".into()))?
        .try_into()
        .expect("slice of length 4");
    Ok(u32::from_be_bytes(bytes))
}

/// Parses an IDX image file into an NCHW tensor with pixels scaled to
/// `[0, 1]`.
///
/// # Errors
///
/// Returns [`DataError::Format`] for wrong magic, truncated headers, or a
/// data section that does not match the declared dimensions.
pub fn parse_idx_images(data: &[u8]) -> Result<Tensor> {
    let magic = read_u32_be(data, 0)?;
    if magic != IMAGE_MAGIC {
        return Err(DataError::Format(format!(
            "bad IDX image magic {magic:#010x}, expected {IMAGE_MAGIC:#010x}"
        )));
    }
    let n = read_u32_be(data, 4)? as usize;
    let h = read_u32_be(data, 8)? as usize;
    let w = read_u32_be(data, 12)? as usize;
    let expected = 16 + n * h * w;
    if data.len() != expected {
        return Err(DataError::Format(format!(
            "IDX image file has {} bytes, expected {expected}",
            data.len()
        )));
    }
    let pixels: Vec<f32> = data[16..].iter().map(|&b| b as f32 / 255.0).collect();
    Ok(Tensor::from_vec(pixels, Shape::nchw(n, 1, h, w))?)
}

/// Parses an IDX label file into a label vector.
///
/// # Errors
///
/// Returns [`DataError::Format`] for wrong magic or truncated data.
pub fn parse_idx_labels(data: &[u8]) -> Result<Vec<usize>> {
    let magic = read_u32_be(data, 0)?;
    if magic != LABEL_MAGIC {
        return Err(DataError::Format(format!(
            "bad IDX label magic {magic:#010x}, expected {LABEL_MAGIC:#010x}"
        )));
    }
    let n = read_u32_be(data, 4)? as usize;
    if data.len() != 8 + n {
        return Err(DataError::Format(format!(
            "IDX label file has {} bytes, expected {}",
            data.len(),
            8 + n
        )));
    }
    Ok(data[8..].iter().map(|&b| b as usize).collect())
}

/// Loads the MNIST test split from a directory containing
/// `t10k-images-idx3-ubyte` and `t10k-labels-idx1-ubyte` (or the `train-`
/// pair when `train` is `true`).
///
/// # Errors
///
/// Returns I/O errors when the files are absent and [`DataError::Format`]
/// when they are malformed or disagree in length.
pub fn mnist_from_dir(dir: impl AsRef<Path>, train: bool) -> Result<Dataset> {
    let dir = dir.as_ref();
    let (img_name, lbl_name) = if train {
        ("train-images-idx3-ubyte", "train-labels-idx1-ubyte")
    } else {
        ("t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")
    };
    let images = parse_idx_images(&std::fs::read(dir.join(img_name))?)?;
    let labels = parse_idx_labels(&std::fs::read(dir.join(lbl_name))?)?;
    if images.shape().dim(0) != labels.len() {
        return Err(DataError::Format(format!(
            "{} images but {} labels",
            images.shape().dim(0),
            labels.len()
        )));
    }
    Dataset::new(images, labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_image_file(n: usize, h: usize, w: usize) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&IMAGE_MAGIC.to_be_bytes());
        f.extend_from_slice(&(n as u32).to_be_bytes());
        f.extend_from_slice(&(h as u32).to_be_bytes());
        f.extend_from_slice(&(w as u32).to_be_bytes());
        f.extend((0..n * h * w).map(|i| (i % 256) as u8));
        f
    }

    fn make_label_file(labels: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&LABEL_MAGIC.to_be_bytes());
        f.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        f.extend_from_slice(labels);
        f
    }

    #[test]
    fn parses_synthetic_image_file() {
        let file = make_image_file(3, 4, 5);
        let t = parse_idx_images(&file).unwrap();
        assert_eq!(t.shape().dims(), &[3, 1, 4, 5]);
        assert_eq!(t.as_slice()[0], 0.0);
        assert!((t.as_slice()[59] - 59.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn parses_synthetic_label_file() {
        let file = make_label_file(&[3, 1, 4]);
        assert_eq!(parse_idx_labels(&file).unwrap(), vec![3, 1, 4]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut img = make_image_file(1, 2, 2);
        img[3] = 0x01;
        assert!(matches!(parse_idx_images(&img), Err(DataError::Format(_))));
        let mut lbl = make_label_file(&[0]);
        lbl[3] = 0x03;
        assert!(matches!(parse_idx_labels(&lbl), Err(DataError::Format(_))));
    }

    #[test]
    fn rejects_truncation() {
        let img = make_image_file(2, 3, 3);
        assert!(parse_idx_images(&img[..img.len() - 1]).is_err());
        assert!(parse_idx_images(&img[..10]).is_err());
        let lbl = make_label_file(&[1, 2, 3]);
        assert!(parse_idx_labels(&lbl[..lbl.len() - 1]).is_err());
    }

    #[test]
    fn dir_loader_roundtrip() {
        let dir = std::env::temp_dir().join("adv_data_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("t10k-images-idx3-ubyte"), make_image_file(2, 3, 3)).unwrap();
        std::fs::write(dir.join("t10k-labels-idx1-ubyte"), make_label_file(&[7, 2])).unwrap();
        let ds = mnist_from_dir(&dir, false).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[7, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_loader_missing_files_is_io_error() {
        let missing = std::env::temp_dir().join("adv_data_idx_nonexistent");
        assert!(matches!(
            mnist_from_dir(&missing, false),
            Err(DataError::Io(_))
        ));
    }
}
