//! CIFAR-10 binary format parser.
//!
//! Each CIFAR-10 binary batch is a sequence of 3073-byte records: one label
//! byte followed by 3072 pixel bytes (1024 red, 1024 green, 1024 blue,
//! row-major 32×32) — which is exactly NCHW order, so parsing is a straight
//! scale-to-`[0,1]` copy.

use crate::{DataError, Dataset, Result};
use adv_tensor::{Shape, Tensor};
use std::path::Path;

/// CIFAR image side length.
const SIZE: usize = 32;
/// Bytes per record: label + 3 × 32 × 32 pixels.
const RECORD: usize = 1 + 3 * SIZE * SIZE;

/// Parses one CIFAR-10 binary batch into `(images, labels)`.
///
/// # Errors
///
/// Returns [`DataError::Format`] when the file length is not a multiple of
/// the 3073-byte record size or a label exceeds 9.
pub fn parse_cifar_batch(data: &[u8]) -> Result<(Tensor, Vec<usize>)> {
    if data.is_empty() || !data.len().is_multiple_of(RECORD) {
        return Err(DataError::Format(format!(
            "CIFAR batch length {} is not a positive multiple of {RECORD}",
            data.len()
        )));
    }
    let n = data.len() / RECORD;
    let mut labels = Vec::with_capacity(n);
    let mut pixels = Vec::with_capacity(n * (RECORD - 1));
    for rec in data.chunks_exact(RECORD) {
        let label = rec[0] as usize;
        if label > 9 {
            return Err(DataError::Format(format!("label {label} exceeds 9")));
        }
        labels.push(label);
        pixels.extend(rec[1..].iter().map(|&b| b as f32 / 255.0));
    }
    let images = Tensor::from_vec(pixels, Shape::nchw(n, 3, SIZE, SIZE))?;
    Ok((images, labels))
}

/// Loads CIFAR-10 from a directory of binary batches.
///
/// Reads `data_batch_1.bin` … `data_batch_5.bin` when `train` is `true`,
/// `test_batch.bin` otherwise.
///
/// # Errors
///
/// Returns I/O errors for missing files and [`DataError::Format`] for
/// malformed batches.
pub fn cifar10_from_dir(dir: impl AsRef<Path>, train: bool) -> Result<Dataset> {
    let dir = dir.as_ref();
    let names: Vec<String> = if train {
        (1..=5).map(|i| format!("data_batch_{i}.bin")).collect()
    } else {
        vec!["test_batch.bin".to_string()]
    };
    let mut all_images = Vec::new();
    let mut all_labels = Vec::new();
    for name in names {
        let (images, labels) = parse_cifar_batch(&std::fs::read(dir.join(name))?)?;
        all_images.push(images);
        all_labels.extend(labels);
    }
    let images = Tensor::concat0(&all_images)?;
    Dataset::new(images, all_labels, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_batch(labels: &[u8]) -> Vec<u8> {
        let mut data = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            data.push(l);
            data.extend((0..RECORD - 1).map(|j| ((i + j) % 256) as u8));
        }
        data
    }

    #[test]
    fn parses_records() {
        let batch = make_batch(&[0, 5, 9]);
        let (images, labels) = parse_cifar_batch(&batch).unwrap();
        assert_eq!(images.shape().dims(), &[3, 3, 32, 32]);
        assert_eq!(labels, vec![0, 5, 9]);
        assert!(images.min() >= 0.0 && images.max() <= 1.0);
    }

    #[test]
    fn rejects_bad_length() {
        let batch = make_batch(&[1]);
        assert!(parse_cifar_batch(&batch[..batch.len() - 1]).is_err());
        assert!(parse_cifar_batch(&[]).is_err());
    }

    #[test]
    fn rejects_bad_label() {
        let mut batch = make_batch(&[1]);
        batch[0] = 12;
        assert!(matches!(
            parse_cifar_batch(&batch),
            Err(DataError::Format(_))
        ));
    }

    #[test]
    fn dir_loader_test_batch() {
        let dir = std::env::temp_dir().join("adv_data_cifar_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("test_batch.bin"), make_batch(&[2, 7])).unwrap();
        let ds = cifar10_from_dir(&dir, false).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.labels(), &[2, 7]);
        assert_eq!(ds.image_shape(), &[3, 32, 32]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_loader_missing_is_io_error() {
        let missing = std::env::temp_dir().join("adv_data_cifar_nonexistent");
        assert!(matches!(
            cifar10_from_dir(&missing, false),
            Err(DataError::Io(_))
        ));
    }
}
