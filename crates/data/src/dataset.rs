use crate::{DataError, Result};
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labelled image dataset: an NCHW tensor of images in `[0, 1]` and one
/// integer label per image.
///
/// # Example
///
/// ```
/// use adv_data::synth::mnist_like;
///
/// let ds = mnist_like(100, 42);
/// assert_eq!(ds.len(), 100);
/// assert_eq!(ds.image_shape(), &[1, 28, 28]);
/// assert!(ds.labels().iter().all(|&l| l < ds.num_classes()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an NCHW image tensor and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] when the image tensor is not
    /// rank 4, when the label count disagrees with the batch size, or when a
    /// label is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if images.shape().rank() != 4 {
            return Err(DataError::InvalidArgument(format!(
                "images must be NCHW, got rank {}",
                images.shape().rank()
            )));
        }
        if images.shape().dim(0) != labels.len() {
            return Err(DataError::InvalidArgument(format!(
                "{} images but {} labels",
                images.shape().dim(0),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::InvalidArgument(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// The image tensor, `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Labels, one per image.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no images.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-image shape `[c, h, w]`.
    pub fn image_shape(&self) -> &[usize] {
        &self.images.shape().dims()[1..]
    }

    /// Extracts image `i` as a single-item NCHW batch (`[1, c, h, w]`).
    ///
    /// # Errors
    ///
    /// Returns an index error when `i >= len()`.
    pub fn image(&self, i: usize) -> Result<Tensor> {
        let item = self.images.index_axis0(i)?;
        let mut dims = vec![1usize];
        dims.extend_from_slice(item.shape().dims());
        Ok(item.into_reshaped(Shape::new(dims))?)
    }

    /// A new dataset containing rows `indices` (in that order).
    ///
    /// # Errors
    ///
    /// Returns an index error when any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let n = self.len();
        let item = self.images.shape().volume() / n.max(1);
        let mut data = Vec::with_capacity(indices.len() * item);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= n {
                return Err(DataError::Tensor(
                    adv_tensor::TensorError::IndexOutOfBounds { index: i, bound: n },
                ));
            }
            data.extend_from_slice(&self.images.as_slice()[i * item..(i + 1) * item]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(self.image_shape());
        Ok(Dataset {
            images: Tensor::from_vec(data, Shape::new(dims))?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(front, back)` where `front` holds `fraction` of the
    /// data, after a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidArgument`] unless `0 < fraction < 1`.
    pub fn split(&self, fraction: f32, seed: u64) -> Result<(Dataset, Dataset)> {
        if !(0.0..1.0).contains(&fraction) || fraction == 0.0 {
            return Err(DataError::InvalidArgument(format!(
                "split fraction {fraction} outside (0, 1)"
            )));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((self.len() as f32) * fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        Ok((self.subset(&order[..cut])?, self.subset(&order[cut..])?))
    }

    /// A seeded random permutation of the dataset.
    ///
    /// # Errors
    ///
    /// Propagates subset errors (none expected for valid datasets).
    pub fn shuffled(&self, seed: u64) -> Result<Dataset> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        self.subset(&order)
    }

    /// Indices of all images with the given label.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::from_fn(Shape::nchw(n, 1, 2, 2), |i| (i % 10) as f32 / 10.0);
        let labels = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let img = Tensor::zeros(Shape::nchw(2, 1, 2, 2));
        assert!(Dataset::new(img.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(img.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::new(Tensor::zeros(Shape::matrix(2, 4)), vec![0, 1], 2).is_err());
        assert!(Dataset::new(img, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn image_extracts_single_batch() {
        let ds = toy(5);
        let img = ds.image(2).unwrap();
        assert_eq!(img.shape().dims(), &[1, 1, 2, 2]);
        assert!(ds.image(5).is_err());
    }

    #[test]
    fn subset_preserves_pairing() {
        let ds = toy(9);
        let sub = ds.subset(&[8, 0, 4]).unwrap();
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels(), &[8 % 3, 0, 4 % 3]);
        assert_eq!(
            sub.image(0).unwrap().as_slice(),
            ds.image(8).unwrap().as_slice()
        );
    }

    #[test]
    fn split_partitions_everything() {
        let ds = toy(10);
        let (a, b) = ds.split(0.7, 3).unwrap();
        assert_eq!(a.len() + b.len(), 10);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let ds = toy(4);
        assert!(ds.split(0.0, 0).is_err());
        assert!(ds.split(1.0, 0).is_err());
        assert!(ds.split(-0.5, 0).is_err());
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        let ds = toy(20);
        let a = ds.shuffled(7).unwrap();
        let b = ds.shuffled(7).unwrap();
        assert_eq!(a, b);
        let mut la = a.labels().to_vec();
        let mut lo = ds.labels().to_vec();
        la.sort_unstable();
        lo.sort_unstable();
        assert_eq!(la, lo);
    }

    #[test]
    fn class_indices() {
        let ds = toy(9);
        assert_eq!(ds.indices_of_class(0), vec![0, 3, 6]);
        assert_eq!(ds.indices_of_class(2), vec![2, 5, 8]);
    }
}
