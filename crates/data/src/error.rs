use adv_tensor::TensorError;
use std::fmt;

/// Errors produced while building or loading datasets.
#[derive(Debug)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A dataset file was malformed (bad magic, truncated, wrong counts).
    Format(String),
    /// Filesystem error while reading a dataset.
    Io(std::io::Error),
    /// An invalid request (e.g. split fraction outside `(0, 1)`).
    InvalidArgument(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::Format(msg) => write!(f, "malformed dataset: {msg}"),
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }

    #[test]
    fn display_variants() {
        assert!(DataError::Format("x".into())
            .to_string()
            .contains("malformed"));
        assert!(DataError::InvalidArgument("y".into())
            .to_string()
            .contains("invalid"));
    }
}
