//! Datasets for the MagNet/EAD reproduction.
//!
//! The paper evaluates on MNIST and CIFAR-10. Those corpora are not shipped
//! with this repository, so this crate provides both:
//!
//! - **Synthetic generators** ([`synth`]) that procedurally render
//!   MNIST-like stroke digits (28×28×1) and CIFAR-like colored scenes
//!   (16×16×3). They preserve what the experiments need: a 10-class image
//!   task with a learnable data manifold, enough intra-class variation to
//!   train classifiers and auto-encoders, and pixel values in `[0, 1]`.
//! - **Real-format parsers** ([`loaders`]) for the IDX (MNIST) and CIFAR-10
//!   binary formats, used automatically when the files are present (see
//!   [`mnist_from_dir`] / [`cifar10_from_dir`]).
//!
//! [`mnist_from_dir`]: loaders::mnist_from_dir
//! [`cifar10_from_dir`]: loaders::cifar10_from_dir

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;

pub mod loaders;
pub mod synth;

pub use dataset::Dataset;
pub use error::DataError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
