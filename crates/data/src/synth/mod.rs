//! Procedural dataset generators.
//!
//! These stand in for the real MNIST / CIFAR-10 corpora (see the
//! substitution table in `DESIGN.md`). Both generators are deterministic
//! given a seed and produce pixel values in `[0, 1]`.

mod cifar;
mod mnist;

pub use cifar::{cifar_like, CIFAR_CHANNELS, CIFAR_CLASSES, CIFAR_SIZE};
pub use mnist::{mnist_like, MNIST_CLASSES, MNIST_SIZE};
