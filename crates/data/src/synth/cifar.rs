//! Procedural CIFAR-like colored scenes.
//!
//! Ten classes, each defined by a (background palette, foreground shape,
//! texture) signature with per-sample jitter in position, scale, hue and
//! noise. 16×16×3 RGB in `[0, 1]` — smaller than CIFAR's 32×32 to fit the
//! CPU budget while keeping every code path (3-channel convs, color
//! auto-encoders, JSD detectors) identical in structure.

use crate::Dataset;
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const CIFAR_SIZE: usize = 16;
/// Number of channels (RGB).
pub const CIFAR_CHANNELS: usize = 3;
/// Number of classes.
pub const CIFAR_CLASSES: usize = 10;

#[derive(Clone, Copy)]
enum FgShape {
    Disc,
    Square,
    Triangle,
    HStripes,
    VStripes,
}

struct ClassSignature {
    bg: [f32; 3],
    bg_grad: [f32; 3],
    fg: [f32; 3],
    shape: FgShape,
}

/// Fixed per-class visual signatures — distinct enough for a small CNN,
/// overlapping enough (shared shapes, nearby hues) to be non-trivial.
/// (background, background gradient, foreground, shape tag).
type RawSignature = ([f32; 3], [f32; 3], [f32; 3], u8);

fn signature(class: usize) -> ClassSignature {
    const SIGS: [RawSignature; 10] = [
        ([0.55, 0.75, 0.95], [-0.2, -0.1, 0.0], [0.85, 0.85, 0.9], 0), // airplane: sky + light disc
        ([0.5, 0.5, 0.55], [0.1, 0.1, 0.1], [0.8, 0.2, 0.2], 1),       // car: asphalt + red box
        ([0.6, 0.85, 0.95], [0.0, -0.15, -0.1], [0.35, 0.3, 0.25], 2), // bird: sky + dark triangle
        ([0.45, 0.6, 0.35], [0.1, 0.05, 0.0], [0.85, 0.65, 0.3], 0),   // cat: grass + tawny disc
        ([0.4, 0.55, 0.3], [0.15, 0.1, 0.05], [0.55, 0.4, 0.25], 1),   // deer: forest + brown box
        ([0.75, 0.7, 0.6], [-0.1, -0.1, -0.05], [0.3, 0.25, 0.2], 0),  // dog: indoor + dark disc
        ([0.3, 0.5, 0.25], [0.05, 0.15, 0.05], [0.25, 0.7, 0.3], 2), // frog: pond + green triangle
        ([0.35, 0.45, 0.7], [0.0, 0.1, 0.2], [0.9, 0.9, 0.95], 3),   // boat: sea + white h-stripes
        ([0.5, 0.45, 0.4], [0.1, 0.1, 0.1], [0.9, 0.75, 0.2], 4), // truck: road + yellow v-stripes
        ([0.65, 0.55, 0.75], [-0.15, 0.0, -0.1], [0.2, 0.3, 0.55], 1), // extra vehicle: dusk + blue box
    ];
    let (bg, bg_grad, fg, shape) = SIGS[class];
    ClassSignature {
        bg,
        bg_grad,
        fg,
        shape: match shape {
            0 => FgShape::Disc,
            1 => FgShape::Square,
            2 => FgShape::Triangle,
            3 => FgShape::HStripes,
            _ => FgShape::VStripes,
        },
    }
}

fn shape_mask(shape: FgShape, x: f32, y: f32, cx: f32, cy: f32, r: f32) -> f32 {
    match shape {
        FgShape::Disc => {
            let d = ((x - cx) * (x - cx) + (y - cy) * (y - cy)).sqrt();
            (1.0 - (d - r) / 0.06).clamp(0.0, 1.0)
        }
        FgShape::Square => {
            let d = (x - cx).abs().max((y - cy).abs());
            (1.0 - (d - r) / 0.06).clamp(0.0, 1.0)
        }
        FgShape::Triangle => {
            // Upward triangle: inside when below the two slanted edges.
            let dy = y - (cy - r);
            if dy < 0.0 || dy > 2.0 * r {
                0.0
            } else {
                let half_width = dy / 2.0;
                let dx = (x - cx).abs();
                (1.0 - (dx - half_width) / 0.05).clamp(0.0, 1.0)
            }
        }
        FgShape::HStripes => {
            let inside = ((x - cx).abs() < r * 1.3) && ((y - cy).abs() < r);
            if inside && ((y * 8.0) as i32) % 2 == 0 {
                1.0
            } else {
                0.0
            }
        }
        FgShape::VStripes => {
            let inside = ((x - cx).abs() < r) && ((y - cy).abs() < r * 1.3);
            if inside && ((x * 8.0) as i32) % 2 == 0 {
                1.0
            } else {
                0.0
            }
        }
    }
}

fn render_scene(class: usize, rng: &mut StdRng, out: &mut [f32]) {
    let hw = CIFAR_SIZE * CIFAR_SIZE;
    debug_assert_eq!(out.len(), CIFAR_CHANNELS * hw);
    let sig = signature(class);
    let cx: f32 = rng.gen_range(0.35..0.65);
    let cy: f32 = rng.gen_range(0.35..0.65);
    let r: f32 = rng.gen_range(0.18..0.3);
    let hue_jitter: [f32; 3] = [
        rng.gen_range(-0.08..0.08),
        rng.gen_range(-0.08..0.08),
        rng.gen_range(-0.08..0.08),
    ];
    // Per-sample noise amplitude. Kept *small*: the clean reconstruction
    // error floor of MagNet's auto-encoders scales with this noise, and a
    // high floor hides adversarial perturbations from the detectors (they
    // operate on |x − AE(x)| norms). 0.01–0.02 keeps textures non-trivial
    // while leaving the perturbation as the dominant reconstruction signal.
    let noise_amp: f32 = rng.gen_range(0.01..0.02);

    for p in 0..hw {
        let y = (p / CIFAR_SIZE) as f32 / (CIFAR_SIZE - 1) as f32;
        let x = (p % CIFAR_SIZE) as f32 / (CIFAR_SIZE - 1) as f32;
        let m = shape_mask(sig.shape, x, y, cx, cy, r);
        for ch in 0..CIFAR_CHANNELS {
            let bg = sig.bg[ch] + sig.bg_grad[ch] * y + hue_jitter[ch];
            let fg = sig.fg[ch] + hue_jitter[ch] * 0.5;
            let v = bg * (1.0 - m) + fg * m + rng.gen_range(-noise_amp..noise_amp);
            out[ch * hw + p] = v.clamp(0.0, 1.0);
        }
    }
}

/// Generates `n` CIFAR-like 16×16 RGB scenes with random class assignment.
///
/// Deterministic in `seed`; pixel values lie in `[0, 1]`.
pub fn cifar_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let item = CIFAR_CHANNELS * CIFAR_SIZE * CIFAR_SIZE;
    let mut data = vec![0.0f32; n * item];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = rng.gen_range(0..CIFAR_CLASSES);
        labels.push(class);
        render_scene(class, &mut rng, &mut data[i * item..(i + 1) * item]);
    }
    let images = Tensor::from_vec(data, Shape::nchw(n, CIFAR_CHANNELS, CIFAR_SIZE, CIFAR_SIZE))
        .expect("generator shape is consistent by construction");
    Dataset::new(images, labels, CIFAR_CLASSES).expect("labels are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_shape() {
        let ds = cifar_like(12, 1);
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.image_shape(), &[3, 16, 16]);
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn pixels_stay_in_unit_box() {
        let ds = cifar_like(40, 2);
        assert!(ds.images().min() >= 0.0);
        assert!(ds.images().max() <= 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(cifar_like(8, 9), cifar_like(8, 9));
        assert_ne!(cifar_like(8, 9), cifar_like(8, 10));
    }

    #[test]
    fn all_classes_appear() {
        let ds = cifar_like(300, 3);
        for c in 0..10 {
            assert!(!ds.indices_of_class(c).is_empty(), "class {c} missing");
        }
    }

    #[test]
    fn classes_have_distinct_mean_color() {
        // Background palettes must differ between at least some class pairs —
        // otherwise a classifier has nothing to learn from color.
        let ds = cifar_like(400, 4);
        let mean_color = |c: usize| {
            let idx = ds.indices_of_class(c);
            let sub = ds.subset(&idx).unwrap();
            sub.images().mean()
        };
        let a = mean_color(0);
        let b = mean_color(6);
        assert!(
            (a - b).abs() > 0.02,
            "classes 0 and 6 too similar: {a} vs {b}"
        );
    }

    #[test]
    fn intra_class_variation_exists() {
        let ds = cifar_like(100, 5);
        let idx = ds.indices_of_class(1);
        assert!(idx.len() >= 2);
        assert_ne!(
            ds.image(idx[0]).unwrap().as_slice(),
            ds.image(idx[1]).unwrap().as_slice()
        );
    }
}
