//! Procedural MNIST-like digits.
//!
//! Each digit class is a fixed set of stroke polylines in the unit square.
//! Per sample, the strokes undergo a random affine jitter (rotation, scale,
//! translation, shear), are rasterized with an anti-aliased distance-field
//! pen of randomized thickness, and receive light pixel noise. The result is
//! a 28×28 grayscale image in `[0, 1]` with MNIST's "white ink on black
//! paper" polarity.

use crate::Dataset;
use adv_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (matches MNIST).
pub const MNIST_SIZE: usize = 28;
/// Number of classes.
pub const MNIST_CLASSES: usize = 10;

type Polyline = Vec<(f32, f32)>;

fn circle(cx: f32, cy: f32, rx: f32, ry: f32, n: usize) -> Polyline {
    (0..=n)
        .map(|i| {
            let a = i as f32 / n as f32 * std::f32::consts::TAU;
            (cx + rx * a.cos(), cy + ry * a.sin())
        })
        .collect()
}

/// Stroke skeletons for the ten digit classes, in unit coordinates
/// (x right, y down).
fn glyph(digit: usize) -> Vec<Polyline> {
    match digit {
        0 => vec![circle(0.5, 0.5, 0.22, 0.33, 24)],
        1 => vec![vec![(0.35, 0.28), (0.52, 0.12), (0.52, 0.88)]],
        2 => vec![vec![
            (0.25, 0.3),
            (0.32, 0.16),
            (0.55, 0.12),
            (0.72, 0.22),
            (0.72, 0.38),
            (0.3, 0.66),
            (0.22, 0.85),
            (0.78, 0.85),
        ]],
        3 => vec![vec![
            (0.26, 0.18),
            (0.55, 0.12),
            (0.72, 0.25),
            (0.6, 0.42),
            (0.42, 0.47),
            (0.62, 0.52),
            (0.74, 0.68),
            (0.6, 0.85),
            (0.28, 0.84),
        ]],
        4 => vec![vec![(0.62, 0.88), (0.62, 0.1), (0.2, 0.62), (0.82, 0.62)]],
        5 => vec![vec![
            (0.72, 0.14),
            (0.3, 0.14),
            (0.27, 0.45),
            (0.55, 0.42),
            (0.73, 0.55),
            (0.73, 0.72),
            (0.55, 0.86),
            (0.26, 0.8),
        ]],
        6 => vec![vec![
            (0.66, 0.13),
            (0.42, 0.3),
            (0.3, 0.55),
            (0.31, 0.75),
            (0.48, 0.88),
            (0.66, 0.78),
            (0.67, 0.6),
            (0.48, 0.52),
            (0.32, 0.6),
        ]],
        7 => vec![vec![(0.22, 0.14), (0.78, 0.14), (0.45, 0.88)]],
        8 => vec![
            circle(0.5, 0.3, 0.17, 0.17, 20),
            circle(0.5, 0.67, 0.21, 0.2, 20),
        ],
        9 => vec![
            circle(0.5, 0.34, 0.19, 0.2, 20),
            vec![(0.69, 0.36), (0.66, 0.88)],
        ],
        _ => unreachable!("digit classes are 0..10"),
    }
}

/// Squared distance from point `p` to segment `(a, b)`.
fn dist_sq_to_segment(p: (f32, f32), a: (f32, f32), b: (f32, f32)) -> f32 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq > 0.0 {
        (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    (px - cx) * (px - cx) + (py - cy) * (py - cy)
}

struct Affine {
    a: f32,
    b: f32,
    c: f32,
    d: f32,
    tx: f32,
    ty: f32,
}

impl Affine {
    fn apply(&self, (x, y): (f32, f32)) -> (f32, f32) {
        // Transform about the glyph center (0.5, 0.5).
        let (x, y) = (x - 0.5, y - 0.5);
        (
            self.a * x + self.b * y + 0.5 + self.tx,
            self.c * x + self.d * y + 0.5 + self.ty,
        )
    }
}

fn sample_affine(rng: &mut StdRng) -> Affine {
    let theta: f32 = rng.gen_range(-0.22..0.22); // ±12.6°
    let scale: f32 = rng.gen_range(0.82..1.08);
    let shear: f32 = rng.gen_range(-0.15..0.15);
    let (s, c) = theta.sin_cos();
    Affine {
        a: scale * (c + shear * s),
        b: scale * (-s + shear * c),
        c: scale * s,
        d: scale * c,
        tx: rng.gen_range(-0.06..0.06),
        ty: rng.gen_range(-0.06..0.06),
    }
}

/// Rasterizes one digit with the given RNG.
fn render_digit(digit: usize, rng: &mut StdRng, out: &mut [f32]) {
    debug_assert_eq!(out.len(), MNIST_SIZE * MNIST_SIZE);
    let affine = sample_affine(rng);
    let strokes: Vec<Polyline> = glyph(digit)
        .into_iter()
        .map(|line| line.into_iter().map(|p| affine.apply(p)).collect())
        .collect();
    let thickness: f32 = rng.gen_range(0.035..0.055);
    let soft = 0.02f32;
    let ink: f32 = rng.gen_range(0.85..1.0);

    for (i, px) in out.iter_mut().enumerate() {
        let y = (i / MNIST_SIZE) as f32 / (MNIST_SIZE - 1) as f32;
        let x = (i % MNIST_SIZE) as f32 / (MNIST_SIZE - 1) as f32;
        let mut d_sq = f32::INFINITY;
        for line in &strokes {
            for seg in line.windows(2) {
                d_sq = d_sq.min(dist_sq_to_segment((x, y), seg[0], seg[1]));
            }
        }
        let d = d_sq.sqrt();
        let v = ink * (1.0 - ((d - thickness) / soft)).clamp(0.0, 1.0);
        // Sensor noise: enough texture that auto-encoders see a non-trivial
        // clean reconstruction-error floor (as with real scans), which is
        // what gives MagNet's detector thresholds their headroom.
        let noise: f32 = rng.gen_range(-0.06..0.06);
        *px = (v + noise).clamp(0.0, 1.0);
    }
}

/// Generates `n` MNIST-like 28×28 grayscale digits with balanced classes.
///
/// Deterministic in `seed`. Class of image `i` is *not* simply `i % 10`; the
/// class sequence is drawn from the RNG so that any prefix of the dataset is
/// class-balanced in expectation but not trivially ordered.
///
/// # Panics
///
/// Does not panic for any `n` (an empty dataset is returned for `n = 0`).
pub fn mnist_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; n * MNIST_SIZE * MNIST_SIZE];
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = rng.gen_range(0..MNIST_CLASSES);
        labels.push(digit);
        render_digit(
            digit,
            &mut rng,
            &mut data[i * MNIST_SIZE * MNIST_SIZE..(i + 1) * MNIST_SIZE * MNIST_SIZE],
        );
    }
    let images = Tensor::from_vec(data, Shape::nchw(n, 1, MNIST_SIZE, MNIST_SIZE))
        .expect("generator shape is consistent by construction");
    Dataset::new(images, labels, MNIST_CLASSES).expect("labels are in range by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_shape() {
        let ds = mnist_like(25, 1);
        assert_eq!(ds.len(), 25);
        assert_eq!(ds.image_shape(), &[1, 28, 28]);
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn pixels_stay_in_unit_box() {
        let ds = mnist_like(50, 2);
        assert!(ds.images().min() >= 0.0);
        assert!(ds.images().max() <= 1.0);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(mnist_like(10, 7), mnist_like(10, 7));
        assert_ne!(mnist_like(10, 7), mnist_like(10, 8));
    }

    #[test]
    fn images_have_ink() {
        let ds = mnist_like(20, 3);
        for i in 0..20 {
            let img = ds.image(i).unwrap();
            assert!(img.max() > 0.5, "image {i} has max {}", img.max());
            // Digit strokes cover a minority of the canvas.
            assert!(img.mean() < 0.5, "image {i} has mean {}", img.mean());
        }
    }

    #[test]
    fn all_classes_appear() {
        let ds = mnist_like(300, 4);
        for c in 0..10 {
            assert!(
                !ds.indices_of_class(c).is_empty(),
                "class {c} missing from 300 samples"
            );
        }
    }

    #[test]
    fn same_class_images_differ() {
        // Affine jitter must create intra-class variation.
        let ds = mnist_like(100, 5);
        let idx = ds.indices_of_class(3);
        assert!(idx.len() >= 2);
        let a = ds.image(idx[0]).unwrap();
        let b = ds.image(idx[1]).unwrap();
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn empty_dataset_is_valid() {
        let ds = mnist_like(0, 0);
        assert!(ds.is_empty());
    }

    #[test]
    fn segment_distance_basics() {
        // Point on the segment.
        assert_eq!(dist_sq_to_segment((0.5, 0.0), (0.0, 0.0), (1.0, 0.0)), 0.0);
        // Perpendicular distance.
        let d = dist_sq_to_segment((0.5, 0.3), (0.0, 0.0), (1.0, 0.0));
        assert!((d - 0.09).abs() < 1e-6);
        // Beyond endpoint clamps.
        let d = dist_sq_to_segment((2.0, 0.0), (0.0, 0.0), (1.0, 0.0));
        assert!((d - 1.0).abs() < 1e-6);
        // Degenerate (point) segment.
        let d = dist_sq_to_segment((1.0, 1.0), (0.0, 0.0), (0.0, 0.0));
        assert!((d - 2.0).abs() < 1e-6);
    }
}
