//! Property-based tests for dataset invariants: splits partition, subsets
//! preserve image/label pairing, generators stay in the unit box and are
//! seed-deterministic, and the real-format parsers round-trip synthetic
//! files of random geometry.

use adv_data::loaders::{parse_cifar_batch, parse_idx_images, parse_idx_labels};
use adv_data::synth::{cifar_like, mnist_like};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_partitions_and_preserves_pairs(n in 4usize..40, frac in 0.2f32..0.8, seed in 0u64..50) {
        let ds = mnist_like(n, seed);
        let (a, b) = ds.split(frac, seed ^ 1).unwrap();
        prop_assert_eq!(a.len() + b.len(), n);
        // Every (image, label) pair in the split exists in the original.
        for part in [&a, &b] {
            for i in 0..part.len() {
                let img = part.image(i).unwrap();
                let found = (0..ds.len()).any(|j| {
                    ds.labels()[j] == part.labels()[i]
                        && ds.image(j).unwrap().as_slice() == img.as_slice()
                });
                prop_assert!(found, "split row {i} not found in original");
            }
        }
    }

    #[test]
    fn subset_of_subset_composes(n in 6usize..30, seed in 0u64..50) {
        let ds = cifar_like(n, seed);
        let idx1: Vec<usize> = (0..n).step_by(2).collect();
        let sub1 = ds.subset(&idx1).unwrap();
        let idx2: Vec<usize> = (0..sub1.len()).rev().collect();
        let sub2 = sub1.subset(&idx2).unwrap();
        let direct: Vec<usize> = idx2.iter().map(|&i| idx1[i]).collect();
        prop_assert_eq!(sub2, ds.subset(&direct).unwrap());
    }

    #[test]
    fn generators_unit_box_and_deterministic(n in 1usize..12, seed in 0u64..100) {
        for ds in [mnist_like(n, seed), cifar_like(n, seed)] {
            prop_assert!(ds.images().min() >= 0.0);
            prop_assert!(ds.images().max() <= 1.0);
        }
        prop_assert_eq!(mnist_like(n, seed), mnist_like(n, seed));
        prop_assert_eq!(cifar_like(n, seed), cifar_like(n, seed));
    }

    #[test]
    fn idx_roundtrip_random_geometry(n in 1usize..5, h in 1usize..10, w in 1usize..10) {
        let mut file = Vec::new();
        file.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        file.extend_from_slice(&(n as u32).to_be_bytes());
        file.extend_from_slice(&(h as u32).to_be_bytes());
        file.extend_from_slice(&(w as u32).to_be_bytes());
        file.extend((0..n * h * w).map(|i| (i * 7 % 256) as u8));
        let t = parse_idx_images(&file).unwrap();
        prop_assert_eq!(t.shape().dims(), &[n, 1, h, w]);
        // Spot-check the scaling of the last byte.
        let last = ((n * h * w - 1) * 7 % 256) as f32 / 255.0;
        prop_assert!((t.as_slice()[n * h * w - 1] - last).abs() < 1e-6);
    }

    #[test]
    fn idx_labels_roundtrip(labels in proptest::collection::vec(0u8..10, 1..30)) {
        let mut file = Vec::new();
        file.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        file.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        file.extend_from_slice(&labels);
        let parsed = parse_idx_labels(&file).unwrap();
        prop_assert_eq!(parsed, labels.iter().map(|&b| b as usize).collect::<Vec<_>>());
    }

    #[test]
    fn cifar_batch_roundtrip(labels in proptest::collection::vec(0u8..10, 1..4)) {
        let mut data = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            data.push(l);
            data.extend((0..3072).map(|j| ((i * 31 + j) % 256) as u8));
        }
        let (images, parsed) = parse_cifar_batch(&data).unwrap();
        prop_assert_eq!(images.shape().dims(), &[labels.len(), 3, 32, 32]);
        prop_assert_eq!(parsed, labels.iter().map(|&b| b as usize).collect::<Vec<_>>());
    }
}
