//! Detector threshold calibration.
//!
//! MagNet picks each detector's threshold so that a fixed budget of *clean*
//! validation data is (wrongly) flagged — the false-positive rate. The
//! original uses an aggregate ~1% FPR split across detectors on MNIST and a
//! slightly larger budget on CIFAR-10; the per-detector FPR is a parameter
//! here.

use crate::{MagnetError, Result};
use adv_tensor::stats::quantile;

/// Returns the score threshold whose exceedance rate on `clean_scores` is
/// `fpr` (i.e. the `1 − fpr` quantile).
///
/// # Errors
///
/// Returns [`MagnetError::InvalidArgument`] when `clean_scores` is empty or
/// `fpr` lies outside `(0, 1)`.
pub fn threshold_for_fpr(clean_scores: &[f32], fpr: f32) -> Result<f32> {
    if clean_scores.is_empty() {
        return Err(MagnetError::InvalidArgument(
            "cannot calibrate on an empty validation set".into(),
        ));
    }
    if !(0.0..1.0).contains(&fpr) || fpr == 0.0 {
        return Err(MagnetError::InvalidArgument(format!(
            "fpr {fpr} outside (0, 1)"
        )));
    }
    quantile(clean_scores, 1.0 - fpr)
        .ok_or_else(|| MagnetError::InvalidArgument("quantile computation failed".into()))
}

/// Observed false-positive rate of `threshold` on clean scores (fraction
/// strictly above).
pub fn observed_fpr(clean_scores: &[f32], threshold: f32) -> f32 {
    adv_tensor::stats::fraction_above(clean_scores, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_hits_requested_fpr() {
        let scores: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        let t = threshold_for_fpr(&scores, 0.1).unwrap();
        let fpr = observed_fpr(&scores, t);
        assert!((fpr - 0.1).abs() < 0.02, "observed fpr {fpr}");
    }

    #[test]
    fn smaller_fpr_means_larger_threshold() {
        let scores: Vec<f32> = (0..500).map(|i| (i as f32).sin().abs()).collect();
        let strict = threshold_for_fpr(&scores, 0.01).unwrap();
        let loose = threshold_for_fpr(&scores, 0.2).unwrap();
        assert!(strict >= loose);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(threshold_for_fpr(&[], 0.1).is_err());
        assert!(threshold_for_fpr(&[1.0], 0.0).is_err());
        assert!(threshold_for_fpr(&[1.0], 1.0).is_err());
        assert!(threshold_for_fpr(&[1.0], -0.5).is_err());
    }

    #[test]
    fn constant_scores_flag_nothing() {
        let scores = vec![0.5f32; 100];
        let t = threshold_for_fpr(&scores, 0.05).unwrap();
        assert_eq!(observed_fpr(&scores, t), 0.0);
    }
}
