use crate::Result;
use adv_nn::loss::ReconstructionLoss;
use adv_nn::optim::Adam;
use adv_nn::train::{fit_autoencoder_with, Corruption, TrainConfig};
use adv_nn::{LayerSpec, Sequential};
use adv_tensor::Tensor;

/// A defensive auto-encoder: the building block of both MagNet stages.
///
/// Wraps a [`Sequential`] network together with the reconstruction loss it
/// was (or will be) trained with. MagNet trains auto-encoders on
/// noise-corrupted inputs against clean targets, so the learned map
/// contracts toward the data manifold — reconstruction error then measures
/// manifold distance (detector), and the output itself is the projection
/// (reformer).
#[derive(Debug, Clone)]
pub struct Autoencoder {
    net: Sequential,
    loss: ReconstructionLoss,
    corruption: Corruption,
}

impl Autoencoder {
    /// Builds an untrained auto-encoder from an architecture.
    ///
    /// `noise_std` is the standard deviation of the Gaussian input
    /// corruption used during training (MagNet uses 0.1 on MNIST).
    ///
    /// # Errors
    ///
    /// Returns construction errors from the layer specs.
    pub fn new(
        specs: &[LayerSpec],
        loss: ReconstructionLoss,
        noise_std: f32,
        seed: u64,
    ) -> Result<Self> {
        Ok(Autoencoder {
            net: Sequential::from_specs(specs, seed)?,
            loss,
            corruption: if noise_std > 0.0 {
                Corruption::Gaussian(noise_std)
            } else {
                Corruption::None
            },
        })
    }

    /// Overrides the training-input corruption model (see [`Corruption`]).
    pub fn set_corruption(&mut self, corruption: Corruption) {
        self.corruption = corruption;
    }

    /// The corruption model used during training.
    pub fn corruption(&self) -> Corruption {
        self.corruption
    }

    /// Wraps an already-trained network (e.g. loaded from disk).
    pub fn from_network(net: Sequential, loss: ReconstructionLoss, noise_std: f32) -> Self {
        Autoencoder {
            net,
            loss,
            corruption: if noise_std > 0.0 {
                Corruption::Gaussian(noise_std)
            } else {
                Corruption::None
            },
        }
    }

    /// The wrapped network.
    pub fn network(&self) -> &Sequential {
        &self.net
    }

    /// Mutable access to the wrapped network (needed to run backward passes
    /// through the auto-encoder in gray-box attacks).
    pub fn network_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// The reconstruction loss this auto-encoder trains with.
    pub fn loss(&self) -> ReconstructionLoss {
        self.loss
    }

    /// Trains on `images` (NCHW, `[0,1]`) for the given epochs.
    ///
    /// # Errors
    ///
    /// Propagates training errors (shape mismatches, degenerate configs).
    pub fn train(
        &mut self,
        images: &Tensor,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> Result<f32> {
        self.train_checkpointed(images, epochs, batch_size, lr, seed, None)
    }

    /// [`Autoencoder::train`] with optional crash-safe checkpointing: when
    /// `checkpoint` is set, training saves epoch-granular state there and a
    /// rerun after a kill resumes bit-identically instead of restarting.
    ///
    /// # Errors
    ///
    /// Propagates training errors (shape mismatches, degenerate configs).
    pub fn train_checkpointed(
        &mut self,
        images: &Tensor,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
        checkpoint: Option<adv_nn::CheckpointCfg>,
    ) -> Result<f32> {
        let mut opt = Adam::with_defaults(lr);
        let cfg = TrainConfig {
            epochs,
            batch_size,
            seed,
            label_smoothing: 0.0,
            verbose: false,
            checkpoint,
        };
        let history = fit_autoencoder_with(
            &mut self.net,
            &mut opt,
            images,
            self.loss,
            self.corruption,
            &cfg,
        )?;
        Ok(history.last().map(|s| s.loss).unwrap_or(f32::NAN))
    }

    /// Reconstructs a batch: `AE(x)`.
    ///
    /// Runs through the cache-free inference path, so concurrent callers can
    /// share one auto-encoder behind an `Arc`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` does not match the architecture.
    pub fn reconstruct(&self, x: &Tensor) -> Result<Tensor> {
        Ok(self.net.infer(x)?)
    }

    /// Per-item Lᵖ reconstruction error of a batch (`p` = 1 or 2).
    ///
    /// # Errors
    ///
    /// Returns shape errors from the forward pass.
    pub fn reconstruction_errors(&self, x: &Tensor, p: u8) -> Result<Vec<f32>> {
        let recon = self.reconstruct(x)?;
        Ok(Self::errors_against(x, &recon, p))
    }

    /// Per-item Lᵖ error between a batch and an already-computed
    /// reconstruction of it (`p` = 1 or 2).
    ///
    /// Lets a fused pipeline reuse one `AE(x)` pass across several detectors
    /// without re-running the network; `reconstruction_errors` is exactly
    /// `errors_against(x, &self.reconstruct(x)?, p)`.
    pub fn errors_against(x: &Tensor, recon: &Tensor, p: u8) -> Vec<f32> {
        let n = x.shape().dim(0);
        let item = x.shape().volume() / n.max(1);
        let xs = x.as_slice();
        let rs = recon.as_slice();
        let mut out = Vec::with_capacity(n);
        let _prof =
            adv_profile::KernelScope::enter(adv_profile::KernelKind::DetectorDistance, || {
                adv_profile::Work::custom(x.len() as u64, 3 * x.len() as u64, 8 * x.len() as u64)
            });
        for i in 0..n {
            let a = &xs[i * item..(i + 1) * item];
            let b = &rs[i * item..(i + 1) * item];
            let err = match p {
                1 => a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum::<f32>(),
                _ => a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt(),
            };
            // lint-ok(no-alloc-in-kernel): pre-sized with_capacity(n) above — push never reallocates
            out.push(err);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_ae_two;
    use adv_tensor::Shape;

    fn toy_images(n: usize) -> Tensor {
        // Smooth blobs — easy for a tiny AE to learn.
        Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| {
            let p = i % 64;
            let (y, x) = (p / 8, p % 8);
            let d = ((y as f32 - 4.0).powi(2) + (x as f32 - 4.0).powi(2)).sqrt();
            (1.0 - d / 6.0).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.05,
            1,
        )
        .unwrap();
        let images = toy_images(32);
        let before: f32 = ae.reconstruction_errors(&images, 2).unwrap().iter().sum();
        ae.train(&images, 20, 8, 0.01, 2).unwrap();
        let after: f32 = ae.reconstruction_errors(&images, 2).unwrap().iter().sum();
        assert!(after < before, "recon error {after} not below {before}");
    }

    #[test]
    fn reconstruction_shape_matches_input() {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            3,
        )
        .unwrap();
        let x = toy_images(4);
        let y = ae.reconstruct(&x).unwrap();
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn l1_and_l2_errors_ordered() {
        // ‖v‖₂ ≤ ‖v‖₁ per item.
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            4,
        )
        .unwrap();
        let x = toy_images(3);
        let l1 = ae.reconstruction_errors(&x, 1).unwrap();
        let l2 = ae.reconstruction_errors(&x, 2).unwrap();
        for (a, b) in l1.iter().zip(l2.iter()) {
            assert!(a + 1e-5 >= *b);
        }
    }

    #[test]
    fn clone_preserves_weights() {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanAbsoluteError,
            0.1,
            5,
        )
        .unwrap();
        let copy = ae.clone();
        for (a, b) in ae.network().params().iter().zip(copy.network().params()) {
            assert_eq!(a.value, b.value);
        }
        assert_eq!(copy.loss(), ReconstructionLoss::MeanAbsoluteError);
    }
}
