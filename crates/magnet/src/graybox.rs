//! Gray-box composition: attacking *through* the reformer.
//!
//! The paper's threat model is **oblivious** — the attacker differentiates
//! only the undefended classifier. The contrasting gray-box model of
//! Carlini & Wagner (arXiv:1711.08478), discussed in the paper's §I, assumes
//! the attacker knows an auto-encoder guards the classifier and therefore
//! optimizes against the composition `classifier(AE(x))`.
//!
//! [`ReformedModel`] implements that composition as a
//! [`Differentiable`], so every attack in `adv-attacks` can be pointed at it
//! unchanged — giving the repository both threat models the paper discusses.

use crate::autoencoder::Autoencoder;
use adv_nn::{Differentiable, Mode, NnError, Sequential};
use adv_tensor::Tensor;

/// The gray-box target `F(AE(x))`: forward runs the reformer then the
/// classifier; backward chains both Jacobians back to the input image.
#[derive(Debug, Clone)]
pub struct ReformedModel {
    reformer: Autoencoder,
    classifier: Sequential,
}

impl ReformedModel {
    /// Composes a reformer and a classifier.
    pub fn new(reformer: Autoencoder, classifier: Sequential) -> Self {
        ReformedModel {
            reformer,
            classifier,
        }
    }

    /// The wrapped reformer.
    pub fn reformer(&self) -> &Autoencoder {
        &self.reformer
    }

    /// The wrapped classifier.
    pub fn classifier(&self) -> &Sequential {
        &self.classifier
    }
}

impl Differentiable for ReformedModel {
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let reformed = self.reformer.network_mut().forward(input, Mode::Eval)?;
        self.classifier.forward(&reformed, Mode::Eval)
    }

    fn backward_input(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let d_reformed = self.classifier.backward(grad_output)?;
        self.reformer.network_mut().backward(&d_reformed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{mnist_ae_two, mnist_classifier};
    use adv_nn::loss::ReconstructionLoss;
    use adv_tensor::Shape;

    fn model() -> ReformedModel {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            1,
        )
        .unwrap();
        let clf = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
        ReformedModel::new(ae, clf)
    }

    #[test]
    fn forward_produces_logits() {
        let mut m = model();
        let x = Tensor::zeros(Shape::nchw(2, 1, 8, 8));
        let y = m.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn composed_gradient_matches_finite_differences() {
        let mut m = model();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| {
            ((i as u64).wrapping_mul(2_654_435_761) % 89) as f32 / 89.0
        });
        let y = m.forward(&x).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let dx = m.backward_input(&dy).unwrap();

        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let mut probe = model();
            let fp = probe.forward(&xp).unwrap().sum();
            let fm = probe.forward(&xm).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            let got = dx.as_slice()[i];
            assert!(
                (fd - got).abs() < 0.05 * (1.0 + fd.abs()),
                "dx[{i}]: fd {fd} vs analytic {got}"
            );
        }
    }

    #[test]
    fn attacking_reformed_model_differs_from_plain() {
        // The composed model's gradient direction generally differs from the
        // plain classifier's — the AE Jacobian reshapes it.
        let mut composed = model();
        let mut plain = composed.classifier().clone();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| (i % 9) as f32 / 9.0);
        let y1 = composed.forward(&x).unwrap();
        let g1 = composed
            .backward_input(&Tensor::ones(y1.shape().clone()))
            .unwrap();
        let y2 = Differentiable::forward(&mut plain, &x).unwrap();
        let g2 = plain
            .backward_input(&Tensor::ones(y2.shape().clone()))
            .unwrap();
        assert_ne!(g1.as_slice(), g2.as_slice());
    }
}
