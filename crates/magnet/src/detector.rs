use crate::autoencoder::Autoencoder;
use crate::fused::InferenceCache;
use crate::jsd::jsd_rows;
use crate::threshold::threshold_for_fpr;
use crate::{MagnetError, Result};
use adv_nn::softmax::softmax_rows_with_temperature;
use adv_nn::Sequential;
use adv_tensor::Tensor;
use std::fmt;

/// Feeds per-item anomaly scores into the global `adv-obs` registry under
/// `magnet.detector_score.<name>` (score-ladder buckets). No-op unless
/// metrics are enabled; never alters the scores.
pub(crate) fn record_scores(name: &str, scores: &[f32]) {
    if !adv_obs::metrics_enabled() {
        return;
    }
    let hist = adv_obs::global().histogram_with(
        &format!("magnet.detector_score.{name}"),
        adv_obs::SCORE_BOUNDS,
    );
    for &s in scores {
        hist.record(f64::from(s));
    }
}

/// Which norm a reconstruction-error detector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructionNorm {
    /// `‖x − AE(x)‖₁`.
    L1,
    /// `‖x − AE(x)‖₂`.
    L2,
}

/// An adversarial-input detector: scores a batch, flags items whose score
/// exceeds a calibrated threshold.
///
/// MagNet's detection decision for an input is the OR over all deployed
/// detectors.
///
/// Scoring and flagging take `&self` so a calibrated detector can serve
/// concurrent inference; only calibration mutates state.
pub trait Detector: Send + Sync + fmt::Debug {
    /// Human-readable detector name (appears in reports and errors).
    fn name(&self) -> String;

    /// Per-item anomaly scores for an NCHW batch (higher = more anomalous).
    ///
    /// # Errors
    ///
    /// Returns shape errors when `x` does not match the detector's models.
    fn scores(&self, x: &Tensor) -> Result<Vec<f32>>;

    /// The calibrated threshold, or `None` before calibration.
    fn threshold(&self) -> Option<f32>;

    /// Overrides the threshold directly.
    fn set_threshold(&mut self, threshold: f32);

    /// Calibrates the threshold to a false-positive rate on clean data and
    /// returns it.
    ///
    /// # Errors
    ///
    /// Propagates scoring errors and calibration errors for degenerate
    /// inputs.
    fn calibrate(&mut self, clean: &Tensor, fpr: f32) -> Result<f32> {
        let scores = self.scores(clean)?;
        record_scores(&self.name(), &scores);
        let t = threshold_for_fpr(&scores, fpr)?;
        self.set_threshold(t);
        Ok(t)
    }

    /// Per-item detection flags (`true` = adversarial).
    ///
    /// # Errors
    ///
    /// Returns [`MagnetError::Uncalibrated`] before calibration and
    /// propagates scoring errors.
    fn flags(&self, x: &Tensor) -> Result<Vec<bool>> {
        let threshold = self.threshold().ok_or_else(|| MagnetError::Uncalibrated {
            detector: self.name(),
        })?;
        let scores = self.scores(x)?;
        record_scores(&self.name(), &scores);
        Ok(scores.into_iter().map(|s| s > threshold).collect())
    }

    /// Like [`scores`](Self::scores), but allowed to reuse sub-computations
    /// (auto-encoder reconstructions, classifier logits) from `cache` and to
    /// deposit its own for detectors evaluated later in the same pass.
    ///
    /// Must be bit-identical to `scores`; the default ignores the cache.
    ///
    /// # Errors
    ///
    /// As [`scores`](Self::scores).
    fn scores_fused<'m>(&'m self, x: &Tensor, cache: &mut InferenceCache<'m>) -> Result<Vec<f32>> {
        let _ = cache;
        self.scores(x)
    }

    /// Like [`flags`](Self::flags), but via
    /// [`scores_fused`](Self::scores_fused).
    ///
    /// # Errors
    ///
    /// As [`flags`](Self::flags).
    fn flags_fused<'m>(&'m self, x: &Tensor, cache: &mut InferenceCache<'m>) -> Result<Vec<bool>> {
        let threshold = self.threshold().ok_or_else(|| MagnetError::Uncalibrated {
            detector: self.name(),
        })?;
        let scores = self.scores_fused(x, cache)?;
        record_scores(&self.name(), &scores);
        Ok(scores.into_iter().map(|s| s > threshold).collect())
    }
}

/// MagNet's reconstruction-error detector: `‖x − AE(x)‖ₚ` against a
/// threshold.
#[derive(Debug, Clone)]
pub struct ReconstructionDetector {
    ae: Autoencoder,
    norm: ReconstructionNorm,
    threshold: Option<f32>,
}

impl ReconstructionDetector {
    /// Creates the detector from a trained auto-encoder.
    pub fn new(ae: Autoencoder, norm: ReconstructionNorm) -> Self {
        ReconstructionDetector {
            ae,
            norm,
            threshold: None,
        }
    }

    /// The norm in use.
    pub fn norm(&self) -> ReconstructionNorm {
        self.norm
    }
}

impl Detector for ReconstructionDetector {
    fn name(&self) -> String {
        match self.norm {
            ReconstructionNorm::L1 => "recon-l1".to_string(),
            ReconstructionNorm::L2 => "recon-l2".to_string(),
        }
    }

    fn scores(&self, x: &Tensor) -> Result<Vec<f32>> {
        let p = match self.norm {
            ReconstructionNorm::L1 => 1,
            ReconstructionNorm::L2 => 2,
        };
        self.ae.reconstruction_errors(x, p)
    }

    fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    fn set_threshold(&mut self, threshold: f32) {
        self.threshold = Some(threshold);
    }

    fn scores_fused<'m>(&'m self, x: &Tensor, cache: &mut InferenceCache<'m>) -> Result<Vec<f32>> {
        let p = match self.norm {
            ReconstructionNorm::L1 => 1,
            ReconstructionNorm::L2 => 2,
        };
        let recon = cache.reconstruction(&self.ae, x)?;
        Ok(Autoencoder::errors_against(x, &recon, p))
    }
}

/// MagNet's probability-divergence detector:
/// `JSD(softmax(logits(x)/T) ‖ softmax(logits(AE(x))/T))` against a
/// threshold.
#[derive(Debug, Clone)]
pub struct JsdDetector {
    ae: Autoencoder,
    classifier: Sequential,
    temperature: f32,
    threshold: Option<f32>,
}

impl JsdDetector {
    /// Creates the detector from a trained auto-encoder, a (copy of the)
    /// protected classifier, and a softmax temperature.
    ///
    /// # Errors
    ///
    /// Returns [`MagnetError::InvalidArgument`] for non-positive
    /// temperature.
    pub fn new(ae: Autoencoder, classifier: Sequential, temperature: f32) -> Result<Self> {
        if temperature <= 0.0 {
            return Err(MagnetError::InvalidArgument(format!(
                "temperature {temperature} must be positive"
            )));
        }
        Ok(JsdDetector {
            ae,
            classifier,
            temperature,
            threshold: None,
        })
    }

    /// The softmax temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// JSD between temperature-softened class distributions of the two logit
    /// batches — the post-network math shared by the plain and fused paths.
    fn jsd_from_logits(&self, logits_x: &Tensor, logits_r: &Tensor) -> Result<Vec<f32>> {
        let k = logits_x.shape().dim(1);
        let px = softmax_rows_with_temperature(logits_x, self.temperature)?;
        let pr = softmax_rows_with_temperature(logits_r, self.temperature)?;
        jsd_rows(px.as_slice(), pr.as_slice(), k)
    }
}

impl Detector for JsdDetector {
    fn name(&self) -> String {
        // Two decimals, trailing zeros trimmed ("10", "2.5", "0.6").
        let t = format!("{:.2}", self.temperature);
        let t = t.trim_end_matches('0').trim_end_matches('.');
        format!("jsd-t{t}")
    }

    fn scores(&self, x: &Tensor) -> Result<Vec<f32>> {
        let recon = self.ae.reconstruct(x)?;
        let logits_x = self.classifier.infer(x)?;
        let logits_r = self.classifier.infer(&recon)?;
        self.jsd_from_logits(&logits_x, &logits_r)
    }

    fn threshold(&self) -> Option<f32> {
        self.threshold
    }

    fn set_threshold(&mut self, threshold: f32) {
        self.threshold = Some(threshold);
    }

    fn scores_fused<'m>(&'m self, x: &Tensor, cache: &mut InferenceCache<'m>) -> Result<Vec<f32>> {
        let recon = cache.reconstruction(&self.ae, x)?;
        let logits_x = cache.logits(&self.classifier, x)?;
        let logits_r = cache.logits(&self.classifier, &recon)?;
        self.jsd_from_logits(&logits_x, &logits_r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{mnist_ae_two, mnist_classifier};
    use adv_nn::loss::ReconstructionLoss;
    use adv_tensor::Shape;

    fn toy_ae() -> Autoencoder {
        Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            7,
        )
        .unwrap()
    }

    fn toy_batch(n: usize, scale: f32) -> Tensor {
        Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| {
            ((i % 13) as f32 / 13.0 * scale).clamp(0.0, 1.0)
        })
    }

    #[test]
    fn flags_require_calibration() {
        let mut det = ReconstructionDetector::new(toy_ae(), ReconstructionNorm::L2);
        let x = toy_batch(2, 1.0);
        assert!(matches!(
            det.flags(&x),
            Err(MagnetError::Uncalibrated { .. })
        ));
        det.calibrate(&toy_batch(32, 1.0), 0.1).unwrap();
        assert_eq!(det.flags(&x).unwrap().len(), 2);
    }

    #[test]
    fn calibration_hits_fpr_budget() {
        let mut det = ReconstructionDetector::new(toy_ae(), ReconstructionNorm::L1);
        let clean = toy_batch(200, 1.0);
        det.calibrate(&clean, 0.1).unwrap();
        let flags = det.flags(&clean).unwrap();
        let fpr = flags.iter().filter(|&&f| f).count() as f32 / flags.len() as f32;
        assert!(fpr <= 0.15, "observed fpr {fpr}");
    }

    #[test]
    fn scores_are_nonnegative() {
        let det = ReconstructionDetector::new(toy_ae(), ReconstructionNorm::L2);
        assert!(det
            .scores(&toy_batch(8, 1.0))
            .unwrap()
            .iter()
            .all(|&s| s >= 0.0));
    }

    #[test]
    fn jsd_detector_scores_bounded() {
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let det = JsdDetector::new(toy_ae(), classifier, 10.0).unwrap();
        let scores = det.scores(&toy_batch(6, 1.0)).unwrap();
        assert_eq!(scores.len(), 6);
        assert!(scores
            .iter()
            .all(|&s| (0.0..=std::f32::consts::LN_2 + 1e-5).contains(&s)));
    }

    #[test]
    fn jsd_detector_rejects_bad_temperature() {
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        assert!(JsdDetector::new(toy_ae(), classifier, 0.0).is_err());
    }

    #[test]
    fn detector_names_are_stable() {
        let d1 = ReconstructionDetector::new(toy_ae(), ReconstructionNorm::L1);
        let d2 = ReconstructionDetector::new(toy_ae(), ReconstructionNorm::L2);
        assert_eq!(d1.name(), "recon-l1");
        assert_eq!(d2.name(), "recon-l2");
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let d3 = JsdDetector::new(toy_ae(), classifier, 40.0).unwrap();
        assert_eq!(d3.name(), "jsd-t40");
    }

    #[test]
    fn trained_detector_separates_off_manifold_noise() {
        // Train the AE on smooth blobs, then score uniform noise — the noise
        // must get strictly higher reconstruction error on average.
        let mut ae = toy_ae();
        let blobs = Tensor::from_fn(Shape::nchw(64, 1, 8, 8), |i| {
            let p = i % 64;
            let (y, x) = (p / 8, p % 8);
            let d = ((y as f32 - 3.5).powi(2) + (x as f32 - 3.5).powi(2)).sqrt();
            (1.0 - d / 5.0).clamp(0.0, 1.0)
        });
        ae.train(&blobs, 30, 16, 0.01, 1).unwrap();
        let det = ReconstructionDetector::new(ae, ReconstructionNorm::L2);
        let clean_mean: f32 = det.scores(&blobs).unwrap().iter().sum::<f32>() / 64.0;
        let noise = Tensor::from_fn(Shape::nchw(64, 1, 8, 8), |i| {
            ((i as u64).wrapping_mul(2_654_435_761) % 101) as f32 / 101.0
        });
        let noise_mean: f32 = det.scores(&noise).unwrap().iter().sum::<f32>() / 64.0;
        assert!(
            noise_mean > clean_mean,
            "noise {noise_mean} vs clean {clean_mean}"
        );
    }
}
