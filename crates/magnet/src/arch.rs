//! Auto-encoder architectures from the MagNet paper.
//!
//! The original MagNet uses tiny convolutional auto-encoders, sigmoid
//! throughout:
//!
//! - **MNIST, AE-I ("Detector I & Reformer", paper Table II left):**
//!   `conv 3×3×f → avgpool 2×2 → conv 3×3×f → conv 3×3×f → upsample 2×2 →
//!   conv 3×3×f → conv 3×3×1`, all sigmoid.
//! - **MNIST, AE-II ("Detector II", Table II right):**
//!   `conv 3×3×f → conv 3×3×f → conv 3×3×1`, all sigmoid.
//! - **CIFAR-10 (Table V):** `conv 3×3×f → conv 3×3×f → conv 3×3×c`,
//!   all sigmoid.
//!
//! The default MagNet uses `f = 3` filters; the paper's "robust" variants
//! raise this to `f = 256`. The filter count is a parameter here so that the
//! scaled-down reproduction can use a smaller "robust" width (documented in
//! DESIGN.md) while exercising the identical code path.

use adv_nn::{Activation, LayerSpec};
use adv_tensor::ops::Conv2dSpec;

fn conv_sigmoid(in_c: usize, out_c: usize) -> [LayerSpec; 2] {
    [
        LayerSpec::Conv2d(Conv2dSpec::same(in_c, out_c, 3)),
        LayerSpec::Activation(Activation::Sigmoid),
    ]
}

/// MagNet's MNIST AE-I (reformer + detector I): encoder with one 2×
/// down/upsample stage.
///
/// `channels` is the image channel count (1 for MNIST), `filters` the width
/// of the hidden convolutions (3 default, 256 in the paper's robust
/// variant).
pub fn mnist_ae_one(channels: usize, filters: usize) -> Vec<LayerSpec> {
    let mut specs = Vec::new();
    specs.extend(conv_sigmoid(channels, filters));
    specs.push(LayerSpec::AvgPool2d { k: 2 });
    specs.extend(conv_sigmoid(filters, filters));
    specs.extend(conv_sigmoid(filters, filters));
    specs.push(LayerSpec::Upsample2d { factor: 2 });
    specs.extend(conv_sigmoid(filters, filters));
    specs.extend(conv_sigmoid(filters, channels));
    specs
}

/// MagNet's MNIST AE-II (detector II): three same-size convolutions, no
/// spatial bottleneck.
pub fn mnist_ae_two(channels: usize, filters: usize) -> Vec<LayerSpec> {
    let mut specs = Vec::new();
    specs.extend(conv_sigmoid(channels, filters));
    specs.extend(conv_sigmoid(filters, filters));
    specs.extend(conv_sigmoid(filters, channels));
    specs
}

/// MagNet's CIFAR-10 auto-encoder (detectors + reformer): three same-size
/// convolutions over 3-channel images.
pub fn cifar_ae(channels: usize, filters: usize) -> Vec<LayerSpec> {
    mnist_ae_two(channels, filters)
}

/// The victim classifier family used by MagNet for MNIST:
/// `[conv, conv, maxpool] × 2 → dense → dense`, ReLU throughout (the paper's
/// Keras model, scaled by `c1`/`c2`/`hidden`).
///
/// `side` is the input spatial size (28 for MNIST).
pub fn mnist_classifier(
    side: usize,
    channels: usize,
    c1: usize,
    c2: usize,
    hidden: usize,
    classes: usize,
) -> Vec<LayerSpec> {
    let pooled = side / 2 / 2;
    vec![
        LayerSpec::Conv2d(Conv2dSpec::same(channels, c1, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Conv2d(Conv2dSpec::same(c1, c2, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Flatten,
        LayerSpec::Dense {
            inputs: c2 * pooled * pooled,
            outputs: hidden,
        },
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::Dense {
            inputs: hidden,
            outputs: classes,
        },
    ]
}

/// The victim classifier family for CIFAR-like data: same topology as
/// [`mnist_classifier`] but parameterized independently for clarity at call
/// sites.
pub fn cifar_classifier(
    side: usize,
    channels: usize,
    c1: usize,
    c2: usize,
    hidden: usize,
    classes: usize,
) -> Vec<LayerSpec> {
    mnist_classifier(side, channels, c1, c2, hidden, classes)
}

/// Renders an architecture as the rows of the paper's Table II / Table V
/// (one human-readable line per layer).
pub fn describe(specs: &[LayerSpec]) -> Vec<String> {
    specs
        .iter()
        .map(|s| match s {
            LayerSpec::Conv2d(c) => format!("Conv {}x{}x{}", c.kh, c.kw, c.out_channels),
            LayerSpec::Activation(a) => format!(".{}", a.name()),
            LayerSpec::MaxPool2d { k } => format!("MaxPooling {k}x{k}"),
            LayerSpec::AvgPool2d { k } => format!("AveragePooling {k}x{k}"),
            LayerSpec::Upsample2d { factor } => format!("Upsampling {factor}x{factor}"),
            LayerSpec::Flatten => "Flatten".to_string(),
            LayerSpec::Reshape { item_shape } => format!("Reshape {item_shape:?}"),
            LayerSpec::Dense { inputs, outputs } => format!("Dense {inputs}->{outputs}"),
            LayerSpec::Dropout { p } => format!("Dropout {p}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_nn::{Mode, Sequential};
    use adv_tensor::{Shape, Tensor};

    #[test]
    fn mnist_ae_one_preserves_shape() {
        let mut net = Sequential::from_specs(&mnist_ae_one(1, 3), 0).unwrap();
        let x = Tensor::zeros(Shape::nchw(2, 1, 28, 28));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn mnist_ae_two_preserves_shape() {
        let mut net = Sequential::from_specs(&mnist_ae_two(1, 3), 0).unwrap();
        let x = Tensor::zeros(Shape::nchw(1, 1, 28, 28));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn cifar_ae_preserves_shape() {
        let mut net = Sequential::from_specs(&cifar_ae(3, 3), 0).unwrap();
        let x = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn ae_output_is_in_unit_box() {
        // Final sigmoid guarantees reconstructions live in the image box.
        let mut net = Sequential::from_specs(&mnist_ae_two(1, 3), 1).unwrap();
        let x = Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| (i % 2) as f32 * 5.0 - 2.0);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert!(y.min() >= 0.0 && y.max() <= 1.0);
    }

    #[test]
    fn classifier_output_is_logit_rows() {
        let mut net = Sequential::from_specs(&mnist_classifier(28, 1, 4, 8, 16, 10), 0).unwrap();
        let x = Tensor::zeros(Shape::nchw(3, 1, 28, 28));
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape().dims(), &[3, 10]);
    }

    #[test]
    fn robust_variant_is_wider() {
        let thin = Sequential::from_specs(&mnist_ae_two(1, 3), 0).unwrap();
        let wide = Sequential::from_specs(&mnist_ae_two(1, 16), 0).unwrap();
        assert!(wide.num_parameters() > thin.num_parameters() * 5);
    }

    #[test]
    fn describe_matches_paper_table_rows() {
        let rows = describe(&cifar_ae(3, 256));
        assert_eq!(rows[0], "Conv 3x3x256");
        assert_eq!(rows[1], ".sigmoid");
        assert_eq!(rows[4], "Conv 3x3x3");
    }
}
