//! Fused defense inference: per-call memoisation of sub-computations.
//!
//! MagNet's assembled pipelines are internally redundant: the reformer is
//! usually the *same* auto-encoder as one of the reconstruction detectors,
//! and every JSD detector re-runs both that auto-encoder and the protected
//! classifier. Evaluated naively, a Full-scheme pass over a D+JSD MNIST
//! defense runs the shared auto-encoder four times and the classifier five
//! times per batch.
//!
//! [`InferenceCache`] removes that redundancy without changing a single
//! output bit. It memoises `(model, input) → output` pairs for the duration
//! of one defense pass, keyed by **exact** equality: a cached result is
//! reused only when the model computes the same function (identical layer
//! specs and bit-identical parameters, see
//! [`Sequential::same_function`](adv_nn::Sequential::same_function)) *and*
//! the input tensor compares bit-for-bit equal. Since inference is
//! deterministic, a hit returns exactly the tensor the model would have
//! produced — so the fused path is a drop-in replacement for the serial
//! one, which the equivalence tests assert verdict-by-verdict.
//!
//! The cache is deliberately scoped to a single call (it borrows the
//! models, holds clones of inputs/outputs, and is dropped at the end), so
//! there is no invalidation problem: recalibrating or retraining between
//! calls can never serve stale tensors.

use crate::autoencoder::Autoencoder;
use crate::Result;
use adv_nn::Sequential;
use adv_tensor::Tensor;

/// Memoises auto-encoder reconstructions and classifier logits within one
/// fused defense pass.
///
/// Entries are stored in small vectors and matched linearly: a defense
/// deploys a handful of models and each pass touches a handful of distinct
/// inputs, so the scan is a few tensor compares — noise next to a conv
/// forward pass. Model identity uses pointer equality as a fast path before
/// falling back to the exact functional comparison.
#[derive(Debug, Default)]
pub struct InferenceCache<'m> {
    recons: Vec<(&'m Autoencoder, Tensor, Tensor)>,
    logits: Vec<(&'m Sequential, Tensor, Tensor)>,
    hits: usize,
    misses: usize,
}

/// `true` when the two auto-encoders reconstruct identically: same wrapped
/// network function. Loss and corruption settings only affect training, not
/// [`Autoencoder::reconstruct`], so they are ignored.
fn same_reconstruction(a: &Autoencoder, b: &Autoencoder) -> bool {
    std::ptr::eq(a, b) || a.network().same_function(b.network())
}

fn same_classifier(a: &Sequential, b: &Sequential) -> bool {
    std::ptr::eq(a, b) || a.same_function(b)
}

impl<'m> InferenceCache<'m> {
    /// An empty cache for one defense pass.
    pub fn new() -> Self {
        InferenceCache::default()
    }

    /// `AE(x)`, computed at most once per distinct `(auto-encoder, x)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the auto-encoder on a miss.
    pub fn reconstruction(&mut self, ae: &'m Autoencoder, x: &Tensor) -> Result<Tensor> {
        if let Some((_, _, out)) = self
            .recons
            .iter()
            .find(|(m, input, _)| input == x && same_reconstruction(m, ae))
        {
            self.hits += 1;
            return Ok(out.clone());
        }
        let out = ae.reconstruct(x)?;
        self.misses += 1;
        self.recons.push((ae, x.clone(), out.clone()));
        Ok(out)
    }

    /// `classifier(x)` logits, computed at most once per distinct
    /// `(classifier, x)`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the classifier on a miss.
    pub fn logits(&mut self, net: &'m Sequential, x: &Tensor) -> Result<Tensor> {
        if let Some((_, _, out)) = self
            .logits
            .iter()
            .find(|(m, input, _)| input == x && same_classifier(m, net))
        {
            self.hits += 1;
            return Ok(out.clone());
        }
        let out = net.infer(x)?;
        self.misses += 1;
        self.logits.push((net, x.clone(), out.clone()));
        Ok(out)
    }

    /// Number of sub-computations answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of sub-computations that actually ran a network.
    pub fn misses(&self) -> usize {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{mnist_ae_two, mnist_classifier};
    use adv_nn::loss::ReconstructionLoss;
    use adv_tensor::Shape;

    fn toy_ae(seed: u64) -> Autoencoder {
        Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            seed,
        )
        .unwrap()
    }

    fn toy_batch(n: usize, offset: usize) -> Tensor {
        Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| {
            ((i + offset) % 17) as f32 / 17.0
        })
    }

    #[test]
    fn reconstruction_hits_on_same_model_and_input() {
        let ae = toy_ae(1);
        let x = toy_batch(2, 0);
        let mut cache = InferenceCache::new();
        let a = cache.reconstruction(&ae, &x).unwrap();
        let b = cache.reconstruction(&ae, &x).unwrap();
        assert_eq!(a, b);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn reconstruction_hits_across_clones_of_the_same_model() {
        // The defense assembly clones one AE into detector and reformer
        // roles; the cache must see through the clone.
        let ae = toy_ae(1);
        let twin = ae.clone();
        let x = toy_batch(2, 0);
        let mut cache = InferenceCache::new();
        let a = cache.reconstruction(&ae, &x).unwrap();
        let b = cache.reconstruction(&twin, &x).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(a, twin.reconstruct(&x).unwrap());
    }

    #[test]
    fn reconstruction_misses_on_different_weights_or_input() {
        let ae = toy_ae(1);
        let other = toy_ae(2);
        let x = toy_batch(2, 0);
        let mut cache = InferenceCache::new();
        cache.reconstruction(&ae, &x).unwrap();
        cache.reconstruction(&other, &x).unwrap();
        cache.reconstruction(&ae, &toy_batch(2, 5)).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
    }

    #[test]
    fn logits_hit_only_on_functionally_equal_classifiers() {
        let clf = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let twin = clf.clone();
        let other = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 4).unwrap();
        let x = toy_batch(3, 0);
        let mut cache = InferenceCache::new();
        let a = cache.logits(&clf, &x).unwrap();
        let b = cache.logits(&twin, &x).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        cache.logits(&other, &x).unwrap();
        assert_eq!(cache.misses(), 2);
    }
}
