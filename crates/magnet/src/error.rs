use adv_nn::NnError;
use adv_tensor::TensorError;
use std::fmt;

/// Errors produced by the MagNet defense components.
#[derive(Debug)]
pub enum MagnetError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A detector was used before threshold calibration.
    Uncalibrated {
        /// Name of the uncalibrated detector.
        detector: String,
    },
    /// An invalid configuration (e.g. FPR outside `(0, 1)`).
    InvalidArgument(String),
    /// A named pipeline stage failed while executing a batch (used by
    /// pipeline wrappers, e.g. deterministic fault injection in `adv-chaos`).
    Stage {
        /// The stage (injection site) that failed, e.g. `magnet/reform`.
        stage: String,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for MagnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagnetError::Nn(e) => write!(f, "network error: {e}"),
            MagnetError::Tensor(e) => write!(f, "tensor error: {e}"),
            MagnetError::Uncalibrated { detector } => {
                write!(f, "detector {detector} used before calibration")
            }
            MagnetError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MagnetError::Stage { stage, message } => {
                write!(f, "pipeline stage {stage} failed: {message}")
            }
        }
    }
}

impl std::error::Error for MagnetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MagnetError::Nn(e) => Some(e),
            MagnetError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for MagnetError {
    fn from(e: NnError) -> Self {
        MagnetError::Nn(e)
    }
}

impl From<TensorError> for MagnetError {
    fn from(e: TensorError) -> Self {
        MagnetError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MagnetError>();
    }

    #[test]
    fn display_uncalibrated() {
        let e = MagnetError::Uncalibrated {
            detector: "recon-l2".into(),
        };
        assert!(e.to_string().contains("recon-l2"));
    }
}
