//! Builders for the defense variants the paper evaluates.
//!
//! MNIST (paper §III-B1/B2):
//! - **Default (D):** two reconstruction-error detectors — L2 on AE-I and
//!   L1 on AE-II — plus the AE-I reformer.
//! - **D+JSD:** adds two JSD detectors (T = 10 and T = 40) on AE-I.
//! - **D+256 / D+256+JSD:** the same, with the auto-encoder filter count
//!   raised (256 in the paper; configurable here).
//!
//! CIFAR-10 (paper §III-B3/B4):
//! - **Default (D):** L1 + L2 reconstruction detectors *and* the two JSD
//!   detectors on a single AE, plus that AE as reformer.
//! - **D+256:** same with wider auto-encoders.
//!
//! Figures 12–13 additionally swap the AE training loss from MSE to MAE —
//! expressed here through [`TrainSpec::loss`].

use crate::arch::{cifar_ae, mnist_ae_one, mnist_ae_two};
use crate::autoencoder::Autoencoder;
use crate::defense::MagnetDefense;
use crate::detector::{Detector, JsdDetector, ReconstructionDetector, ReconstructionNorm};
use crate::Result;
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_tensor::Tensor;

/// Hyperparameters for training defensive auto-encoders.
#[derive(Debug, Clone, Copy)]
pub struct TrainSpec {
    /// Hidden convolution width (3 default; the paper's robust variants use
    /// 256 — scale it to your compute budget).
    pub filters: usize,
    /// Reconstruction loss (MSE default, MAE for the Figures 12–13 ablation).
    pub loss: ReconstructionLoss,
    /// Gaussian input-corruption σ during AE training (MagNet uses 0.1).
    pub noise_std: f32,
    /// σ of an additional smooth low-frequency corruption field (0 = none).
    /// Teaches the auto-encoder to remove spread-out, C&W-like deviations;
    /// see [`adv_nn::train::Corruption`].
    pub smooth_noise_std: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for weights and shuffling.
    pub seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        TrainSpec {
            filters: 3,
            loss: ReconstructionLoss::MeanSquaredError,
            noise_std: 0.1,
            smooth_noise_std: 0.0,
            epochs: 10,
            batch_size: 64,
            lr: 0.003,
            seed: 17,
        }
    }
}

fn apply_corruption(ae: &mut Autoencoder, spec: &TrainSpec) {
    if spec.smooth_noise_std > 0.0 {
        ae.set_corruption(adv_nn::train::Corruption::GaussianPlusSmooth {
            gaussian: spec.noise_std,
            smooth: spec.smooth_noise_std,
        });
    }
}

/// The two trained auto-encoders MagNet uses on MNIST.
#[derive(Debug, Clone)]
pub struct MnistAutoencoders {
    /// AE-I: detector I and the reformer (has a 2× bottleneck stage).
    pub ae_one: Autoencoder,
    /// AE-II: detector II (no spatial bottleneck).
    pub ae_two: Autoencoder,
}

/// Trains MagNet's two MNIST auto-encoders on clean training images.
///
/// # Errors
///
/// Propagates construction and training errors.
pub fn train_mnist_autoencoders(
    channels: usize,
    spec: &TrainSpec,
    train_images: &Tensor,
) -> Result<MnistAutoencoders> {
    train_mnist_autoencoders_checkpointed(channels, spec, train_images, None)
}

/// [`train_mnist_autoencoders`] with crash-safe checkpointing: when
/// `checkpoint_dir` is set, each auto-encoder saves epoch-granular training
/// state under it (`mnist_ae1.ckpt` / `mnist_ae2.ckpt`) and a rerun after a
/// kill resumes bit-identically instead of retraining from scratch.
///
/// # Errors
///
/// Propagates construction and training errors.
pub fn train_mnist_autoencoders_checkpointed(
    channels: usize,
    spec: &TrainSpec,
    train_images: &Tensor,
    checkpoint_dir: Option<&std::path::Path>,
) -> Result<MnistAutoencoders> {
    let ckpt =
        |name: &str| checkpoint_dir.map(|d| adv_nn::CheckpointCfg::every_epoch(d.join(name)));
    let mut ae_one = Autoencoder::new(
        &mnist_ae_one(channels, spec.filters),
        spec.loss,
        spec.noise_std,
        spec.seed,
    )?;
    apply_corruption(&mut ae_one, spec);
    ae_one.train_checkpointed(
        train_images,
        spec.epochs,
        spec.batch_size,
        spec.lr,
        spec.seed ^ 0xA11C_E5ED,
        ckpt("mnist_ae1.ckpt"),
    )?;
    let mut ae_two = Autoencoder::new(
        &mnist_ae_two(channels, spec.filters),
        spec.loss,
        spec.noise_std,
        spec.seed.wrapping_add(1),
    )?;
    apply_corruption(&mut ae_two, spec);
    ae_two.train_checkpointed(
        train_images,
        spec.epochs,
        spec.batch_size,
        spec.lr,
        spec.seed ^ 0xB0B5_1ED5,
        ckpt("mnist_ae2.ckpt"),
    )?;
    Ok(MnistAutoencoders { ae_one, ae_two })
}

/// Trains MagNet's single CIFAR auto-encoder.
///
/// # Errors
///
/// Propagates construction and training errors.
pub fn train_cifar_autoencoder(
    channels: usize,
    spec: &TrainSpec,
    train_images: &Tensor,
) -> Result<Autoencoder> {
    train_cifar_autoencoder_checkpointed(channels, spec, train_images, None)
}

/// [`train_cifar_autoencoder`] with crash-safe checkpointing under
/// `checkpoint_dir` (`cifar_ae.ckpt`); see
/// [`train_mnist_autoencoders_checkpointed`].
///
/// # Errors
///
/// Propagates construction and training errors.
pub fn train_cifar_autoencoder_checkpointed(
    channels: usize,
    spec: &TrainSpec,
    train_images: &Tensor,
    checkpoint_dir: Option<&std::path::Path>,
) -> Result<Autoencoder> {
    let mut ae = Autoencoder::new(
        &cifar_ae(channels, spec.filters),
        spec.loss,
        spec.noise_std,
        spec.seed,
    )?;
    apply_corruption(&mut ae, spec);
    ae.train_checkpointed(
        train_images,
        spec.epochs,
        spec.batch_size,
        spec.lr,
        spec.seed ^ 0xC1FA_0AE5,
        checkpoint_dir.map(|d| adv_nn::CheckpointCfg::every_epoch(d.join("cifar_ae.ckpt"))),
    )?;
    Ok(ae)
}

/// Assembles (and calibrates) a MNIST MagNet from trained auto-encoders.
///
/// `jsd_temperatures` is empty for the default variant and `[10, 40]` for
/// the `+JSD` variants. `fpr` is the per-detector false-positive budget on
/// the clean validation set.
///
/// # Errors
///
/// Propagates calibration errors (empty validation set, bad fpr).
pub fn assemble_mnist_defense(
    name: impl Into<String>,
    aes: &MnistAutoencoders,
    classifier: &Sequential,
    jsd_temperatures: &[f32],
    valid_images: &Tensor,
    fpr: f32,
) -> Result<MagnetDefense> {
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            aes.ae_one.clone(),
            ReconstructionNorm::L2,
        )),
        Box::new(ReconstructionDetector::new(
            aes.ae_two.clone(),
            ReconstructionNorm::L1,
        )),
    ];
    for &t in jsd_temperatures {
        detectors.push(Box::new(JsdDetector::new(
            aes.ae_one.clone(),
            classifier.clone(),
            t,
        )?));
    }
    let mut defense = MagnetDefense::new(name, detectors, aes.ae_one.clone(), classifier.clone());
    defense.calibrate_detectors(valid_images, fpr)?;
    Ok(defense)
}

/// Assembles (and calibrates) a CIFAR MagNet from one trained auto-encoder.
///
/// The paper's CIFAR default already includes the JSD detectors, so
/// `jsd_temperatures` defaults to `[10, 40]` at call sites.
///
/// # Errors
///
/// Propagates calibration errors.
pub fn assemble_cifar_defense(
    name: impl Into<String>,
    ae: &Autoencoder,
    classifier: &Sequential,
    jsd_temperatures: &[f32],
    valid_images: &Tensor,
    fpr: f32,
) -> Result<MagnetDefense> {
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(ReconstructionDetector::new(
            ae.clone(),
            ReconstructionNorm::L1,
        )),
        Box::new(ReconstructionDetector::new(
            ae.clone(),
            ReconstructionNorm::L2,
        )),
    ];
    for &t in jsd_temperatures {
        detectors.push(Box::new(JsdDetector::new(
            ae.clone(),
            classifier.clone(),
            t,
        )?));
    }
    let mut defense = MagnetDefense::new(name, detectors, ae.clone(), classifier.clone());
    defense.calibrate_detectors(valid_images, fpr)?;
    Ok(defense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::mnist_classifier;
    use adv_tensor::Shape;

    fn tiny_spec() -> TrainSpec {
        TrainSpec {
            filters: 2,
            epochs: 2,
            batch_size: 16,
            lr: 0.01,
            ..TrainSpec::default()
        }
    }

    fn toy_images(n: usize, c: usize, side: usize) -> Tensor {
        Tensor::from_fn(Shape::nchw(n, c, side, side), |i| {
            ((i * 13) % 17) as f32 / 17.0
        })
    }

    #[test]
    fn mnist_pipeline_assembles_default() {
        let train = toy_images(48, 1, 8);
        let aes = train_mnist_autoencoders(1, &tiny_spec(), &train).unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let defense =
            assemble_mnist_defense("default", &aes, &classifier, &[], &train, 0.05).unwrap();
        assert_eq!(defense.num_detectors(), 2);
        assert_eq!(defense.name(), "default");
    }

    #[test]
    fn mnist_pipeline_assembles_jsd_variant() {
        let train = toy_images(48, 1, 8);
        let aes = train_mnist_autoencoders(1, &tiny_spec(), &train).unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let defense =
            assemble_mnist_defense("D+JSD", &aes, &classifier, &[10.0, 40.0], &train, 0.05)
                .unwrap();
        assert_eq!(defense.num_detectors(), 4);
    }

    #[test]
    fn cifar_pipeline_assembles_with_jsd() {
        let train = toy_images(48, 3, 8);
        let ae = train_cifar_autoencoder(3, &tiny_spec(), &train).unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 3, 2, 4, 8, 10), 3).unwrap();
        let defense =
            assemble_cifar_defense("default", &ae, &classifier, &[10.0, 40.0], &train, 0.05)
                .unwrap();
        assert_eq!(defense.num_detectors(), 4);
    }

    #[test]
    fn assembled_defense_classifies() {
        use crate::defense::DefenseScheme;
        let train = toy_images(48, 1, 8);
        let aes = train_mnist_autoencoders(1, &tiny_spec(), &train).unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 3).unwrap();
        let defense =
            assemble_mnist_defense("default", &aes, &classifier, &[], &train, 0.05).unwrap();
        let verdicts = defense
            .classify(&toy_images(4, 1, 8), DefenseScheme::Full)
            .unwrap();
        assert_eq!(verdicts.len(), 4);
    }

    #[test]
    fn mae_spec_trains() {
        let spec = TrainSpec {
            loss: ReconstructionLoss::MeanAbsoluteError,
            ..tiny_spec()
        };
        let train = toy_images(32, 1, 8);
        let aes = train_mnist_autoencoders(1, &spec, &train).unwrap();
        assert_eq!(aes.ae_one.loss(), ReconstructionLoss::MeanAbsoluteError);
    }
}
