//! The MagNet defense (Meng & Chen, CCS 2017), as evaluated by the paper.
//!
//! MagNet is a two-pronged, classifier-agnostic defense:
//!
//! 1. **Detectors** flag inputs that sit far from the training-data manifold.
//!    Two detector families are implemented, matching the original:
//!    - [`ReconstructionDetector`]: the Lᵖ reconstruction error
//!      `‖x − AE(x)‖ₚ` of a defensive auto-encoder (`p ∈ {1, 2}`),
//!    - [`JsdDetector`]: the Jensen–Shannon divergence between
//!      `softmax(logits(x)/T)` and `softmax(logits(AE(x))/T)` at a
//!      temperature `T` (the paper uses `T = 10` and `T = 40`).
//!
//!    Thresholds are calibrated to a false-positive-rate budget on clean
//!    validation data ([`threshold`]).
//! 2. **Reformer**: inputs that pass the detectors are replaced by their
//!    auto-encoding `AE(x)`, projecting them back toward the data manifold
//!    before classification.
//!
//! [`MagnetDefense`] composes both stages and scores the paper's metric:
//! *classification accuracy* = fraction of inputs either detected or
//! correctly classified after reforming. [`variants`] builds the exact
//! defense configurations the paper evaluates (default, D+JSD, D+256,
//! D+256+JSD, and MAE-trained auto-encoders).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoencoder;
mod defense;
mod detector;
mod error;
mod fused;

pub mod arch;
pub mod graybox;
pub mod jsd;
pub mod threshold;
pub mod variants;

pub use autoencoder::Autoencoder;
pub use defense::{DefensePipeline, DefenseScheme, MagnetDefense, StageTimings, Verdict};
pub use detector::{Detector, JsdDetector, ReconstructionDetector, ReconstructionNorm};
pub use error::MagnetError;
pub use fused::InferenceCache;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MagnetError>;
