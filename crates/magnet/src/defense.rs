use crate::autoencoder::Autoencoder;
use crate::detector::Detector;
use crate::fused::InferenceCache;
use crate::Result;
use adv_nn::Sequential;
use adv_obs::Span;
use adv_profile::StageScope;
use adv_tensor::Tensor;
use std::time::Duration;

/// Records pipeline verdict counters when metrics are enabled. The
/// instrumentation only bumps atomics; verdicts are never altered.
fn record_verdicts(verdicts: &[Verdict]) {
    if !adv_obs::metrics_enabled() {
        return;
    }
    let r = adv_obs::global();
    r.counter("magnet.verdicts").add(verdicts.len() as u64);
    let detected = verdicts
        .iter()
        .filter(|v| matches!(v, Verdict::Detected))
        .count();
    r.counter("magnet.detected").add(detected as u64);
}

/// Which parts of MagNet are active — the four defense schemes compared in
/// the paper's supplementary figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseScheme {
    /// Plain DNN, no defense.
    None,
    /// Detectors only (undetected inputs go to the DNN unreformed).
    DetectorOnly,
    /// Reformer only (every input is auto-encoded before the DNN).
    ReformerOnly,
    /// Detectors, then reformer — full MagNet.
    Full,
}

impl DefenseScheme {
    /// All four schemes, in the order the paper's plots use.
    pub const ALL: [DefenseScheme; 4] = [
        DefenseScheme::None,
        DefenseScheme::DetectorOnly,
        DefenseScheme::ReformerOnly,
        DefenseScheme::Full,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            DefenseScheme::None => "No defense",
            DefenseScheme::DetectorOnly => "With detector",
            DefenseScheme::ReformerOnly => "With reformer",
            DefenseScheme::Full => "With detector & reformer",
        }
    }

    /// The next-cheaper scheme the serving engine degrades to when a stage
    /// keeps failing: drop the reformer first (`Full → DetectorOnly`), then
    /// the detectors (`DetectorOnly → None`, i.e. classifier-only).
    /// [`DefenseScheme::None`] is the floor and maps to itself.
    pub fn fallback(self) -> DefenseScheme {
        match self {
            DefenseScheme::Full => DefenseScheme::DetectorOnly,
            DefenseScheme::DetectorOnly | DefenseScheme::ReformerOnly => DefenseScheme::None,
            DefenseScheme::None => DefenseScheme::None,
        }
    }
}

/// Per-input outcome of the defense pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// A detector flagged the input as adversarial.
    Detected,
    /// The input passed the detectors and was classified (possibly after
    /// reforming) as this class.
    Classified(usize),
}

impl Verdict {
    /// `true` when this verdict defends against an adversarial input with
    /// ground-truth label `truth`: either it was detected, or it was
    /// classified correctly anyway.
    pub fn defends(self, truth: usize) -> bool {
        match self {
            Verdict::Detected => true,
            Verdict::Classified(pred) => pred == truth,
        }
    }
}

/// Wall-clock time spent in each stage of one [`MagnetDefense::classify_timed`]
/// call. Stages skipped by the scheme report [`Duration::ZERO`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Detector scoring (all deployed detectors, OR-combined).
    pub detect: Duration,
    /// Reformer auto-encoder pass.
    pub reform: Duration,
    /// Classifier forward pass (including argmax).
    pub classify: Duration,
}

impl StageTimings {
    /// Total time across the three stages.
    pub fn total(&self) -> Duration {
        self.detect + self.reform + self.classify
    }
}

/// Object-safe view of a batch classification pipeline.
///
/// The serving engine (`adv-serve`) drives whatever implements this trait —
/// normally [`MagnetDefense`] itself, but also wrappers that decorate the
/// pipeline (the chaos crate's `FaultyDefense` injects faults between
/// stages). Implementations must be safe to share across worker threads.
pub trait DefensePipeline: Send + Sync + std::fmt::Debug {
    /// The pipeline's display name.
    fn name(&self) -> &str;

    /// Classifies a stacked batch (`[N, C, H, W]`) under `scheme`, returning
    /// one verdict per input plus per-stage wall-clock timings.
    ///
    /// # Errors
    ///
    /// Propagates detector, reformer, and classifier errors.
    fn classify_batch(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, StageTimings)>;

    /// Like [`classify_batch`](Self::classify_batch), but additionally
    /// returns each deployed detector's per-item anomaly scores (outer index
    /// = detector, in deployment order; empty under schemes that skip the
    /// detectors). Telemetry recording rides on this.
    ///
    /// The default forwards to `classify_batch` with no scores, so wrappers
    /// that only decorate verdicts keep working unchanged.
    ///
    /// # Errors
    ///
    /// As [`classify_batch`](Self::classify_batch).
    fn classify_batch_scored(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, Vec<Vec<f32>>, StageTimings)> {
        let (verdicts, timings) = self.classify_batch(x, scheme)?;
        Ok((verdicts, Vec::new(), timings))
    }
}

impl DefensePipeline for MagnetDefense {
    fn name(&self) -> &str {
        &self.name
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, StageTimings)> {
        // The fused pass is the serving hot path: bit-identical to
        // `classify`, with shared sub-computations memoised per batch.
        self.classify_fused(x, scheme)
    }

    fn classify_batch_scored(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, Vec<Vec<f32>>, StageTimings)> {
        self.classify_fused_scored(x, scheme)
    }
}

/// The assembled MagNet defense: a set of calibrated detectors, a reformer
/// auto-encoder, and the protected classifier.
///
/// The evaluation convention follows the paper: *classification accuracy* on
/// a batch of (possibly adversarial) inputs is the fraction that is either
/// detected or correctly classified after reforming; the *attack success
/// rate* is its complement.
#[derive(Debug)]
pub struct MagnetDefense {
    detectors: Vec<Box<dyn Detector>>,
    reformer: Autoencoder,
    classifier: Sequential,
    name: String,
}

impl MagnetDefense {
    /// Assembles a defense.
    ///
    /// Detectors must already be calibrated (or be calibrated afterwards via
    /// [`calibrate_detectors`](Self::calibrate_detectors)).
    pub fn new(
        name: impl Into<String>,
        detectors: Vec<Box<dyn Detector>>,
        reformer: Autoencoder,
        classifier: Sequential,
    ) -> Self {
        MagnetDefense {
            detectors,
            reformer,
            classifier,
            name: name.into(),
        }
    }

    /// The defense variant's display name (e.g. "default", "D+256+JSD").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of deployed detectors.
    pub fn num_detectors(&self) -> usize {
        self.detectors.len()
    }

    /// Calibrates every detector to `fpr` on clean validation data.
    ///
    /// # Errors
    ///
    /// Propagates detector scoring/calibration errors.
    pub fn calibrate_detectors(&mut self, clean: &Tensor, fpr: f32) -> Result<Vec<f32>> {
        self.detectors
            .iter_mut()
            .map(|d| d.calibrate(clean, fpr))
            .collect()
    }

    /// OR-combined detector flags for a batch.
    ///
    /// # Errors
    ///
    /// Returns an uncalibrated-detector error or scoring errors.
    pub fn detect(&self, x: &Tensor) -> Result<Vec<bool>> {
        let n = x.shape().dim(0);
        let mut combined = vec![false; n];
        for det in &self.detectors {
            for (c, f) in combined.iter_mut().zip(det.flags(x)?) {
                *c |= f;
            }
        }
        Ok(combined)
    }

    /// Per-detector flags for a batch, labelled by detector name — the
    /// breakdown behind [`detect`](Self::detect)'s OR. Useful for attributing
    /// which detector family catches which attack.
    ///
    /// # Errors
    ///
    /// Returns an uncalibrated-detector error or scoring errors.
    pub fn detect_breakdown(&self, x: &Tensor) -> Result<Vec<(String, Vec<bool>)>> {
        self.detectors
            .iter()
            .map(|d| Ok((d.name(), d.flags(x)?)))
            .collect()
    }

    /// Reforms a batch through the reformer auto-encoder.
    ///
    /// # Errors
    ///
    /// Returns shape errors from the auto-encoder.
    pub fn reform(&self, x: &Tensor) -> Result<Tensor> {
        self.reformer.reconstruct(x)
    }

    /// Runs the pipeline under a scheme and returns one verdict per input.
    ///
    /// # Errors
    ///
    /// Propagates detector and classifier errors.
    pub fn classify(&self, x: &Tensor, scheme: DefenseScheme) -> Result<Vec<Verdict>> {
        Ok(self.classify_timed(x, scheme)?.0)
    }

    /// Like [`classify`](Self::classify) but also reports wall-clock time per
    /// pipeline stage — the serving engine's per-request latency breakdown.
    ///
    /// # Errors
    ///
    /// Propagates detector and classifier errors.
    pub fn classify_timed(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, StageTimings)> {
        let n = x.shape().dim(0);
        let mut timings = StageTimings::default();

        // lint-ok(gated-clocks): StageTimings.detect is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t0 = std::time::Instant::now();
        let detected = match scheme {
            DefenseScheme::DetectorOnly | DefenseScheme::Full => {
                let _span = Span::enter("magnet/detect");
                let _stage = StageScope::enter("magnet/detect");
                let d = self.detect(x)?;
                timings.detect = t0.elapsed();
                d
            }
            _ => vec![false; n],
        };

        // lint-ok(gated-clocks): StageTimings.reform is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t1 = std::time::Instant::now();
        let input = match scheme {
            DefenseScheme::ReformerOnly | DefenseScheme::Full => {
                let _span = Span::enter("magnet/reform");
                let _stage = StageScope::enter("magnet/reform");
                let r = self.reform(x)?;
                timings.reform = t1.elapsed();
                r
            }
            _ => x.clone(),
        };

        // lint-ok(gated-clocks): StageTimings.classify is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t2 = std::time::Instant::now();
        let preds = {
            let _span = Span::enter("magnet/classify");
            let _stage = StageScope::enter("magnet/classify");
            self.classifier.predict_shared(&input)?
        };
        timings.classify = t2.elapsed();

        let verdicts: Vec<Verdict> = detected
            .into_iter()
            .zip(preds)
            .map(|(d, p)| {
                if d {
                    Verdict::Detected
                } else {
                    Verdict::Classified(p)
                }
            })
            .collect();
        record_verdicts(&verdicts);
        Ok((verdicts, timings))
    }

    /// Like [`classify_timed`](Self::classify_timed), but runs the pipeline
    /// through an [`InferenceCache`] so sub-computations shared between
    /// detectors, reformer, and classifier execute once per batch instead of
    /// once per consumer.
    ///
    /// The cache only reuses a result when model parameters and input tensor
    /// are bit-identical, so the verdicts (and stage attribution of *which*
    /// work ran) match [`classify`](Self::classify) exactly — this is the
    /// serving engine's hot path, and its speedup over the serial path comes
    /// from MagNet's own redundancy: the paper's assemblies reuse one
    /// auto-encoder as both detector and reformer, and JSD detectors re-run
    /// the protected classifier.
    ///
    /// # Errors
    ///
    /// Propagates detector and classifier errors.
    pub fn classify_fused(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, StageTimings)> {
        let (verdicts, _, timings) = self.classify_fused_scored(x, scheme)?;
        Ok((verdicts, timings))
    }

    /// Like [`classify_fused`](Self::classify_fused), but also returns each
    /// detector's per-item scores (outer index = detector, deployment
    /// order; empty under schemes that skip the detectors). The verdicts
    /// are bit-identical to `classify_fused` — flags are `score >
    /// threshold` on the exact same score vectors the detectors already
    /// compute, so keeping them costs no extra pipeline work.
    ///
    /// # Errors
    ///
    /// Propagates detector and classifier errors.
    pub fn classify_fused_scored(
        &self,
        x: &Tensor,
        scheme: DefenseScheme,
    ) -> Result<(Vec<Verdict>, Vec<Vec<f32>>, StageTimings)> {
        let n = x.shape().dim(0);
        let mut timings = StageTimings::default();
        let mut cache = InferenceCache::new();

        // lint-ok(gated-clocks): StageTimings.detect is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t0 = std::time::Instant::now();
        let mut det_scores: Vec<Vec<f32>> = Vec::new();
        let detected = match scheme {
            DefenseScheme::DetectorOnly | DefenseScheme::Full => {
                let _span = Span::enter("magnet/detect");
                let _stage = StageScope::enter("magnet/detect");
                let mut combined = vec![false; n];
                for det in &self.detectors {
                    // Inline of Detector::flags_fused, keeping the scores:
                    // same threshold lookup, same record_scores call, same
                    // strict `>` comparison.
                    let threshold =
                        det.threshold()
                            .ok_or_else(|| crate::MagnetError::Uncalibrated {
                                detector: det.name(),
                            })?;
                    let scores = det.scores_fused(x, &mut cache)?;
                    crate::detector::record_scores(&det.name(), &scores);
                    for (c, s) in combined.iter_mut().zip(&scores) {
                        *c |= *s > threshold;
                    }
                    det_scores.push(scores);
                }
                timings.detect = t0.elapsed();
                combined
            }
            _ => vec![false; n],
        };

        // lint-ok(gated-clocks): StageTimings.reform is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t1 = std::time::Instant::now();
        let input = match scheme {
            DefenseScheme::ReformerOnly | DefenseScheme::Full => {
                let _span = Span::enter("magnet/reform");
                let _stage = StageScope::enter("magnet/reform");
                let r = cache.reconstruction(&self.reformer, x)?;
                timings.reform = t1.elapsed();
                r
            }
            _ => x.clone(),
        };

        // lint-ok(gated-clocks): StageTimings.classify is part of the
        // classify_timed/classify_fused API; the clock read is the feature.
        let t2 = std::time::Instant::now();
        let preds = {
            let _span = Span::enter("magnet/classify");
            let _stage = StageScope::enter("magnet/classify");
            let logits = cache.logits(&self.classifier, &input)?;
            logits.argmax_rows()?
        };
        timings.classify = t2.elapsed();

        let verdicts: Vec<Verdict> = detected
            .into_iter()
            .zip(preds)
            .map(|(d, p)| {
                if d {
                    Verdict::Detected
                } else {
                    Verdict::Classified(p)
                }
            })
            .collect();
        record_verdicts(&verdicts);
        Ok((verdicts, det_scores, timings))
    }

    /// The paper's *classification accuracy* of the defense on a batch with
    /// ground-truth labels: fraction detected or correctly classified.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors; the label count must match the batch.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize], scheme: DefenseScheme) -> Result<f32> {
        let verdicts = self.classify(x, scheme)?;
        if verdicts.is_empty() {
            return Ok(0.0);
        }
        let defended = verdicts
            .iter()
            .zip(labels)
            .filter(|(v, &t)| v.defends(t))
            .count();
        Ok(defended as f32 / verdicts.len() as f32)
    }

    /// Shared access to the protected classifier (pipeline wrappers run the
    /// final forward pass themselves, e.g. to inject faults between stages).
    pub fn classifier(&self) -> &Sequential {
        &self.classifier
    }

    /// Shared access to the reformer auto-encoder.
    pub fn reformer(&self) -> &Autoencoder {
        &self.reformer
    }

    /// Shared access to the deployed detectors.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// Mutable access to the protected classifier (for gray-box experiments).
    pub fn classifier_mut(&mut self) -> &mut Sequential {
        &mut self.classifier
    }

    /// Mutable access to the reformer (for gray-box experiments).
    pub fn reformer_mut(&mut self) -> &mut Autoencoder {
        &mut self.reformer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{mnist_ae_two, mnist_classifier};
    use crate::detector::{ReconstructionDetector, ReconstructionNorm};
    use adv_nn::loss::ReconstructionLoss;
    use adv_tensor::Shape;

    fn toy_defense() -> MagnetDefense {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            1,
        )
        .unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
        let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
        MagnetDefense::new("toy", vec![Box::new(det)], ae, classifier)
    }

    fn toy_batch(n: usize) -> Tensor {
        Tensor::from_fn(Shape::nchw(n, 1, 8, 8), |i| ((i * 7) % 11) as f32 / 11.0)
    }

    #[test]
    fn verdict_semantics() {
        assert!(Verdict::Detected.defends(3));
        assert!(Verdict::Classified(3).defends(3));
        assert!(!Verdict::Classified(2).defends(3));
    }

    #[test]
    fn scheme_none_never_detects() {
        let d = toy_defense();
        // No calibration needed: scheme None skips detectors entirely.
        let verdicts = d.classify(&toy_batch(4), DefenseScheme::None).unwrap();
        assert!(verdicts.iter().all(|v| matches!(v, Verdict::Classified(_))));
    }

    #[test]
    fn uncalibrated_full_scheme_errors() {
        let d = toy_defense();
        assert!(d.classify(&toy_batch(2), DefenseScheme::Full).is_err());
    }

    #[test]
    fn calibrated_pipeline_runs_all_schemes() {
        let mut d = toy_defense();
        d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
        for scheme in DefenseScheme::ALL {
            let acc = d.accuracy(&toy_batch(8), &[0; 8], scheme).unwrap();
            assert!((0.0..=1.0).contains(&acc), "{scheme:?}: {acc}");
        }
    }

    #[test]
    fn detector_only_flags_off_manifold_input() {
        let mut d = toy_defense();
        d.calibrate_detectors(&toy_batch(64), 0.02).unwrap();
        // Saturated checkerboard is far from anything the random AE maps well;
        // reconstruction error should be large relative to clean scores.
        let weird = Tensor::from_fn(Shape::nchw(4, 1, 8, 8), |i| ((i / 3) % 2) as f32);
        let flags = d.detect(&weird).unwrap();
        // At least the pipeline runs and returns per-item flags.
        assert_eq!(flags.len(), 4);
    }

    #[test]
    fn breakdown_matches_combined_detection() {
        let mut d = toy_defense();
        d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
        let x = toy_batch(6);
        let combined = d.detect(&x).unwrap();
        let breakdown = d.detect_breakdown(&x).unwrap();
        assert_eq!(breakdown.len(), d.num_detectors());
        for i in 0..6 {
            let any = breakdown.iter().any(|(_, flags)| flags[i]);
            assert_eq!(any, combined[i], "item {i}");
        }
        assert_eq!(breakdown[0].0, "recon-l2");
    }

    #[test]
    fn accuracy_counts_detected_as_defended() {
        let mut d = toy_defense();
        d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
        // Force-detect everything by dropping the threshold below all scores.
        for det in &mut d.detectors {
            det.set_threshold(-1.0);
        }
        let acc = d
            .accuracy(&toy_batch(5), &[9; 5], DefenseScheme::Full)
            .unwrap();
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn labels_shorter_than_batch_are_partial() {
        // zip() semantics: extra verdicts are ignored; documents the contract.
        let d = toy_defense();
        let acc = d
            .accuracy(&toy_batch(3), &[0, 0, 0], DefenseScheme::None)
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    /// A defense with the paper's D+JSD redundancy pattern: one AE shared by
    /// a reconstruction detector, two JSD detectors, and the reformer; the
    /// JSD detectors also carry clones of the protected classifier.
    fn jsd_defense() -> MagnetDefense {
        let ae = Autoencoder::new(
            &mnist_ae_two(1, 3),
            ReconstructionLoss::MeanSquaredError,
            0.0,
            1,
        )
        .unwrap();
        let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(ReconstructionDetector::new(
                ae.clone(),
                ReconstructionNorm::L2,
            )),
            Box::new(
                crate::detector::JsdDetector::new(ae.clone(), classifier.clone(), 10.0).unwrap(),
            ),
            Box::new(
                crate::detector::JsdDetector::new(ae.clone(), classifier.clone(), 40.0).unwrap(),
            ),
        ];
        MagnetDefense::new("toy-d-jsd", detectors, ae, classifier)
    }

    #[test]
    fn fused_pipeline_is_bit_identical_to_serial() {
        for mut d in [toy_defense(), jsd_defense()] {
            d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
            let x = toy_batch(12);
            for scheme in DefenseScheme::ALL {
                let serial = d.classify(&x, scheme).unwrap();
                let (fused, timings) = d.classify_fused(&x, scheme).unwrap();
                assert_eq!(fused, serial, "{} {scheme:?}", d.name());
                if scheme == DefenseScheme::Full {
                    assert!(timings.detect > Duration::ZERO);
                }
            }
        }
    }

    #[test]
    fn fused_pass_actually_deduplicates_shared_work() {
        // Replay a Full pass through one cache and count network executions.
        // Serial, this defense runs the shared AE four times (recon detector,
        // two JSD detectors, reformer) and the classifier five times (x and
        // AE(x) per JSD detector, plus the final pass on the reformed batch)
        // — 9 network runs for only 3 distinct computations.
        let mut d = jsd_defense();
        d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
        let x = toy_batch(4);
        let mut cache = InferenceCache::new();
        for det in &d.detectors {
            det.flags_fused(&x, &mut cache).unwrap();
        }
        let reformed = cache.reconstruction(&d.reformer, &x).unwrap();
        cache.logits(&d.classifier, &reformed).unwrap();
        // Serial work: 4 AE passes + 5 classifier passes = 9 network runs.
        // Distinct: AE(x), logits(x), logits(AE(x)) = 3.
        assert_eq!(cache.misses(), 3, "distinct sub-computations");
        assert_eq!(cache.hits(), 6, "deduplicated sub-computations");
    }

    #[test]
    fn scored_pipeline_is_bit_identical_and_exposes_scores() {
        let mut d = jsd_defense();
        d.calibrate_detectors(&toy_batch(64), 0.05).unwrap();
        let x = toy_batch(6);
        for scheme in DefenseScheme::ALL {
            let (plain, _) = d.classify_fused(&x, scheme).unwrap();
            let (scored, scores, _) = d.classify_fused_scored(&x, scheme).unwrap();
            assert_eq!(scored, plain, "{scheme:?}");
            match scheme {
                DefenseScheme::DetectorOnly | DefenseScheme::Full => {
                    assert_eq!(scores.len(), d.num_detectors(), "{scheme:?}");
                    assert!(scores.iter().all(|col| col.len() == 6));
                }
                _ => assert!(scores.is_empty(), "{scheme:?}"),
            }
        }
    }

    #[test]
    fn scheme_labels_match_paper_legends() {
        assert_eq!(DefenseScheme::None.label(), "No defense");
        assert_eq!(DefenseScheme::Full.label(), "With detector & reformer");
        assert_eq!(DefenseScheme::ALL.len(), 4);
    }
}
