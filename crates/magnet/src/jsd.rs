//! Jensen–Shannon divergence between probability rows.
//!
//! MagNet's probability-divergence detector scores an input `x` by
//! `JSD(softmax(logits(x)/T) ‖ softmax(logits(AE(x))/T))`. The JSD is
//! symmetric, bounded in `[0, ln 2]` (nats), and zero iff the distributions
//! coincide — properties exercised by the tests below.

use crate::{MagnetError, Result};

/// KL divergence `Σ pᵢ ln(pᵢ/qᵢ)` with the convention `0·ln(0/q) = 0`.
fn kl(p: &[f32], q: &[f32]) -> f32 {
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-12)).ln()
            }
        })
        .sum()
}

/// Jensen–Shannon divergence of two probability vectors (natural log).
///
/// # Errors
///
/// Returns [`MagnetError::InvalidArgument`] when the vectors differ in
/// length or are empty.
pub fn jsd(p: &[f32], q: &[f32]) -> Result<f32> {
    if p.len() != q.len() || p.is_empty() {
        return Err(MagnetError::InvalidArgument(format!(
            "jsd needs equal-length non-empty vectors, got {} and {}",
            p.len(),
            q.len()
        )));
    }
    let m: Vec<f32> = p
        .iter()
        .zip(q.iter())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    Ok(0.5 * kl(p, &m) + 0.5 * kl(q, &m))
}

/// Row-wise JSD of two `[batch, classes]` probability matrices (as flat
/// slices with row length `k`).
///
/// # Errors
///
/// Returns [`MagnetError::InvalidArgument`] when the slices disagree in
/// length or are not a multiple of `k`.
pub fn jsd_rows(p: &[f32], q: &[f32], k: usize) -> Result<Vec<f32>> {
    if k == 0 || p.len() != q.len() || !p.len().is_multiple_of(k) {
        return Err(MagnetError::InvalidArgument(format!(
            "jsd_rows: lengths {} / {} with row size {k}",
            p.len(),
            q.len()
        )));
    }
    let _prof = adv_profile::KernelScope::enter(adv_profile::KernelKind::Jsd, || {
        // ~3 flops per element per KL pass, two passes plus the mixture.
        adv_profile::Work::custom(p.len() as u64, 9 * p.len() as u64, 8 * p.len() as u64)
    });
    p.chunks_exact(k)
        .zip(q.chunks_exact(k))
        .map(|(pr, qr)| jsd(pr, qr))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_jsd() {
        let p = [0.2, 0.3, 0.5];
        assert!(jsd(&p, &p).unwrap().abs() < 1e-7);
    }

    #[test]
    fn jsd_is_symmetric() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        let a = jsd(&p, &q).unwrap();
        let b = jsd(&q, &p).unwrap();
        assert!((a - b).abs() < 1e-7);
    }

    #[test]
    fn jsd_bounded_by_ln2() {
        // Disjoint supports reach the maximum ln 2.
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let v = jsd(&p, &q).unwrap();
        assert!((v - std::f32::consts::LN_2).abs() < 1e-6);
        // Anything else stays below.
        let v = jsd(&[0.6, 0.4], &[0.4, 0.6]).unwrap();
        assert!(v > 0.0 && v < std::f32::consts::LN_2);
    }

    #[test]
    fn jsd_grows_with_separation() {
        let p = [0.5, 0.5];
        let near = jsd(&p, &[0.6, 0.4]).unwrap();
        let far = jsd(&p, &[0.9, 0.1]).unwrap();
        assert!(far > near);
    }

    #[test]
    fn rows_computed_independently() {
        let p = [1.0, 0.0, 0.5, 0.5];
        let q = [0.0, 1.0, 0.5, 0.5];
        let rows = jsd_rows(&p, &q, 2).unwrap();
        assert_eq!(rows.len(), 2);
        assert!((rows[0] - std::f32::consts::LN_2).abs() < 1e-6);
        assert!(rows[1].abs() < 1e-7);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(jsd(&[0.5], &[0.5, 0.5]).is_err());
        assert!(jsd(&[], &[]).is_err());
        assert!(jsd_rows(&[0.5, 0.5], &[0.5, 0.5], 0).is_err());
        assert!(jsd_rows(&[0.5, 0.5, 0.1], &[0.5, 0.5, 0.1], 2).is_err());
    }
}
