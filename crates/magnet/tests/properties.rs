//! Property-based tests for MagNet's detector mathematics: JSD bounds and
//! symmetry, threshold calibration monotonicity, and reconstruction-error
//! norm ordering.

use adv_magnet::jsd::jsd;
use adv_magnet::threshold::{observed_fpr, threshold_for_fpr};
use proptest::prelude::*;

fn normalize(v: &[f32]) -> Vec<f32> {
    let s: f32 = v.iter().sum();
    v.iter().map(|&x| x / s).collect()
}

fn prob_vec(k: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.01f32..1.0, k).prop_map(|v| normalize(&v))
}

proptest! {
    #[test]
    fn jsd_nonnegative_and_bounded(p in prob_vec(5), q in prob_vec(5)) {
        let v = jsd(&p, &q).unwrap();
        prop_assert!(v >= -1e-6);
        prop_assert!(v <= std::f32::consts::LN_2 + 1e-5);
    }

    #[test]
    fn jsd_symmetric(p in prob_vec(4), q in prob_vec(4)) {
        let a = jsd(&p, &q).unwrap();
        let b = jsd(&q, &p).unwrap();
        prop_assert!((a - b).abs() < 1e-5);
    }

    #[test]
    fn jsd_identity_of_indiscernibles(p in prob_vec(6)) {
        prop_assert!(jsd(&p, &p).unwrap().abs() < 1e-6);
    }

    #[test]
    fn jsd_interpolation_shrinks_divergence(p in prob_vec(3), q in prob_vec(3), t in 0.0f32..1.0) {
        // Moving q toward p cannot increase JSD(p, ·).
        let mix: Vec<f32> = p.iter().zip(&q).map(|(&a, &b)| t * a + (1.0 - t) * b).collect();
        let full = jsd(&p, &q).unwrap();
        let part = jsd(&p, &mix).unwrap();
        prop_assert!(part <= full + 1e-5);
    }

    #[test]
    fn threshold_fpr_is_respected(
        scores in proptest::collection::vec(0.0f32..10.0, 50..200),
        fpr in 0.01f32..0.5,
    ) {
        let t = threshold_for_fpr(&scores, fpr).unwrap();
        // The observed FPR never exceeds the budget by more than one
        // quantile step.
        let step = 1.5 / scores.len() as f32;
        prop_assert!(observed_fpr(&scores, t) <= fpr + step + 0.02);
    }

    #[test]
    fn threshold_monotone_in_fpr(
        scores in proptest::collection::vec(0.0f32..10.0, 30..100),
        f1 in 0.05f32..0.3,
        df in 0.0f32..0.3,
    ) {
        let strict = threshold_for_fpr(&scores, f1).unwrap();
        let loose = threshold_for_fpr(&scores, f1 + df).unwrap();
        prop_assert!(strict >= loose - 1e-6);
    }

    #[test]
    fn threshold_within_score_range(
        scores in proptest::collection::vec(-5.0f32..5.0, 10..50),
        fpr in 0.05f32..0.5,
    ) {
        let t = threshold_for_fpr(&scores, fpr).unwrap();
        let lo = scores.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!((lo..=hi).contains(&t));
    }
}
