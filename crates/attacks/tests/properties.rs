//! Property-based tests for the attack primitives: the ISTA shrinkage
//! operator of EAD (paper eq. 5) and the hinge attack loss (eq. 2–3).

use adv_attacks::loss::{adversarial_margins, untargeted_hinge};
use adv_tensor::{Shape, Tensor};
use proptest::prelude::*;

/// Re-implementation of eq. (5) for a single pixel, used as the oracle.
fn shrink_pixel(z: f32, x0: f32, beta: f32) -> f32 {
    let d = z - x0;
    if d > beta {
        (z - beta).min(1.0)
    } else if d < -beta {
        (z + beta).max(0.0)
    } else {
        x0
    }
}

proptest! {
    #[test]
    fn shrinkage_output_is_box_feasible(
        z in -3.0f32..4.0,
        x0 in 0.0f32..1.0,
        beta in 0.0f32..0.5,
    ) {
        let out = shrink_pixel(z, x0, beta);
        // The operator projects into [0,1] whenever it moves the pixel; a
        // kept original pixel is feasible by construction.
        prop_assert!((0.0..=1.0).contains(&out));
    }

    #[test]
    fn shrinkage_never_overshoots_the_original(
        z in -2.0f32..3.0,
        x0 in 0.0f32..1.0,
        beta in 0.0f32..0.5,
    ) {
        // S_β moves z *toward* x0 by β (or keeps x0): the perturbation after
        // shrinkage is no larger in magnitude than before (pre-clipping).
        let out = shrink_pixel(z, x0, beta);
        let before = (z.clamp(0.0, 1.0) - x0).abs();
        let after = (out - x0).abs();
        prop_assert!(after <= before + 1e-6);
    }

    #[test]
    fn shrinkage_sparsity_is_monotone_in_beta(
        z in proptest::collection::vec(-0.5f32..1.5, 16),
        x0 in proptest::collection::vec(0.2f32..0.8, 16),
        b1 in 0.0f32..0.2,
        db in 0.0f32..0.2,
    ) {
        let b2 = b1 + db;
        let count_kept = |beta: f32| {
            z.iter()
                .zip(&x0)
                .filter(|(&zi, &xi)| (shrink_pixel(zi, xi, beta) - xi).abs() < 1e-7)
                .count()
        };
        // Larger β keeps (zeroes the perturbation of) at least as many pixels.
        prop_assert!(count_kept(b2) >= count_kept(b1));
    }

    #[test]
    fn zero_beta_is_pure_projection(
        z in -2.0f32..3.0,
        x0 in 0.0f32..1.0,
    ) {
        let out = shrink_pixel(z, x0, 0.0);
        prop_assert!((out - z.clamp(0.0, 1.0)).abs() < 1e-6);
    }

    #[test]
    fn hinge_is_bounded_below_by_minus_kappa(
        logits in proptest::collection::vec(-5.0f32..5.0, 6),
        kappa in 0.0f32..10.0,
    ) {
        let t = Tensor::from_vec(logits, Shape::matrix(2, 3)).unwrap();
        let (f, _) = untargeted_hinge(&t, &[0, 1], kappa, &[1.0, 1.0]).unwrap();
        for v in f {
            prop_assert!(v >= -kappa - 1e-6);
        }
    }

    #[test]
    fn hinge_zero_iff_margin_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 3),
    ) {
        // f(x) with κ=0 equals max(−margin, 0) up to sign conventions:
        // f = max(Z_t0 − max_other, 0) = max(−margin, 0).
        let t = Tensor::from_vec(logits, Shape::matrix(1, 3)).unwrap();
        let (f, _) = untargeted_hinge(&t, &[0], 0.0, &[1.0]).unwrap();
        let m = adversarial_margins(&t, &[0]).unwrap();
        prop_assert!((f[0] - (-m[0]).max(0.0)).abs() < 1e-5);
    }

    #[test]
    fn margin_is_antisymmetric_under_logit_swap(
        a in -5.0f32..5.0,
        b in -5.0f32..5.0,
    ) {
        // Two classes: margin(label 0) = b − a, margin(label 1) = a − b.
        let t = Tensor::from_vec(vec![a, b], Shape::matrix(1, 2)).unwrap();
        let m0 = adversarial_margins(&t, &[0]).unwrap()[0];
        let m1 = adversarial_margins(&t, &[1]).unwrap()[0];
        prop_assert!((m0 + m1).abs() < 1e-5);
    }

    #[test]
    fn saturated_hinge_has_zero_gradient(
        base in -3.0f32..3.0,
        kappa in 0.1f32..5.0,
    ) {
        // Build logits where the wrong class beats the true class by more
        // than κ — the hinge must be saturated with zero gradient.
        let t = Tensor::from_vec(vec![base, base + kappa + 1.0], Shape::matrix(1, 2)).unwrap();
        let (f, g) = untargeted_hinge(&t, &[0], kappa, &[2.0]).unwrap();
        prop_assert!((f[0] + kappa).abs() < 1e-5);
        prop_assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
