//! Integration: every attack against a small CNN trained on synthetic
//! digits — the realistic setting (convolutions, pooling, ReLU) rather than
//! the linear toy models of the unit tests.

use adv_attacks::{
    Attack, CarliniWagnerL2, CwConfig, DecisionRule, DeepFool, DeepFoolConfig, EadConfig,
    ElasticNetAttack, Fgsm, IterativeFgsm,
};
use adv_data::synth::mnist_like;
use adv_nn::optim::Adam;
use adv_nn::train::{fit_classifier, gather0, TrainConfig};
use adv_nn::{Activation, LayerSpec, Sequential};
use adv_tensor::ops::Conv2dSpec;
use adv_tensor::Tensor;

/// Trains a small CNN to high accuracy on synthetic digits and returns it
/// with a batch of correctly-classified images.
fn trained_cnn_with_batch(n: usize) -> (Sequential, Tensor, Vec<usize>) {
    let train = mnist_like(700, 31);
    let test = mnist_like(120, 32);
    let specs = [
        LayerSpec::Conv2d(Conv2dSpec::same(1, 6, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Conv2d(Conv2dSpec::same(6, 12, 3)),
        LayerSpec::Activation(Activation::Relu),
        LayerSpec::MaxPool2d { k: 2 },
        LayerSpec::Flatten,
        LayerSpec::Dense {
            inputs: 12 * 7 * 7,
            outputs: 10,
        },
    ];
    let mut net = Sequential::from_specs(&specs, 8).unwrap();
    let mut opt = Adam::with_defaults(1e-3);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 32,
        seed: 2,
        label_smoothing: 0.0,
        verbose: false,
        checkpoint: None,
    };
    fit_classifier(&mut net, &mut opt, train.images(), train.labels(), &cfg).unwrap();

    let preds = net.predict(test.images()).unwrap();
    let correct: Vec<usize> = preds
        .iter()
        .zip(test.labels())
        .enumerate()
        .filter(|(_, (p, l))| p == l)
        .map(|(i, _)| i)
        .take(n)
        .collect();
    assert!(correct.len() >= n, "classifier too weak for the test");
    let x = gather0(test.images(), &correct).unwrap();
    let labels = correct.iter().map(|&i| test.labels()[i]).collect();
    (net, x, labels)
}

#[test]
fn ead_fools_the_cnn_and_examples_verify() {
    let (mut net, x, labels) = trained_cnn_with_batch(6);
    let attack = ElasticNetAttack::new(EadConfig {
        kappa: 0.0,
        beta: 0.01,
        iterations: 40,
        binary_search_steps: 3,
        initial_c: 0.5,
        learning_rate: 0.02,
        rule: DecisionRule::ElasticNet,
        fista: false,
    })
    .unwrap();
    let outcome = attack.run(&mut net, &x, &labels).unwrap();
    assert!(
        outcome.success_rate() > 0.6,
        "ASR {}",
        outcome.success_rate()
    );
    let preds = net.predict(&outcome.adversarial).unwrap();
    for (i, &ok) in outcome.success.iter().enumerate() {
        if ok {
            assert_ne!(preds[i], labels[i], "example {i} not adversarial");
        }
    }
}

#[test]
fn ead_l1_rule_produces_sparser_perturbations_than_cw() {
    let (mut net, x, labels) = trained_cnn_with_batch(5);
    let ead = ElasticNetAttack::new(EadConfig {
        kappa: 0.0,
        beta: 0.05,
        iterations: 50,
        binary_search_steps: 3,
        initial_c: 0.5,
        learning_rate: 0.02,
        rule: DecisionRule::L1,
        fista: false,
    })
    .unwrap();
    let cw = CarliniWagnerL2::new(CwConfig {
        kappa: 0.0,
        iterations: 50,
        binary_search_steps: 3,
        initial_c: 0.5,
        learning_rate: 0.02,
    })
    .unwrap();
    let eo = ead.run(&mut net, &x, &labels).unwrap();
    let co = cw.run(&mut net, &x, &labels).unwrap();

    // Compare mean L0 (pixels touched) over examples where both succeeded —
    // the paper's central geometric claim.
    let mut ead_l0 = 0usize;
    let mut cw_l0 = 0usize;
    let mut counted = 0usize;
    for i in 0..labels.len() {
        if eo.success[i] && co.success[i] {
            let de = eo.adversarial.index_axis0(i).unwrap();
            let xe = x.index_axis0(i).unwrap();
            let dc = co.adversarial.index_axis0(i).unwrap();
            ead_l0 += adv_tensor::norms::l0_norm(&de.sub(&xe).unwrap(), 1e-3);
            cw_l0 += adv_tensor::norms::l0_norm(&dc.sub(&xe).unwrap(), 1e-3);
            counted += 1;
        }
    }
    assert!(counted > 0, "no common successes to compare");
    assert!(
        ead_l0 < cw_l0,
        "EAD touched {ead_l0} pixels vs C&W {cw_l0} over {counted} examples — expected sparser"
    );
}

#[test]
fn fgsm_family_fools_the_cnn_at_large_epsilon() {
    let (mut net, x, labels) = trained_cnn_with_batch(6);
    let fgsm = Fgsm::new(0.25).unwrap();
    let o = fgsm.run(&mut net, &x, &labels).unwrap();
    // FGSM is crude; just require it fools something and stays bounded.
    assert!(o.linf.iter().all(|&v| v <= 0.25 + 1e-5));

    let ifgsm = IterativeFgsm::new(0.25, 0.05, 10).unwrap();
    let oi = ifgsm.run(&mut net, &x, &labels).unwrap();
    assert!(
        oi.success_rate() >= o.success_rate(),
        "I-FGSM ({}) should be at least as strong as FGSM ({})",
        oi.success_rate(),
        o.success_rate()
    );
}

#[test]
fn deepfool_finds_small_perturbations() {
    let (mut net, x, labels) = trained_cnn_with_batch(4);
    let attack = DeepFool::new(DeepFoolConfig {
        max_iterations: 40,
        overshoot: 0.02,
    })
    .unwrap();
    let o = attack.run(&mut net, &x, &labels).unwrap();
    assert!(o.success_rate() > 0.5, "ASR {}", o.success_rate());
    // DeepFool aims for minimal perturbations: distortions stay moderate.
    for (i, &ok) in o.success.iter().enumerate() {
        if ok && o.l2[i] > 0.0 {
            assert!(
                o.l2[i] < 10.0,
                "example {i} L2 {} implausibly large",
                o.l2[i]
            );
        }
    }
}

#[test]
fn confidence_increases_distortion_on_cnn() {
    let (mut net, x, labels) = trained_cnn_with_batch(4);
    let mut run = |kappa: f32| {
        let attack = ElasticNetAttack::new(EadConfig {
            kappa,
            beta: 0.01,
            iterations: 50,
            binary_search_steps: 3,
            initial_c: 1.0,
            learning_rate: 0.02,
            rule: DecisionRule::ElasticNet,
            fista: false,
        })
        .unwrap();
        let o = attack.run(&mut net, &x, &labels).unwrap();
        (o.success_rate(), o.mean_l2_successful())
    };
    let (asr0, d0) = run(0.0);
    let (_, d3) = run(3.0);
    assert!(asr0 > 0.5);
    if let (Some(a), Some(b)) = (d0, d3) {
        assert!(
            b >= a * 0.8,
            "κ=3 distortion {b} unexpectedly below κ=0 {a}"
        );
    }
}
