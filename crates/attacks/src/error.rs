use adv_nn::NnError;
use adv_tensor::TensorError;
use std::fmt;

/// Errors produced while configuring or running attacks.
#[derive(Debug)]
pub enum AttackError {
    /// An underlying network operation failed.
    Nn(NnError),
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An invalid attack hyperparameter.
    InvalidConfig(String),
    /// The batch and label list disagree in length, or a label is invalid.
    BadLabels(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Nn(e) => write!(f, "network error: {e}"),
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::InvalidConfig(msg) => write!(f, "invalid attack config: {msg}"),
            AttackError::BadLabels(msg) => write!(f, "bad labels: {msg}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Nn(e) => Some(e),
            AttackError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Nn(e)
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }

    #[test]
    fn display_variants() {
        assert!(AttackError::InvalidConfig("beta".into())
            .to_string()
            .contains("invalid attack config"));
        assert!(AttackError::BadLabels("len".into())
            .to_string()
            .contains("bad labels"));
    }
}
