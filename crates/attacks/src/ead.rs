//! EAD: Elastic-net Attacks to DNNs (Chen et al., AAAI 2018), as specified
//! in the paper's §II-B.
//!
//! EAD finds an untargeted adversarial example by minimizing
//!
//! ```text
//! c·f(x) + ‖x − x₀‖₂² + β‖x − x₀‖₁      s.t. x ∈ [0, 1]ᵖ
//! ```
//!
//! with the iterative shrinkage-thresholding algorithm (ISTA): each step
//! takes a gradient step on the smooth part `g = c·f + ‖x−x₀‖₂²` and applies
//! the pixel-wise projected shrinkage operator `S_β` (paper eq. 5), which
//! *zeroes* any perturbation smaller than β and shrinks the rest — the
//! mechanism the paper credits for EAD's transferability.
//!
//! `c` is binary-searched per example; the reported example is chosen by the
//! **elastic-net** or **L1** decision rule over all successful iterates.

use crate::attack::{Attack, AttackOutcome};
use crate::loss::{adversarial_margins, target_margins, targeted_hinge, untargeted_hinge};
use crate::{AttackError, Result};
use adv_nn::Differentiable;
use adv_obs::Span;
use adv_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Cached `adv-obs` counters for one attack run; `None` when metrics are
/// disabled so the per-iteration path costs one relaxed load.
pub(crate) struct AttackObs {
    pub(crate) iterations: std::sync::Arc<adv_obs::Counter>,
    pub(crate) search_steps: std::sync::Arc<adv_obs::Counter>,
    pub(crate) examples: std::sync::Arc<adv_obs::Counter>,
    pub(crate) converged: std::sync::Arc<adv_obs::Counter>,
}

impl AttackObs {
    /// `kind` is `"ead"` or `"cw"`; `iter_name` names the inner loop
    /// (`"ista_iterations"` / `"adam_iterations"`).
    pub(crate) fn resolve(kind: &str, iter_name: &str) -> Option<AttackObs> {
        if !adv_obs::metrics_enabled() {
            return None;
        }
        let r = adv_obs::global();
        Some(AttackObs {
            iterations: r.counter(&format!("{kind}.{iter_name}")),
            search_steps: r.counter(&format!("{kind}.binary_search_steps")),
            examples: r.counter(&format!("{kind}.examples")),
            converged: r.counter(&format!("{kind}.converged")),
        })
    }

    /// Records run totals: `n` examples attacked, `success` flags per
    /// example at the end of the search.
    pub(crate) fn record_run(&self, n: usize, success: &[bool]) {
        self.examples.add(n as u64);
        self.converged
            .add(success.iter().filter(|&&s| s).count() as u64);
    }
}

/// How EAD selects the final adversarial example among successful iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecisionRule {
    /// Minimize the elastic-net distance `‖δ‖₂² + β‖δ‖₁` (the attack's own
    /// objective).
    ElasticNet,
    /// Minimize the pure L1 distance `‖δ‖₁`.
    L1,
}

impl DecisionRule {
    /// Short label used in tables ("EN" / "L1").
    pub fn label(self) -> &'static str {
        match self {
            DecisionRule::ElasticNet => "EN",
            DecisionRule::L1 => "L1",
        }
    }
}

/// EAD hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EadConfig {
    /// Confidence margin κ ≥ 0 (paper eq. 3).
    pub kappa: f32,
    /// L1 regularization strength β (paper sweeps 1e-3 … 1e-1).
    pub beta: f32,
    /// ISTA iterations per binary-search step (paper: 1000).
    pub iterations: usize,
    /// Initial step size (paper: 0.01), decayed as `α·(1 − k/K)^½`.
    pub learning_rate: f32,
    /// Binary-search steps over `c` (paper: 9).
    pub binary_search_steps: usize,
    /// Starting value of `c` (paper: 0.001).
    pub initial_c: f32,
    /// Decision rule for the reported example.
    pub rule: DecisionRule,
    /// Use FISTA momentum (the EAD reference implementation) instead of the
    /// plain ISTA iteration of the paper's eq. 4. Costs one extra forward
    /// pass per iteration.
    pub fista: bool,
}

impl Default for EadConfig {
    fn default() -> Self {
        EadConfig {
            kappa: 0.0,
            beta: 1e-2,
            iterations: 200,
            learning_rate: 0.01,
            binary_search_steps: 6,
            initial_c: 1e-3,
            rule: DecisionRule::ElasticNet,
            fista: false,
        }
    }
}

/// The EAD attack.
#[derive(Debug, Clone)]
pub struct ElasticNetAttack {
    config: EadConfig,
}

impl ElasticNetAttack {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for negative κ/β, zero
    /// iterations, non-positive learning rate or `initial_c`.
    pub fn new(config: EadConfig) -> Result<Self> {
        if config.kappa < 0.0 {
            return Err(AttackError::InvalidConfig(format!(
                "kappa {} must be >= 0",
                config.kappa
            )));
        }
        if config.beta < 0.0 {
            return Err(AttackError::InvalidConfig(format!(
                "beta {} must be >= 0",
                config.beta
            )));
        }
        if config.iterations == 0 || config.binary_search_steps == 0 {
            return Err(AttackError::InvalidConfig(
                "iterations and binary_search_steps must be > 0".into(),
            ));
        }
        if config.learning_rate <= 0.0 || config.initial_c <= 0.0 {
            return Err(AttackError::InvalidConfig(
                "learning_rate and initial_c must be > 0".into(),
            ));
        }
        Ok(ElasticNetAttack { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &EadConfig {
        &self.config
    }

    fn rule_distance(&self, delta_l1: f32, delta_l2_sq: f32) -> f32 {
        match self.config.rule {
            DecisionRule::ElasticNet => delta_l2_sq + self.config.beta * delta_l1,
            DecisionRule::L1 => delta_l1,
        }
    }
}

/// The pixel-wise projected shrinkage-thresholding operator `S_β`
/// (paper eq. 5), applied to a whole batch.
///
/// For each pixel: if `|zᵢ − x₀ᵢ| ≤ β` the original value is kept; otherwise
/// the perturbation is shrunk by β and the result clipped to `[0, 1]`.
pub(crate) fn shrink(z: &[f32], x0: &[f32], beta: f32, out: &mut [f32]) {
    for ((&zi, &x0i), o) in z.iter().zip(x0).zip(out.iter_mut()) {
        let d = zi - x0i;
        *o = if d > beta {
            (zi - beta).min(1.0)
        } else if d < -beta {
            (zi + beta).max(0.0)
        } else {
            x0i
        };
    }
}

impl Attack for ElasticNetAttack {
    fn name(&self) -> String {
        format!(
            "EAD({}, beta={}, kappa={})",
            self.config.rule.label(),
            self.config.beta,
            self.config.kappa
        )
    }

    fn run(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome> {
        self.run_with_goal(model, x0, labels, false)
    }
}

impl ElasticNetAttack {
    /// Targeted variant: drives each example toward `targets[i]` with
    /// confidence κ (paper eq. 2). Success means the *target* class leads
    /// by κ.
    ///
    /// # Errors
    ///
    /// Same as [`Attack::run`].
    pub fn run_targeted(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        targets: &[usize],
    ) -> Result<AttackOutcome> {
        self.run_with_goal(model, x0, targets, true)
    }

    fn run_with_goal(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
        targeted: bool,
    ) -> Result<AttackOutcome> {
        let n = x0.shape().dim(0);
        if labels.len() != n {
            return Err(AttackError::BadLabels(format!(
                "{n} images but {} labels",
                labels.len()
            )));
        }
        let item = x0.shape().volume() / n.max(1);
        let cfg = &self.config;

        let mut c = vec![cfg.initial_c; n];
        let mut lower = vec![0.0f32; n];
        let mut upper = vec![f32::INFINITY; n];

        let mut best_dist = vec![f32::INFINITY; n];
        let mut best_adv = x0.clone();
        let mut ever_success = vec![false; n];
        let obs = AttackObs::resolve("ead", "ista_iterations");

        for _step in 0..cfg.binary_search_steps {
            let _step_span = Span::enter("ead/search_step");
            if let Some(obs) = &obs {
                obs.search_steps.incr();
            }
            let mut x = x0.clone();
            // FISTA state: the extrapolated point y and momentum scalar t.
            let mut y = x.clone();
            let mut t_k = 1.0f32;
            let mut step_success = vec![false; n];

            for k in 0..=cfg.iterations {
                let _iter_span = Span::enter("ead/ista_iter");
                if let Some(obs) = &obs {
                    obs.iterations.incr();
                }
                let logits = model.forward(&x)?;
                // Record successful iterates (including the final one).
                let margins = if targeted {
                    target_margins(&logits, labels)?
                } else {
                    adversarial_margins(&logits, labels)?
                };
                for (i, &m) in margins.iter().enumerate() {
                    if m >= cfg.kappa {
                        step_success[i] = true;
                        ever_success[i] = true;
                        let xi = &x.as_slice()[i * item..(i + 1) * item];
                        let oi = &x0.as_slice()[i * item..(i + 1) * item];
                        let mut l1 = 0.0f32;
                        let mut l2sq = 0.0f32;
                        for (&a, &b) in xi.iter().zip(oi) {
                            let d = a - b;
                            l1 += d.abs();
                            l2sq += d * d;
                        }
                        let dist = self.rule_distance(l1, l2sq);
                        if dist < best_dist[i] {
                            best_dist[i] = dist;
                            for (j, &v) in xi.iter().enumerate() {
                                best_adv.as_mut_slice()[i * item + j] = v;
                            }
                        }
                    }
                }
                if k == cfg.iterations {
                    break;
                }

                // ∇g = c·∇f + 2(p − x₀) at the gradient point p (x for
                // ISTA, the extrapolated y for FISTA), in one batch pass.
                let (point, point_logits) = if cfg.fista {
                    let ly = model.forward(&y)?;
                    (&y, ly)
                } else {
                    (&x, logits)
                };
                let (_, dlogits) = if targeted {
                    targeted_hinge(&point_logits, labels, cfg.kappa, &c)?
                } else {
                    untargeted_hinge(&point_logits, labels, cfg.kappa, &c)?
                };
                let mut grad = model.backward_input(&dlogits)?;
                grad.add_scaled_assign(point, 2.0)?;
                grad.add_scaled_assign(x0, -2.0)?;

                // Proximal step with square-root decaying step size.
                let lr = cfg.learning_rate * (1.0 - k as f32 / (cfg.iterations + 1) as f32).sqrt();
                let mut z = point.clone();
                z.add_scaled_assign(&grad, -lr)?;
                let mut x_new = vec![0.0f32; z.len()];
                shrink(z.as_slice(), x0.as_slice(), cfg.beta, &mut x_new);
                let x_new = Tensor::from_vec(x_new, x.shape().clone())?;

                if cfg.fista {
                    // Nesterov momentum: y = x_{k+1} + ((t_k−1)/t_{k+1})(x_{k+1} − x_k).
                    let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_k * t_k).sqrt());
                    let coeff = (t_k - 1.0) / t_next;
                    let mut y_new = x_new.clone();
                    y_new.add_scaled_assign(&x_new, coeff)?;
                    y_new.add_scaled_assign(&x, -coeff)?;
                    y = y_new;
                    t_k = t_next;
                }
                x = x_new;
            }

            // Per-example binary search update on c.
            for i in 0..n {
                if step_success[i] {
                    upper[i] = upper[i].min(c[i]);
                    c[i] = 0.5 * (lower[i] + upper[i]);
                } else {
                    lower[i] = lower[i].max(c[i]);
                    c[i] = if upper[i].is_finite() {
                        0.5 * (lower[i] + upper[i])
                    } else {
                        c[i] * 10.0
                    };
                }
            }
        }

        if let Some(obs) = &obs {
            obs.record_run(n, &ever_success);
        }
        AttackOutcome::from_images(x0, best_adv, ever_success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_nn::{LayerSpec, Sequential};
    use adv_tensor::Shape;

    /// A fixed linear 2-class model: class 0 iff x·w < 0 with w = (1, −1).
    fn linear_model() -> Sequential {
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        // logits = [x·(−1,1), x·(1,−1)] → class 1 wins when x0 > x1.
        net.params_mut()[0].value =
            Tensor::from_vec(vec![-1.0, 1.0, 1.0, -1.0], Shape::matrix(2, 2)).unwrap();
        net.params_mut()[1].value = Tensor::zeros(Shape::vector(2));
        net
    }

    #[test]
    fn shrink_operator_matches_eq5() {
        let x0 = [0.5f32, 0.5, 0.5, 0.5, 0.9];
        let z = [0.58f32, 0.42, 0.505, 1.4, 0.0];
        let mut out = [0.0f32; 5];
        shrink(&z, &x0, 0.05, &mut out);
        assert!((out[0] - 0.53).abs() < 1e-6); // shrunk down by β
        assert!((out[1] - 0.47).abs() < 1e-6); // shrunk up by β
        assert_eq!(out[2], 0.5); // |d| ≤ β → original kept
        assert_eq!(out[3], 1.0); // clipped to box
        assert!((out[4] - 0.05).abs() < 1e-6); // z+β, above 0
    }

    #[test]
    fn shrink_with_zero_beta_is_projection_only() {
        let x0 = [0.5f32, 0.5];
        let z = [1.7f32, 0.2];
        let mut out = [0.0f32; 2];
        shrink(&z, &x0, 0.0, &mut out);
        assert_eq!(out, [1.0, 0.2]);
    }

    #[test]
    fn attack_flips_a_linear_classifier() {
        let mut model = linear_model();
        // Points firmly in class 0 (x0 < x1).
        let x = Tensor::from_vec(vec![0.2, 0.8, 0.3, 0.6], Shape::matrix(2, 2)).unwrap();
        let labels = [0usize, 0usize];
        let attack = ElasticNetAttack::new(EadConfig {
            iterations: 50,
            binary_search_steps: 4,
            learning_rate: 0.1,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = attack.run(&mut model, &x, &labels).unwrap();
        assert_eq!(outcome.success, vec![true, true]);
        // The adversarial points must actually be misclassified.
        let preds = model.predict(&outcome.adversarial).unwrap();
        assert_eq!(preds, vec![1, 1]);
    }

    #[test]
    fn higher_kappa_needs_larger_distortion() {
        let run = |kappa: f32| {
            let mut model = linear_model();
            let x = Tensor::from_vec(vec![0.2, 0.8], Shape::matrix(1, 2)).unwrap();
            let attack = ElasticNetAttack::new(EadConfig {
                kappa,
                iterations: 80,
                binary_search_steps: 5,
                learning_rate: 0.1,
                ..EadConfig::default()
            })
            .unwrap();
            let outcome = attack.run(&mut model, &x, &[0]).unwrap();
            assert!(outcome.success[0], "kappa {kappa} failed");
            outcome.l2[0]
        };
        assert!(run(2.0) > run(0.0));
    }

    #[test]
    fn larger_beta_yields_sparser_perturbations() {
        // On a model where one coordinate dominates, large β must zero the
        // unimportant coordinate.
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.3, 0.7], Shape::matrix(1, 2)).unwrap();
        let sparse_attack = ElasticNetAttack::new(EadConfig {
            beta: 0.05,
            iterations: 60,
            binary_search_steps: 4,
            learning_rate: 0.1,
            rule: DecisionRule::L1,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = sparse_attack.run(&mut model, &x, &[0]).unwrap();
        assert!(outcome.success[0]);
        assert!(outcome.l1[0] > 0.0);
    }

    #[test]
    fn failed_attack_returns_original() {
        // κ far beyond what the bounded domain can provide for a weak c
        // search: use 1 iteration and 1 bs step with tiny lr so nothing moves
        // enough.
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.0, 1.0], Shape::matrix(1, 2)).unwrap();
        let attack = ElasticNetAttack::new(EadConfig {
            kappa: 10.0,
            iterations: 1,
            binary_search_steps: 1,
            learning_rate: 1e-6,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = attack.run(&mut model, &x, &[0]).unwrap();
        assert_eq!(outcome.success, vec![false]);
        assert_eq!(outcome.adversarial.as_slice(), x.as_slice());
        assert_eq!(outcome.l1[0], 0.0);
    }

    #[test]
    fn fista_variant_also_flips_the_classifier() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.2, 0.8, 0.3, 0.6], Shape::matrix(2, 2)).unwrap();
        let attack = ElasticNetAttack::new(EadConfig {
            iterations: 50,
            binary_search_steps: 4,
            learning_rate: 0.1,
            fista: true,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = attack.run(&mut model, &x, &[0, 0]).unwrap();
        assert_eq!(outcome.success, vec![true, true]);
        assert_eq!(model.predict(&outcome.adversarial).unwrap(), vec![1, 1]);
        // Returned examples still respect the image box despite the
        // extrapolated momentum point.
        assert!(outcome.adversarial.min() >= 0.0);
        assert!(outcome.adversarial.max() <= 1.0);
    }

    #[test]
    fn targeted_attack_reaches_the_target_class() {
        let mut model = linear_model();
        // Start in class 0 (x0 < x1); target class 1.
        let x = Tensor::from_vec(vec![0.2, 0.8], Shape::matrix(1, 2)).unwrap();
        let attack = ElasticNetAttack::new(EadConfig {
            kappa: 1.0,
            iterations: 60,
            binary_search_steps: 4,
            learning_rate: 0.1,
            initial_c: 0.5,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = attack.run_targeted(&mut model, &x, &[1]).unwrap();
        assert!(outcome.success[0]);
        assert_eq!(model.predict(&outcome.adversarial).unwrap(), vec![1]);
    }

    #[test]
    fn targeted_toward_current_class_is_free() {
        let mut model = linear_model();
        // Already class 1 with margin; targeting class 1 needs no change.
        let x = Tensor::from_vec(vec![0.9, 0.1], Shape::matrix(1, 2)).unwrap();
        let attack = ElasticNetAttack::new(EadConfig {
            kappa: 0.0,
            iterations: 10,
            binary_search_steps: 1,
            learning_rate: 0.05,
            initial_c: 0.5,
            ..EadConfig::default()
        })
        .unwrap();
        let outcome = attack.run_targeted(&mut model, &x, &[1]).unwrap();
        assert!(outcome.success[0]);
        assert_eq!(outcome.l2[0], 0.0);
    }

    #[test]
    fn config_validation() {
        let bad = |f: fn(&mut EadConfig)| {
            let mut c = EadConfig::default();
            f(&mut c);
            ElasticNetAttack::new(c).is_err()
        };
        assert!(bad(|c| c.kappa = -1.0));
        assert!(bad(|c| c.beta = -0.1));
        assert!(bad(|c| c.iterations = 0));
        assert!(bad(|c| c.binary_search_steps = 0));
        assert!(bad(|c| c.learning_rate = 0.0));
        assert!(bad(|c| c.initial_c = 0.0));
    }

    #[test]
    fn name_reports_rule_and_beta() {
        let attack = ElasticNetAttack::new(EadConfig {
            rule: DecisionRule::L1,
            beta: 0.1,
            kappa: 15.0,
            ..EadConfig::default()
        })
        .unwrap();
        assert_eq!(attack.name(), "EAD(L1, beta=0.1, kappa=15)");
    }

    #[test]
    fn label_count_mismatch_rejected() {
        let mut model = linear_model();
        let x = Tensor::zeros(Shape::matrix(2, 2));
        let attack = ElasticNetAttack::new(EadConfig::default()).unwrap();
        assert!(attack.run(&mut model, &x, &[0]).is_err());
    }
}
