//! DeepFool (Moosavi-Dezfooli et al., CVPR 2016) — a minimal-perturbation
//! untargeted baseline.
//!
//! Each iteration linearizes the classifier around the current iterate and
//! steps to the nearest linearized decision boundary:
//!
//! ```text
//! l  = argmin_{j≠t₀} |f_j| / ‖w_j‖₂,   w_j = ∇Z_j − ∇Z_{t₀},  f_j = Z_j − Z_{t₀}
//! r  = (|f_l| / ‖w_l‖₂²) · w_l
//! x ← clip(x + (1 + overshoot)·r)
//! ```
//!
//! The batch version needs one backward pass per class per iteration.

use crate::attack::{Attack, AttackOutcome};
use crate::loss::adversarial_margins;
use crate::{AttackError, Result};
use adv_nn::Differentiable;
use adv_tensor::{Shape, Tensor};

/// DeepFool hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DeepFoolConfig {
    /// Maximum linearization iterations.
    pub max_iterations: usize,
    /// Overshoot factor η (original paper: 0.02).
    pub overshoot: f32,
}

impl Default for DeepFoolConfig {
    fn default() -> Self {
        DeepFoolConfig {
            max_iterations: 30,
            overshoot: 0.02,
        }
    }
}

/// The DeepFool attack.
#[derive(Debug, Clone)]
pub struct DeepFool {
    config: DeepFoolConfig,
}

impl DeepFool {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for zero iterations or
    /// negative overshoot.
    pub fn new(config: DeepFoolConfig) -> Result<Self> {
        if config.max_iterations == 0 {
            return Err(AttackError::InvalidConfig(
                "max_iterations must be > 0".into(),
            ));
        }
        if config.overshoot < 0.0 {
            return Err(AttackError::InvalidConfig(format!(
                "overshoot {} must be >= 0",
                config.overshoot
            )));
        }
        Ok(DeepFool { config })
    }
}

/// Per-example gradients of logit `class` w.r.t. the input, batched.
fn class_gradient(
    model: &mut dyn Differentiable,
    x: &Tensor,
    class: usize,
    k: usize,
) -> Result<Tensor> {
    let n = x.shape().dim(0);
    // Forward must precede each backward to refresh caches.
    let _ = model.forward(x)?;
    let mut dlogits = Tensor::zeros(Shape::matrix(n, k));
    for i in 0..n {
        dlogits.as_mut_slice()[i * k + class] = 1.0;
    }
    Ok(model.backward_input(&dlogits)?)
}

impl Attack for DeepFool {
    fn name(&self) -> String {
        format!(
            "DeepFool(iters={}, overshoot={})",
            self.config.max_iterations, self.config.overshoot
        )
    }

    fn run(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome> {
        let n = x0.shape().dim(0);
        if labels.len() != n {
            return Err(AttackError::BadLabels(format!(
                "{n} images but {} labels",
                labels.len()
            )));
        }
        let item = x0.shape().volume() / n.max(1);
        let mut x = x0.clone();
        let mut done = vec![false; n];

        for _ in 0..self.config.max_iterations {
            let logits = model.forward(&x)?;
            let k = logits.shape().dim(1);
            let margins = adversarial_margins(&logits, labels)?;
            for (d, &m) in done.iter_mut().zip(&margins) {
                *d |= m > 0.0;
            }
            if done.iter().all(|&d| d) {
                break;
            }

            // Gradients of every class logit (k backward passes).
            let mut grads = Vec::with_capacity(k);
            for class in 0..k {
                grads.push(class_gradient(model, &x, class, k)?);
            }

            let z = logits.as_slice();
            let mut xm = x.clone();
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let t0 = labels[i];
                let g_t0 = &grads[t0].as_slice()[i * item..(i + 1) * item];
                let mut best: Option<(f32, usize)> = None; // (|f|/‖w‖, class)
                for j in 0..k {
                    if j == t0 {
                        continue;
                    }
                    let f_j = z[i * k + j] - z[i * k + t0];
                    let g_j = &grads[j].as_slice()[i * item..(i + 1) * item];
                    let w_norm_sq: f32 =
                        g_j.iter().zip(g_t0).map(|(&a, &b)| (a - b) * (a - b)).sum();
                    if w_norm_sq < 1e-12 {
                        continue;
                    }
                    let ratio = f_j.abs() / w_norm_sq.sqrt();
                    if best.is_none_or(|(b, _)| ratio < b) {
                        best = Some((ratio, j));
                    }
                }
                let Some((_, l)) = best else { continue };
                let f_l = z[i * k + l] - z[i * k + t0];
                let g_l = &grads[l].as_slice()[i * item..(i + 1) * item];
                let w_norm_sq: f32 = g_l.iter().zip(g_t0).map(|(&a, &b)| (a - b) * (a - b)).sum();
                let scale =
                    (f_l.abs() + 1e-4) / w_norm_sq.max(1e-12) * (1.0 + self.config.overshoot);
                let xi = &mut xm.as_mut_slice()[i * item..(i + 1) * item];
                for (p, (&a, &b)) in xi.iter_mut().zip(g_l.iter().zip(g_t0)) {
                    *p = (*p + scale * (a - b)).clamp(0.0, 1.0);
                }
            }
            x = xm;
        }

        // Final success check.
        let logits = model.forward(&x)?;
        let success: Vec<bool> = adversarial_margins(&logits, labels)?
            .into_iter()
            .map(|m| m > 0.0)
            .collect();
        // Return originals where the attack failed.
        let mut adv = x;
        #[allow(clippy::needless_range_loop)] // i indexes success, adv and x0 together
        for i in 0..n {
            if !success[i] {
                let oi = &x0.as_slice()[i * item..(i + 1) * item];
                adv.as_mut_slice()[i * item..(i + 1) * item].copy_from_slice(oi);
            }
        }
        AttackOutcome::from_images(x0, adv, success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_nn::{LayerSpec, Sequential};

    fn linear_model() -> Sequential {
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        net.params_mut()[0].value =
            Tensor::from_vec(vec![-1.0, 1.0, 1.0, -1.0], Shape::matrix(2, 2)).unwrap();
        net.params_mut()[1].value = Tensor::zeros(Shape::vector(2));
        net
    }

    #[test]
    fn finds_small_perturbation_on_linear_model() {
        let mut model = linear_model();
        // Distance to boundary x₀=x₁ from (0.4, 0.6) is |0.2|·(1/√2)·... small.
        let x = Tensor::from_vec(vec![0.4, 0.6], Shape::matrix(1, 2)).unwrap();
        let attack = DeepFool::new(DeepFoolConfig::default()).unwrap();
        let o = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(o.success[0]);
        // DeepFool's hallmark: near-minimal L2 (boundary distance ≈ 0.141).
        assert!(o.l2[0] < 0.3, "L2 {} too large", o.l2[0]);
    }

    #[test]
    fn already_misclassified_needs_no_perturbation() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.8, 0.2], Shape::matrix(1, 2)).unwrap();
        // True label 0, but model says 1 → already adversarial.
        let attack = DeepFool::new(DeepFoolConfig::default()).unwrap();
        let o = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(o.success[0]);
        assert_eq!(o.l2[0], 0.0);
    }

    #[test]
    fn batch_mixes_done_and_pending() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.8, 0.2, 0.3, 0.7], Shape::matrix(2, 2)).unwrap();
        let attack = DeepFool::new(DeepFoolConfig::default()).unwrap();
        let o = attack.run(&mut model, &x, &[0, 0]).unwrap();
        assert_eq!(o.success, vec![true, true]);
        assert_eq!(o.l2[0], 0.0);
        assert!(o.l2[1] > 0.0);
    }

    #[test]
    fn config_validation() {
        assert!(DeepFool::new(DeepFoolConfig {
            max_iterations: 0,
            overshoot: 0.02
        })
        .is_err());
        assert!(DeepFool::new(DeepFoolConfig {
            max_iterations: 5,
            overshoot: -0.5
        })
        .is_err());
    }
}
