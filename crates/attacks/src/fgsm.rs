//! FGSM and iterative FGSM (Goodfellow et al. '15; Kurakin et al. '16) —
//! the fast L∞ baselines MagNet was originally shown to defend.
//!
//! FGSM takes a single signed-gradient step of the training loss:
//! `x' = clip(x + ε·sign(∇ₓ CE(f(x), t₀)))`. The iterative variant applies
//! smaller steps repeatedly with per-step clipping to the ε-ball.

use crate::attack::{Attack, AttackOutcome};
use crate::loss::adversarial_margins;
use crate::{AttackError, Result};
use adv_nn::loss::softmax_cross_entropy;
use adv_nn::Differentiable;
use adv_tensor::Tensor;

/// Fast gradient sign method with step size ε.
#[derive(Debug, Clone, Copy)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates FGSM with the given L∞ budget ε.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] unless `ε > 0`.
    pub fn new(epsilon: f32) -> Result<Self> {
        if epsilon <= 0.0 {
            return Err(AttackError::InvalidConfig(format!(
                "epsilon {epsilon} must be > 0"
            )));
        }
        Ok(Fgsm { epsilon })
    }

    /// The L∞ budget.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

fn loss_input_gradient(
    model: &mut dyn Differentiable,
    x: &Tensor,
    labels: &[usize],
) -> Result<Tensor> {
    let logits = model.forward(x)?;
    let (_, dlogits) = softmax_cross_entropy(&logits, labels)?;
    Ok(model.backward_input(&dlogits)?)
}

fn check_success(
    model: &mut dyn Differentiable,
    adv: &Tensor,
    labels: &[usize],
) -> Result<Vec<bool>> {
    let logits = model.forward(adv)?;
    Ok(adversarial_margins(&logits, labels)?
        .into_iter()
        .map(|m| m > 0.0)
        .collect())
}

impl Attack for Fgsm {
    fn name(&self) -> String {
        format!("FGSM(eps={})", self.epsilon)
    }

    fn run(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome> {
        if labels.len() != x0.shape().dim(0) {
            return Err(AttackError::BadLabels(format!(
                "{} images but {} labels",
                x0.shape().dim(0),
                labels.len()
            )));
        }
        let grad = loss_input_gradient(model, x0, labels)?;
        let adv = x0
            .zip_map(&grad, |xi, gi| xi + self.epsilon * gi.signum())?
            .clamp(0.0, 1.0);
        let success = check_success(model, &adv, labels)?;
        AttackOutcome::from_images(x0, adv, success)
    }
}

/// Iterative FGSM: `steps` signed-gradient steps of size `alpha`, clipped to
/// the ε-ball around the original after each step.
#[derive(Debug, Clone, Copy)]
pub struct IterativeFgsm {
    epsilon: f32,
    alpha: f32,
    steps: usize,
}

impl IterativeFgsm {
    /// Creates I-FGSM.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for non-positive ε/α or zero
    /// steps.
    pub fn new(epsilon: f32, alpha: f32, steps: usize) -> Result<Self> {
        if epsilon <= 0.0 || alpha <= 0.0 {
            return Err(AttackError::InvalidConfig(
                "epsilon and alpha must be > 0".into(),
            ));
        }
        if steps == 0 {
            return Err(AttackError::InvalidConfig("steps must be > 0".into()));
        }
        Ok(IterativeFgsm {
            epsilon,
            alpha,
            steps,
        })
    }
}

impl Attack for IterativeFgsm {
    fn name(&self) -> String {
        format!(
            "I-FGSM(eps={}, alpha={}, steps={})",
            self.epsilon, self.alpha, self.steps
        )
    }

    fn run(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome> {
        if labels.len() != x0.shape().dim(0) {
            return Err(AttackError::BadLabels(format!(
                "{} images but {} labels",
                x0.shape().dim(0),
                labels.len()
            )));
        }
        let mut x = x0.clone();
        for _ in 0..self.steps {
            let grad = loss_input_gradient(model, &x, labels)?;
            x = x.zip_map(&grad, |xi, gi| xi + self.alpha * gi.signum())?;
            // Project to the ε-ball and the image box.
            x = x.zip_map(x0, |xi, oi| xi.clamp(oi - self.epsilon, oi + self.epsilon))?;
            x = x.clamp(0.0, 1.0);
        }
        let success = check_success(model, &x, labels)?;
        AttackOutcome::from_images(x0, x, success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_nn::{LayerSpec, Sequential};
    use adv_tensor::Shape;

    fn linear_model() -> Sequential {
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        net.params_mut()[0].value =
            Tensor::from_vec(vec![-1.0, 1.0, 1.0, -1.0], Shape::matrix(2, 2)).unwrap();
        net.params_mut()[1].value = Tensor::zeros(Shape::vector(2));
        net
    }

    #[test]
    fn fgsm_perturbation_is_linf_bounded() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.4, 0.6], Shape::matrix(1, 2)).unwrap();
        let attack = Fgsm::new(0.1).unwrap();
        let o = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(o.linf[0] <= 0.1 + 1e-6);
    }

    #[test]
    fn fgsm_with_large_epsilon_flips_the_class() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.45, 0.55], Shape::matrix(1, 2)).unwrap();
        let attack = Fgsm::new(0.3).unwrap();
        let o = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(o.success[0]);
    }

    #[test]
    fn ifgsm_respects_epsilon_ball() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.4, 0.6], Shape::matrix(1, 2)).unwrap();
        let attack = IterativeFgsm::new(0.15, 0.05, 10).unwrap();
        let o = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(o.linf[0] <= 0.15 + 1e-6);
    }

    #[test]
    fn ifgsm_beats_fgsm_at_same_budget() {
        // On this toy model both flip the label, but I-FGSM's margin should
        // be at least as good; we just check both succeed at a tight budget.
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.42, 0.58], Shape::matrix(1, 2)).unwrap();
        let itr = IterativeFgsm::new(0.2, 0.04, 8).unwrap();
        let o = itr.run(&mut model, &x, &[0]).unwrap();
        assert!(o.success[0]);
    }

    #[test]
    fn config_validation() {
        assert!(Fgsm::new(0.0).is_err());
        assert!(Fgsm::new(-0.1).is_err());
        assert!(IterativeFgsm::new(0.1, 0.0, 5).is_err());
        assert!(IterativeFgsm::new(0.1, 0.05, 0).is_err());
    }

    #[test]
    fn names() {
        assert_eq!(Fgsm::new(0.3).unwrap().name(), "FGSM(eps=0.3)");
        assert!(IterativeFgsm::new(0.3, 0.1, 5)
            .unwrap()
            .name()
            .contains("steps=5"));
    }
}
