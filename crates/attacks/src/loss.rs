//! The attack loss (paper eq. 2–3) and its gradient with respect to the
//! logits.
//!
//! For an *untargeted* attack on an example with true label `t₀` the loss is
//!
//! ```text
//! f(x) = max( [Logit(x)]_{t₀} − max_{j≠t₀} [Logit(x)]_j , −κ )
//! ```
//!
//! which is minimized (saturating at `−κ`) once some wrong class beats the
//! true class by the confidence margin κ. The gradient with respect to the
//! logits is `+1` on `t₀` and `−1` on the runner-up class while the hinge is
//! active, and zero once saturated — this is what gets scaled by each
//! example's `c` and pushed through the network's backward pass.

use crate::{AttackError, Result};
use adv_tensor::{Shape, Tensor};

/// Per-example *adversarial margin* `max_{j≠t₀} Z_j − Z_{t₀}`.
///
/// Positive margin means the model currently misclassifies; margin ≥ κ means
/// the example is adversarial *with confidence κ* (the success criterion the
/// paper sweeps).
///
/// # Errors
///
/// Returns [`AttackError::BadLabels`] when the label list disagrees with the
/// batch or contains out-of-range labels.
pub fn adversarial_margins(logits: &Tensor, labels: &[usize]) -> Result<Vec<f32>> {
    let (n, k) = check(logits, labels)?;
    let z = logits.as_slice();
    let mut out = Vec::with_capacity(n);
    for (i, &t0) in labels.iter().enumerate() {
        let row = &z[i * k..(i + 1) * k];
        let best_other = row
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != t0)
            .map(|(_, &v)| v)
            .fold(f32::NEG_INFINITY, f32::max);
        out.push(best_other - row[t0]);
    }
    Ok(out)
}

/// Untargeted hinge loss values (paper eq. 3) and the gradient of
/// `Σᵢ cᵢ·fᵢ` with respect to the logits.
///
/// `c` holds each example's regularization constant; rows whose hinge is
/// saturated (margin ≥ κ) receive a zero gradient.
///
/// # Errors
///
/// Returns [`AttackError::BadLabels`] for mismatched labels and
/// [`AttackError::InvalidConfig`] when `c` has the wrong length.
pub fn untargeted_hinge(
    logits: &Tensor,
    labels: &[usize],
    kappa: f32,
    c: &[f32],
) -> Result<(Vec<f32>, Tensor)> {
    let (n, k) = check(logits, labels)?;
    if c.len() != n {
        return Err(AttackError::InvalidConfig(format!(
            "c has {} entries for a batch of {n}",
            c.len()
        )));
    }
    let z = logits.as_slice();
    let mut values = Vec::with_capacity(n);
    let mut grad = vec![0.0f32; n * k];
    for (i, &t0) in labels.iter().enumerate() {
        let row = &z[i * k..(i + 1) * k];
        let (runner_up, best_other) = row.iter().enumerate().filter(|&(j, _)| j != t0).fold(
            (t0, f32::NEG_INFINITY),
            |(bj, bv), (j, &v)| {
                if v > bv {
                    (j, v)
                } else {
                    (bj, bv)
                }
            },
        );
        let raw = row[t0] - best_other;
        let f = raw.max(-kappa);
        values.push(f);
        if raw > -kappa {
            grad[i * k + t0] = c[i];
            grad[i * k + runner_up] = -c[i];
        }
    }
    Ok((values, Tensor::from_vec(grad, Shape::matrix(n, k))?))
}

/// Per-example *target margin* `Z_t − max_{j≠t} Z_j` for targeted attacks.
///
/// Margin ≥ κ means the example is classified as the target with confidence
/// κ.
///
/// # Errors
///
/// Returns [`AttackError::BadLabels`] for mismatched or out-of-range
/// targets.
pub fn target_margins(logits: &Tensor, targets: &[usize]) -> Result<Vec<f32>> {
    let m = adversarial_margins(logits, targets)?;
    // For label t, adversarial_margins returns max_{j≠t} Z_j − Z_t; the
    // target margin is its negation.
    Ok(m.into_iter().map(|v| -v).collect())
}

/// Targeted hinge loss (paper eq. 2) and the gradient of `Σᵢ cᵢ·fᵢ` w.r.t.
/// the logits:
///
/// ```text
/// f(x, t) = max( max_{j≠t} Z_j − Z_t , −κ )
/// ```
///
/// minimized once the *target* class leads by κ.
///
/// # Errors
///
/// Returns [`AttackError::BadLabels`] for mismatched targets and
/// [`AttackError::InvalidConfig`] when `c` has the wrong length.
pub fn targeted_hinge(
    logits: &Tensor,
    targets: &[usize],
    kappa: f32,
    c: &[f32],
) -> Result<(Vec<f32>, Tensor)> {
    let (n, k) = check(logits, targets)?;
    if c.len() != n {
        return Err(AttackError::InvalidConfig(format!(
            "c has {} entries for a batch of {n}",
            c.len()
        )));
    }
    let z = logits.as_slice();
    let mut values = Vec::with_capacity(n);
    let mut grad = vec![0.0f32; n * k];
    for (i, &t) in targets.iter().enumerate() {
        let row = &z[i * k..(i + 1) * k];
        let (runner_up, best_other) = row.iter().enumerate().filter(|&(j, _)| j != t).fold(
            (t, f32::NEG_INFINITY),
            |(bj, bv), (j, &v)| {
                if v > bv {
                    (j, v)
                } else {
                    (bj, bv)
                }
            },
        );
        let raw = best_other - row[t];
        let f = raw.max(-kappa);
        values.push(f);
        if raw > -kappa {
            grad[i * k + runner_up] = c[i];
            grad[i * k + t] = -c[i];
        }
    }
    Ok((values, Tensor::from_vec(grad, Shape::matrix(n, k))?))
}

fn check(logits: &Tensor, labels: &[usize]) -> Result<(usize, usize)> {
    if logits.shape().rank() != 2 {
        return Err(AttackError::Tensor(adv_tensor::TensorError::RankMismatch {
            expected: 2,
            actual: logits.shape().rank(),
        }));
    }
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    if labels.len() != n {
        return Err(AttackError::BadLabels(format!(
            "{n} logit rows but {} labels",
            labels.len()
        )));
    }
    if k < 2 {
        return Err(AttackError::BadLabels(format!(
            "need at least 2 classes, got {k}"
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(AttackError::BadLabels(format!(
            "label {bad} out of range for {k} classes"
        )));
    }
    Ok((n, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(rows: &[&[f32]]) -> Tensor {
        let k = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, Shape::matrix(rows.len(), k)).unwrap()
    }

    #[test]
    fn margin_signs() {
        let l = logits(&[&[5.0, 1.0, 0.0], &[1.0, 5.0, 0.0]]);
        let m = adversarial_margins(&l, &[0, 0]).unwrap();
        assert_eq!(m, vec![-4.0, 4.0]); // first correct, second misclassified
    }

    #[test]
    fn hinge_saturates_at_minus_kappa() {
        // Margin 4 ≥ κ=2 → f = −κ, zero gradient.
        let l = logits(&[&[1.0, 5.0]]);
        let (f, g) = untargeted_hinge(&l, &[0], 2.0, &[1.0]).unwrap();
        assert_eq!(f, vec![-2.0]);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn hinge_active_gradient_points_at_true_and_runner_up() {
        let l = logits(&[&[5.0, 3.0, 1.0]]);
        let (f, g) = untargeted_hinge(&l, &[0], 0.0, &[2.0]).unwrap();
        assert_eq!(f, vec![2.0]); // Z_t0 − best_other = 5 − 3
        assert_eq!(g.as_slice(), &[2.0, -2.0, 0.0]);
    }

    #[test]
    fn hinge_gradient_matches_finite_differences() {
        let l = logits(&[&[1.2, 0.4, -0.3], &[0.1, 0.9, 0.5]]);
        let labels = [0usize, 1usize];
        let kappa = 0.5;
        let c = [1.5f32, 0.7];
        let (_, g) = untargeted_hinge(&l, &labels, kappa, &c).unwrap();
        let eval = |l: &Tensor| {
            let (f, _) = untargeted_hinge(l, &labels, kappa, &[1.0, 1.0]).unwrap();
            c.iter().zip(f).map(|(&ci, fi)| ci * fi).sum::<f32>()
        };
        let eps = 1e-3f32;
        for i in 0..l.len() {
            let mut lp = l.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = l.clone();
            lm.as_mut_slice()[i] -= eps;
            let fd = (eval(&lp) - eval(&lm)) / (2.0 * eps);
            assert!(
                (fd - g.as_slice()[i]).abs() < 1e-2,
                "grad[{i}]: {fd} vs {}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn per_example_c_scales_rows_independently() {
        let l = logits(&[&[2.0, 1.0], &[2.0, 1.0]]);
        let (_, g) = untargeted_hinge(&l, &[0, 0], 0.0, &[1.0, 3.0]).unwrap();
        assert_eq!(g.as_slice(), &[1.0, -1.0, 3.0, -3.0]);
    }

    #[test]
    fn target_margin_is_negated_adversarial_margin() {
        let l = logits(&[&[1.0, 4.0, 2.0]]);
        let am = adversarial_margins(&l, &[1]).unwrap();
        let tm = target_margins(&l, &[1]).unwrap();
        assert_eq!(tm[0], -am[0]);
        assert_eq!(tm[0], 2.0); // target leads by 4 − 2
    }

    #[test]
    fn targeted_hinge_active_until_target_leads_by_kappa() {
        // Target class 2 trails: hinge active, gradient pushes Z_2 up and
        // the leader down.
        let l = logits(&[&[5.0, 1.0, 3.0]]);
        let (f, g) = targeted_hinge(&l, &[2], 1.0, &[2.0]).unwrap();
        assert_eq!(f, vec![2.0]); // max_other − Z_t = 5 − 3
        assert_eq!(g.as_slice(), &[2.0, 0.0, -2.0]);
        // Target leads by more than κ: saturated, zero gradient.
        let l = logits(&[&[1.0, 0.0, 5.0]]);
        let (f, g) = targeted_hinge(&l, &[2], 1.0, &[2.0]).unwrap();
        assert_eq!(f, vec![-1.0]);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn targeted_hinge_gradient_matches_finite_differences() {
        let l = logits(&[&[1.2, 0.4, -0.3], &[0.1, 0.9, 0.5]]);
        let targets = [2usize, 0usize];
        let c = [1.5f32, 0.7];
        let (_, g) = targeted_hinge(&l, &targets, 0.5, &c).unwrap();
        let eval = |l: &Tensor| {
            let (f, _) = targeted_hinge(l, &targets, 0.5, &[1.0, 1.0]).unwrap();
            c.iter().zip(f).map(|(&ci, fi)| ci * fi).sum::<f32>()
        };
        let eps = 1e-3f32;
        for i in 0..l.len() {
            let mut lp = l.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = l.clone();
            lm.as_mut_slice()[i] -= eps;
            let fd = (eval(&lp) - eval(&lm)) / (2.0 * eps);
            assert!(
                (fd - g.as_slice()[i]).abs() < 1e-2,
                "grad[{i}]: {fd} vs {}",
                g.as_slice()[i]
            );
        }
    }

    #[test]
    fn validation_errors() {
        let l = logits(&[&[1.0, 2.0]]);
        assert!(untargeted_hinge(&l, &[0, 1], 0.0, &[1.0]).is_err());
        assert!(untargeted_hinge(&l, &[7], 0.0, &[1.0]).is_err());
        assert!(untargeted_hinge(&l, &[0], 0.0, &[1.0, 1.0]).is_err());
        let one_class = logits(&[&[1.0]]);
        assert!(adversarial_margins(&one_class, &[0]).is_err());
    }
}
