//! The Carlini & Wagner L2 attack (S&P 2017) — the paper's baseline.
//!
//! C&W minimizes `‖δ‖₂² + c·f(x+δ)` with Adam over the tanh change of
//! variables `x = ½(tanh(w) + 1)`, which enforces the `[0, 1]` box without
//! projection. `c` is binary-searched per example. As the paper notes
//! (§II-B), C&W is exactly EAD with β = 0 — a pure L2 attack — and it is
//! this purity that MagNet's detectors exploit: its perturbations spread
//! over many pixels and leave the data manifold in a way the auto-encoders
//! notice.

use crate::attack::{Attack, AttackOutcome};
use crate::ead::AttackObs;
use crate::loss::{adversarial_margins, target_margins, targeted_hinge, untargeted_hinge};
use crate::{AttackError, Result};
use adv_nn::Differentiable;
use adv_obs::Span;
use adv_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// C&W attack hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CwConfig {
    /// Confidence margin κ ≥ 0.
    pub kappa: f32,
    /// Adam iterations per binary-search step (paper: 1000).
    pub iterations: usize,
    /// Adam learning rate (paper: 0.01).
    pub learning_rate: f32,
    /// Binary-search steps over `c` (paper: 9).
    pub binary_search_steps: usize,
    /// Starting value of `c` (paper: 0.001).
    pub initial_c: f32,
}

impl Default for CwConfig {
    fn default() -> Self {
        CwConfig {
            kappa: 0.0,
            iterations: 200,
            learning_rate: 0.01,
            binary_search_steps: 6,
            initial_c: 1e-3,
        }
    }
}

/// The C&W L2 attack.
#[derive(Debug, Clone)]
pub struct CarliniWagnerL2 {
    config: CwConfig,
}

impl CarliniWagnerL2 {
    /// Creates the attack.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidConfig`] for invalid hyperparameters.
    pub fn new(config: CwConfig) -> Result<Self> {
        if config.kappa < 0.0 {
            return Err(AttackError::InvalidConfig(format!(
                "kappa {} must be >= 0",
                config.kappa
            )));
        }
        if config.iterations == 0 || config.binary_search_steps == 0 {
            return Err(AttackError::InvalidConfig(
                "iterations and binary_search_steps must be > 0".into(),
            ));
        }
        if config.learning_rate <= 0.0 || config.initial_c <= 0.0 {
            return Err(AttackError::InvalidConfig(
                "learning_rate and initial_c must be > 0".into(),
            ));
        }
        Ok(CarliniWagnerL2 { config })
    }

    /// The attack configuration.
    pub fn config(&self) -> &CwConfig {
        &self.config
    }
}

/// `arctanh` with the operand clamped away from ±1 for stability.
fn atanh_stable(v: f32) -> f32 {
    let v = v.clamp(-1.0 + 1e-6, 1.0 - 1e-6);
    0.5 * ((1.0 + v) / (1.0 - v)).ln()
}

impl Attack for CarliniWagnerL2 {
    fn name(&self) -> String {
        format!("C&W(L2, kappa={})", self.config.kappa)
    }

    fn run(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome> {
        self.run_with_goal(model, x0, labels, false)
    }
}

impl CarliniWagnerL2 {
    /// Targeted variant: drives each example toward `targets[i]` with
    /// confidence κ (paper eq. 2). Success means the *target* class leads
    /// by κ.
    ///
    /// # Errors
    ///
    /// Same as [`Attack::run`].
    pub fn run_targeted(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        targets: &[usize],
    ) -> Result<AttackOutcome> {
        self.run_with_goal(model, x0, targets, true)
    }

    fn run_with_goal(
        &self,
        model: &mut dyn Differentiable,
        x0: &Tensor,
        labels: &[usize],
        targeted: bool,
    ) -> Result<AttackOutcome> {
        let n = x0.shape().dim(0);
        if labels.len() != n {
            return Err(AttackError::BadLabels(format!(
                "{n} images but {} labels",
                labels.len()
            )));
        }
        let item = x0.shape().volume() / n.max(1);
        let cfg = &self.config;

        // tanh-space origin.
        let w0 = x0.map(|v| atanh_stable(2.0 * v - 1.0));

        let mut c = vec![cfg.initial_c; n];
        let mut lower = vec![0.0f32; n];
        let mut upper = vec![f32::INFINITY; n];

        let mut best_l2sq = vec![f32::INFINITY; n];
        let mut best_adv = x0.clone();
        let mut ever_success = vec![false; n];
        let obs = AttackObs::resolve("cw", "adam_iterations");

        for _step in 0..cfg.binary_search_steps {
            let _step_span = Span::enter("cw/search_step");
            if let Some(obs) = &obs {
                obs.search_steps.incr();
            }
            let mut w = w0.clone();
            // Fresh Adam state each binary-search step, as in the original.
            let mut m = Tensor::zeros(w.shape().clone());
            let mut v = Tensor::zeros(w.shape().clone());
            let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
            let mut step_success = vec![false; n];

            for k in 0..=cfg.iterations {
                let _iter_span = Span::enter("cw/adam_iter");
                if let Some(obs) = &obs {
                    obs.iterations.incr();
                }
                let x = w.map(|wi| 0.5 * (wi.tanh() + 1.0));
                let logits = model.forward(&x)?;
                let margins = if targeted {
                    target_margins(&logits, labels)?
                } else {
                    adversarial_margins(&logits, labels)?
                };
                for (i, &mg) in margins.iter().enumerate() {
                    if mg >= cfg.kappa {
                        step_success[i] = true;
                        ever_success[i] = true;
                        let xi = &x.as_slice()[i * item..(i + 1) * item];
                        let oi = &x0.as_slice()[i * item..(i + 1) * item];
                        let l2sq: f32 = xi.iter().zip(oi).map(|(&a, &b)| (a - b) * (a - b)).sum();
                        if l2sq < best_l2sq[i] {
                            best_l2sq[i] = l2sq;
                            for (j, &val) in xi.iter().enumerate() {
                                best_adv.as_mut_slice()[i * item + j] = val;
                            }
                        }
                    }
                }
                if k == cfg.iterations {
                    break;
                }

                // dL/dx = 2(x − x₀) + c·df/dx
                let (_, dlogits) = if targeted {
                    targeted_hinge(&logits, labels, cfg.kappa, &c)?
                } else {
                    untargeted_hinge(&logits, labels, cfg.kappa, &c)?
                };
                let mut dx = model.backward_input(&dlogits)?;
                dx.add_scaled_assign(&x, 2.0)?;
                dx.add_scaled_assign(x0, -2.0)?;
                // dL/dw = dL/dx · ½(1 − tanh²(w))
                let dw = dx.zip_map(&w, |g, wi| {
                    let t = wi.tanh();
                    g * 0.5 * (1.0 - t * t)
                })?;

                // Adam update on w.
                let t_step = (k + 1) as i32;
                let bc1 = 1.0 - b1.powi(t_step);
                let bc2 = 1.0 - b2.powi(t_step);
                let (mw, vw, ww) = (m.as_mut_slice(), v.as_mut_slice(), w.as_mut_slice());
                for (i, &g) in dw.as_slice().iter().enumerate() {
                    mw[i] = b1 * mw[i] + (1.0 - b1) * g;
                    vw[i] = b2 * vw[i] + (1.0 - b2) * g * g;
                    ww[i] -= cfg.learning_rate * (mw[i] / bc1) / ((vw[i] / bc2).sqrt() + eps);
                }
            }

            for i in 0..n {
                if step_success[i] {
                    upper[i] = upper[i].min(c[i]);
                    c[i] = 0.5 * (lower[i] + upper[i]);
                } else {
                    lower[i] = lower[i].max(c[i]);
                    c[i] = if upper[i].is_finite() {
                        0.5 * (lower[i] + upper[i])
                    } else {
                        c[i] * 10.0
                    };
                }
            }
        }

        if let Some(obs) = &obs {
            obs.record_run(n, &ever_success);
        }
        AttackOutcome::from_images(x0, best_adv, ever_success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_nn::{LayerSpec, Sequential};
    use adv_tensor::Shape;

    fn linear_model() -> Sequential {
        let mut net = Sequential::from_specs(
            &[LayerSpec::Dense {
                inputs: 2,
                outputs: 2,
            }],
            0,
        )
        .unwrap();
        net.params_mut()[0].value =
            Tensor::from_vec(vec![-1.0, 1.0, 1.0, -1.0], Shape::matrix(2, 2)).unwrap();
        net.params_mut()[1].value = Tensor::zeros(Shape::vector(2));
        net
    }

    #[test]
    fn atanh_roundtrip() {
        for v in [-0.9f32, -0.5, 0.0, 0.3, 0.99] {
            assert!((atanh_stable(v).tanh() - v).abs() < 1e-4);
        }
        // Extremes stay finite.
        assert!(atanh_stable(1.0).is_finite());
        assert!(atanh_stable(-1.0).is_finite());
    }

    #[test]
    fn attack_flips_a_linear_classifier() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.2, 0.8, 0.35, 0.6], Shape::matrix(2, 2)).unwrap();
        let attack = CarliniWagnerL2::new(CwConfig {
            iterations: 80,
            binary_search_steps: 5,
            learning_rate: 0.05,
            ..CwConfig::default()
        })
        .unwrap();
        let outcome = attack.run(&mut model, &x, &[0, 0]).unwrap();
        assert_eq!(outcome.success, vec![true, true]);
        assert_eq!(model.predict(&outcome.adversarial).unwrap(), vec![1, 1]);
    }

    #[test]
    fn adversarial_examples_respect_the_box() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.02, 0.98], Shape::matrix(1, 2)).unwrap();
        let attack = CarliniWagnerL2::new(CwConfig {
            kappa: 1.0,
            iterations: 60,
            binary_search_steps: 4,
            learning_rate: 0.1,
            ..CwConfig::default()
        })
        .unwrap();
        let outcome = attack.run(&mut model, &x, &[0]).unwrap();
        assert!(outcome.adversarial.min() >= 0.0);
        assert!(outcome.adversarial.max() <= 1.0);
    }

    #[test]
    fn binary_search_shrinks_distortion() {
        // More binary-search steps should find a smaller-or-equal L2.
        let run = |steps: usize| {
            let mut model = linear_model();
            let x = Tensor::from_vec(vec![0.2, 0.8], Shape::matrix(1, 2)).unwrap();
            let attack = CarliniWagnerL2::new(CwConfig {
                iterations: 60,
                binary_search_steps: steps,
                learning_rate: 0.05,
                // Start with a c large enough to succeed on the very first
                // step, so even steps=1 finds *an* adversarial example.
                initial_c: 5.0,
                ..CwConfig::default()
            })
            .unwrap();
            let o = attack.run(&mut model, &x, &[0]).unwrap();
            assert!(o.success[0]);
            o.l2[0]
        };
        assert!(run(6) <= run(1) + 1e-3);
    }

    #[test]
    fn targeted_attack_reaches_the_target_class() {
        let mut model = linear_model();
        let x = Tensor::from_vec(vec![0.2, 0.8], Shape::matrix(1, 2)).unwrap();
        let attack = CarliniWagnerL2::new(CwConfig {
            kappa: 1.0,
            iterations: 80,
            binary_search_steps: 4,
            learning_rate: 0.1,
            initial_c: 0.5,
        })
        .unwrap();
        let outcome = attack.run_targeted(&mut model, &x, &[1]).unwrap();
        assert!(outcome.success[0]);
        assert_eq!(model.predict(&outcome.adversarial).unwrap(), vec![1]);
    }

    #[test]
    fn config_validation() {
        let bad = |f: fn(&mut CwConfig)| {
            let mut c = CwConfig::default();
            f(&mut c);
            CarliniWagnerL2::new(c).is_err()
        };
        assert!(bad(|c| c.kappa = -0.1));
        assert!(bad(|c| c.iterations = 0));
        assert!(bad(|c| c.binary_search_steps = 0));
        assert!(bad(|c| c.learning_rate = -1.0));
        assert!(bad(|c| c.initial_c = 0.0));
    }

    #[test]
    fn name_includes_kappa() {
        let attack = CarliniWagnerL2::new(CwConfig {
            kappa: 20.0,
            ..CwConfig::default()
        })
        .unwrap();
        assert_eq!(attack.name(), "C&W(L2, kappa=20)");
    }
}
