//! Adversarial attacks on differentiable classifiers.
//!
//! The paper's comparison is between two optimization-based attacks run in
//! the *oblivious* transfer setting (crafted on the undefended model, then
//! thrown at MagNet):
//!
//! - [`CarliniWagnerL2`] — the C&W attack: minimize
//!   `‖δ‖₂² + c·f(x+δ)` over a tanh change of variables with Adam, binary
//!   searching `c` per example. Pure L2; the paper shows MagNet *defends*
//!   this one.
//! - [`ElasticNetAttack`] (EAD) — minimize
//!   `c·f(x) + ‖x−x₀‖₂² + β‖x−x₀‖₁` via the iterative
//!   shrinkage-thresholding algorithm (paper eq. 4–5). The β-weighted L1
//!   term nulls unnecessary perturbations, and its adversarial examples
//!   *bypass* MagNet. Final examples are selected per the **EN** or **L1**
//!   decision rule ([`DecisionRule`]).
//!
//! Baselines from the broader literature are included for completeness:
//! [`Fgsm`], [`IterativeFgsm`], and [`DeepFool`].
//!
//! All attacks are *batched* (every iteration runs the whole batch through
//! the network once) and *untargeted* with a confidence margin κ, matching
//! the paper's experimental setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod cw;
mod deepfool;
mod ead;
mod error;
mod fgsm;

pub mod loss;

pub use attack::{Attack, AttackOutcome};
pub use cw::{CarliniWagnerL2, CwConfig};
pub use deepfool::{DeepFool, DeepFoolConfig};
pub use ead::{DecisionRule, EadConfig, ElasticNetAttack};
pub use error::AttackError;
pub use fgsm::{Fgsm, IterativeFgsm};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AttackError>;
