use crate::Result;
use adv_nn::Differentiable;
use adv_tensor::{norms, Tensor};

/// The result of attacking a batch.
///
/// For every failed example, `adversarial` holds the *original* image, so
/// the tensor is always safe to feed onward; consumers must consult
/// `success` before counting an example as adversarial.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Best adversarial examples found, `[n, …]` (original image where the
    /// attack failed).
    pub adversarial: Tensor,
    /// Per-example success (margin ≥ κ on the attacked model).
    pub success: Vec<bool>,
    /// Per-example L1 distortion of the returned image.
    pub l1: Vec<f32>,
    /// Per-example L2 distortion of the returned image.
    pub l2: Vec<f32>,
    /// Per-example L∞ distortion of the returned image.
    pub linf: Vec<f32>,
}

impl AttackOutcome {
    /// Assembles an outcome, computing distortions of `adversarial` against
    /// `original` item by item.
    ///
    /// # Errors
    ///
    /// Returns shape errors when the tensors disagree.
    pub fn from_images(original: &Tensor, adversarial: Tensor, success: Vec<bool>) -> Result<Self> {
        let n = original.shape().dim(0);
        let mut l1 = Vec::with_capacity(n);
        let mut l2 = Vec::with_capacity(n);
        let mut linf = Vec::with_capacity(n);
        for i in 0..n {
            let a = original.index_axis0(i)?;
            let b = adversarial.index_axis0(i)?;
            l1.push(norms::l1_dist(&a, &b)?);
            l2.push(norms::l2_dist(&a, &b)?);
            linf.push(norms::linf_dist(&a, &b)?);
        }
        Ok(AttackOutcome {
            adversarial,
            success,
            l1,
            l2,
            linf,
        })
    }

    /// Attack success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f32 {
        if self.success.is_empty() {
            return 0.0;
        }
        self.success.iter().filter(|&&s| s).count() as f32 / self.success.len() as f32
    }

    /// Mean L1 distortion over *successful* examples (the statistic Table I
    /// reports), or `None` when no attack succeeded.
    pub fn mean_l1_successful(&self) -> Option<f32> {
        mean_over(&self.l1, &self.success)
    }

    /// Mean L2 distortion over successful examples.
    pub fn mean_l2_successful(&self) -> Option<f32> {
        mean_over(&self.l2, &self.success)
    }

    /// Mean L∞ distortion over successful examples.
    pub fn mean_linf_successful(&self) -> Option<f32> {
        mean_over(&self.linf, &self.success)
    }
}

fn mean_over(values: &[f32], mask: &[bool]) -> Option<f32> {
    let selected: Vec<f32> = values
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(&v, _)| v)
        .collect();
    if selected.is_empty() {
        None
    } else {
        Some(selected.iter().sum::<f32>() / selected.len() as f32)
    }
}

/// A batched, untargeted adversarial attack against a differentiable model.
///
/// `labels` are the *true* labels of `x`; the attack tries to move each
/// example to any other class with its configured confidence margin.
pub trait Attack {
    /// Display name including salient hyperparameters
    /// (e.g. `"EAD(EN, beta=0.01, kappa=15)"`).
    fn name(&self) -> String;

    /// Attacks the batch and returns per-example results.
    ///
    /// # Errors
    ///
    /// Returns label/shape errors for inconsistent inputs and propagates
    /// model errors.
    fn run(
        &self,
        model: &mut dyn Differentiable,
        x: &Tensor,
        labels: &[usize],
    ) -> Result<AttackOutcome>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use adv_tensor::Shape;

    #[test]
    fn outcome_statistics() {
        let orig = Tensor::zeros(Shape::matrix(3, 2));
        let mut adv = orig.clone();
        adv.as_mut_slice()[0] = 3.0;
        adv.as_mut_slice()[1] = 4.0; // example 0: L2 = 5, L1 = 7
        adv.as_mut_slice()[4] = 1.0; // example 2: L1 = L2 = 1
        let outcome = AttackOutcome::from_images(&orig, adv, vec![true, false, true]).unwrap();
        assert!((outcome.success_rate() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(outcome.mean_l1_successful(), Some(4.0));
        assert_eq!(outcome.mean_l2_successful(), Some(3.0));
        assert_eq!(outcome.mean_linf_successful(), Some(2.5));
        assert_eq!(outcome.l2[1], 0.0);
    }

    #[test]
    fn no_success_means_no_mean() {
        let orig = Tensor::zeros(Shape::matrix(2, 2));
        let outcome = AttackOutcome::from_images(&orig, orig.clone(), vec![false, false]).unwrap();
        assert_eq!(outcome.mean_l1_successful(), None);
        assert_eq!(outcome.success_rate(), 0.0);
    }

    #[test]
    fn empty_batch() {
        let orig = Tensor::zeros(Shape::matrix(0, 4));
        let outcome = AttackOutcome::from_images(&orig, orig.clone(), vec![]).unwrap();
        assert_eq!(outcome.success_rate(), 0.0);
    }
}
