//! adv-zoo: sharded multi-variant serving with fault-hardened blue-green
//! hot swap.
//!
//! The paper evaluates MagNet across several defense variants (default,
//! extra-JSD detector, 256-filter AE, MAE-trained AE); this crate serves
//! all of them concurrently from one process:
//!
//! * **Immutable, shared weights** — [`WeightBlob`]s are `Arc`-shared
//!   byte payloads sealed in adv-store CRC envelopes ([`BlobStore`]):
//!   loading re-verifies the CRC and quarantines corrupt files, so a bad
//!   blob can never be built into a shard, let alone go live.
//! * **Per-variant isolation** — every variant gets its own
//!   [`adv_serve::ServeEngine`] shard with its own worker pool, circuit
//!   breaker, restart budget, and [`adv_serve::EngineHealth`]; one
//!   variant panicking or degrading (Full → DetectorOnly → None) never
//!   contaminates another's verdict stream.
//! * **Blue-green hot swap** — [`ModelZoo::promote`] walks a journaled
//!   Staged → Warming → Live → Retired state machine: the candidate warms
//!   on shadow traffic with a verdict-parity probe against the live
//!   shard, the routing table flips as one epoch-counted `Arc` swap
//!   (in-flight requests finish on the old version; a successful flip
//!   drops zero requests), and any health or parity regression rolls the
//!   promotion back automatically. Every transition fsyncs through
//!   [`adv_store::Journal`] before taking effect, so kill -9 at any point
//!   resumes or cleanly aborts — a half-promoted variant is
//!   unrepresentable.
//! * **Routing** — the zoo implements [`adv_serve::VariantRouter`], the
//!   same seam `adv-net`'s front door and the probes drive, so a bare
//!   engine and a full zoo are interchangeable behind the wire protocol.
//!
//! `zoo.*` metrics (promotions, rollbacks, shadow mismatches, blob
//! rejects, routing epoch) live on a private `adv-obs` registry; per-
//! request serving counters stay on each shard's own `serve.*` registry,
//! and per-variant accounting identities survive hot swaps via retired-
//! shard totals ([`adv_serve::VariantRouter::variant_metrics`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blob;
mod journal;
mod metrics;
mod registry;

pub use blob::{BlobStore, WeightBlob};
pub use journal::{PromotionLog, PromotionRecord, PromotionStage};
pub use metrics::ZooStats;
pub use registry::{
    ModelZoo, NullLoader, PipelineLoader, PromotionReport, RollbackReason, ZooConfig, SITE_FLIP,
    SITE_STAGE, SITE_WARM,
};

use adv_serve::ServeError;
use adv_store::StoreError;

/// Errors surfaced by the model zoo.
#[derive(Debug)]
pub enum ZooError {
    /// Durable storage (journal or blob store) failed.
    Store(StoreError),
    /// A shard engine refused to start or accept work.
    Serve(ServeError),
    /// A weight blob was missing or failed CRC validation (corrupt blobs
    /// are quarantined to `<name>.corrupt` before this error returns).
    BlobRejected {
        /// Variant the blob belongs to.
        variant: u32,
        /// Version that was requested.
        version: u32,
        /// Underlying store error, for the log line.
        detail: String,
    },
    /// The promotion journal holds CRC-valid records that do not parse as
    /// promotion records — a foreign schema; refuse rather than guess.
    JournalSchema {
        /// What failed to parse.
        detail: String,
    },
    /// A promotion was automatically rolled back; the previous version
    /// keeps serving with its verdict stream untouched.
    RolledBack {
        /// Variant whose promotion failed.
        variant: u32,
        /// Candidate version that was rolled back.
        version: u32,
        /// Why the promotion was aborted.
        reason: RollbackReason,
    },
    /// The zoo is draining and no longer accepts installs or promotions.
    Draining,
}

impl std::fmt::Display for ZooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZooError::Store(e) => write!(f, "store failure: {e}"),
            ZooError::Serve(e) => write!(f, "shard engine failure: {e}"),
            ZooError::BlobRejected {
                variant,
                version,
                detail,
            } => write!(
                f,
                "weight blob for variant {variant} v{version} rejected: {detail}"
            ),
            ZooError::JournalSchema { detail } => {
                write!(f, "promotion journal schema mismatch: {detail}")
            }
            ZooError::RolledBack {
                variant,
                version,
                reason,
            } => write!(
                f,
                "promotion of variant {variant} to v{version} rolled back: {reason}"
            ),
            ZooError::Draining => write!(f, "zoo is draining"),
        }
    }
}

impl std::error::Error for ZooError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZooError::Store(e) => Some(e),
            ZooError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ZooError {
    fn from(e: StoreError) -> ZooError {
        ZooError::Store(e)
    }
}

impl From<ServeError> for ZooError {
    fn from(e: ServeError) -> ZooError {
        ZooError::Serve(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ZooError>;
