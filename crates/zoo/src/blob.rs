//! Immutable, `Arc`-shared weight blobs on the adv-store envelope.
//!
//! A blob is the serialized weights (or any opaque payload a
//! [`PipelineLoader`](crate::PipelineLoader) can turn into a pipeline) for
//! one `(variant, version)` pair. Publishing seals the payload in an
//! adv-store CRC envelope via an atomic rename; loading re-verifies the
//! CRC and quarantines corrupt files (`<name>.corrupt`), so a damaged blob
//! can never be built into a shard — the promotion state machine sees a
//! [`ZooError::BlobRejected`](crate::ZooError::BlobRejected) instead.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use adv_store::crc32;

use crate::{Result, ZooError};

/// An immutable weight payload shared by reference: cloning a `WeightBlob`
/// clones an `Arc`, never the bytes, so every shard, warmup probe, and
/// parity check reads the same allocation.
#[derive(Debug, Clone)]
pub struct WeightBlob {
    variant: u32,
    version: u32,
    crc: u32,
    bytes: Arc<[u8]>,
}

impl WeightBlob {
    /// Wraps raw payload bytes for `(variant, version)`.
    pub fn new(variant: u32, version: u32, payload: Vec<u8>) -> WeightBlob {
        let crc = crc32(&payload);
        WeightBlob {
            variant,
            version,
            crc,
            bytes: Arc::from(payload),
        }
    }

    /// Variant this blob belongs to.
    pub fn variant(&self) -> u32 {
        self.variant
    }

    /// Version of this blob within its variant.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// CRC32 of the payload — journaled with every promotion record so a
    /// resumed promotion can prove it is looking at the same bytes.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// The shared payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Directory of sealed weight blobs, one file per `(variant, version)`.
#[derive(Debug, Clone)]
pub struct BlobStore {
    root: PathBuf,
}

impl BlobStore {
    /// A blob store rooted at `root/blobs` (created lazily on publish).
    pub fn new(root: impl AsRef<Path>) -> BlobStore {
        BlobStore {
            root: root.as_ref().join("blobs"),
        }
    }

    /// The on-disk path of `(variant, version)`.
    pub fn path_for(&self, variant: u32, version: u32) -> PathBuf {
        self.root.join(format!("variant_{variant}_v{version}.blob"))
    }

    /// Seals `payload` as the blob for `(variant, version)` (atomic
    /// rename + CRC envelope via adv-store).
    ///
    /// # Errors
    ///
    /// [`ZooError::Store`] on I/O failure.
    pub fn publish(&self, variant: u32, version: u32, payload: &[u8]) -> Result<WeightBlob> {
        std::fs::create_dir_all(&self.root).map_err(adv_store::StoreError::Io)?;
        let path = self.path_for(variant, version);
        adv_store::save_artifact(&path, payload)?;
        Ok(WeightBlob::new(variant, version, payload.to_vec()))
    }

    /// Loads and CRC-verifies the blob for `(variant, version)`.
    ///
    /// # Errors
    ///
    /// [`ZooError::BlobRejected`] when the file is missing or fails
    /// envelope validation — in the corrupt case adv-store has already
    /// quarantined it to `<name>.corrupt`, so a retry cannot accidentally
    /// pick up the damaged bytes.
    pub fn load(&self, variant: u32, version: u32) -> Result<WeightBlob> {
        let path = self.path_for(variant, version);
        match adv_store::load_artifact(&path) {
            Ok(payload) => Ok(WeightBlob::new(variant, version, payload)),
            Err(e) => Err(ZooError::BlobRejected {
                variant,
                version,
                detail: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adv_zoo_blob_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    #[test]
    fn publish_then_load_roundtrips_and_shares_bytes() {
        let dir = tmp_dir("roundtrip");
        let store = BlobStore::new(&dir);
        let published = store.publish(3, 2, b"weights-bytes").expect("publish");
        let loaded = store.load(3, 2).expect("load");
        assert_eq!(loaded.bytes(), b"weights-bytes");
        assert_eq!(loaded.variant(), 3);
        assert_eq!(loaded.version(), 2);
        assert_eq!(loaded.crc(), published.crc());
        let clone = loaded.clone();
        assert!(std::ptr::eq(
            clone.bytes().as_ptr(),
            loaded.bytes().as_ptr()
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_blob_is_rejected_and_quarantined() {
        let dir = tmp_dir("corrupt");
        let store = BlobStore::new(&dir);
        store.publish(1, 1, b"good-weights").expect("publish");
        let path = store.path_for(1, 1);
        let mut bytes = std::fs::read(&path).expect("read blob");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt blob");
        match store.load(1, 1) {
            Err(ZooError::BlobRejected {
                variant, version, ..
            }) => {
                assert_eq!((variant, version), (1, 1));
            }
            other => panic!("expected BlobRejected, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt blob must be moved aside");
        assert!(
            path.with_extension("blob.corrupt").exists(),
            "quarantine file missing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_blob_is_rejected() {
        let dir = tmp_dir("missing");
        let store = BlobStore::new(&dir);
        assert!(matches!(
            store.load(9, 9),
            Err(ZooError::BlobRejected { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
