//! The promotion journal: every blue-green state transition, durably
//! framed through adv-store's CRC journal.
//!
//! One fixed-width record per transition. A promotion that dies (kill -9)
//! between records leaves an unfinished machine in the journal; recovery
//! ([`ModelZoo::open`](crate::ModelZoo::open)) replays the valid prefix —
//! adv-store truncates any torn tail — and either aborts the promotion
//! (no `Live` record: the flip never happened, the old version stays) or
//! completes the retirement (a `Live` record without `Retired`: the flip
//! is authoritative, the new version serves). There is no journal state
//! from which a half-promoted variant can be reconstructed.

use std::path::{Path, PathBuf};

use adv_store::Journal;

use crate::{Result, ZooError};

/// Journal context id: ties records to this schema ("ZPROM1" + version).
const JOURNAL_CONTEXT: u64 = 0x5a50_524f_4d31_0001;

/// Fixed record width: kind u8 + variant u32 + version u32 + crc u32.
const RECORD_BYTES: usize = 13;

/// The promotion state machine's stages, in order. `Aborted` is the
/// terminal stage of a rolled-back or resumed-and-cancelled promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PromotionStage {
    /// Blob loaded and CRC-verified; the promotion is on record.
    Staged,
    /// The candidate shard is up and replaying shadow traffic.
    Warming,
    /// The routing table flipped: the candidate serves live traffic.
    Live,
    /// The previous live shard has fully drained out.
    Retired,
    /// The promotion was rolled back before `Live` (or cancelled by
    /// recovery after a crash).
    Aborted,
}

impl PromotionStage {
    /// Stable wire tag.
    fn to_wire(self) -> u8 {
        match self {
            PromotionStage::Staged => 1,
            PromotionStage::Warming => 2,
            PromotionStage::Live => 3,
            PromotionStage::Retired => 4,
            PromotionStage::Aborted => 5,
        }
    }

    fn from_wire(tag: u8) -> Option<PromotionStage> {
        match tag {
            1 => Some(PromotionStage::Staged),
            2 => Some(PromotionStage::Warming),
            3 => Some(PromotionStage::Live),
            4 => Some(PromotionStage::Retired),
            5 => Some(PromotionStage::Aborted),
            _ => None,
        }
    }

    /// Display name, as it appears in probe output and journal dumps.
    pub fn name(self) -> &'static str {
        match self {
            PromotionStage::Staged => "staged",
            PromotionStage::Warming => "warming",
            PromotionStage::Live => "live",
            PromotionStage::Retired => "retired",
            PromotionStage::Aborted => "aborted",
        }
    }
}

impl std::fmt::Display for PromotionStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One journaled transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionRecord {
    /// The stage entered.
    pub stage: PromotionStage,
    /// Variant being promoted.
    pub variant: u32,
    /// Candidate version (for `Retired`: the version being retired).
    pub version: u32,
    /// CRC32 of the candidate blob (0 for direct installs and `Retired`).
    pub crc: u32,
}

impl PromotionRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_BYTES);
        out.push(self.stage.to_wire());
        out.extend_from_slice(&self.variant.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<PromotionRecord> {
        if bytes.len() != RECORD_BYTES {
            return None;
        }
        let take_u32 = |range: std::ops::Range<usize>| -> Option<u32> {
            bytes
                .get(range)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .map(u32::from_le_bytes)
        };
        Some(PromotionRecord {
            stage: PromotionStage::from_wire(*bytes.first()?)?,
            variant: take_u32(1..5)?,
            version: take_u32(5..9)?,
            crc: take_u32(9..13)?,
        })
    }
}

/// The durable promotion log. All appends fsync through adv-store's
/// journal framing, so a record that `append` returned `Ok` for survives
/// kill -9.
#[derive(Debug)]
pub struct PromotionLog {
    journal: Journal,
}

impl PromotionLog {
    /// The journal path under a zoo root.
    pub fn path_under(root: &Path) -> PathBuf {
        root.join("promotions.journal")
    }

    /// Opens (or creates) the log, replaying the valid record prefix.
    ///
    /// # Errors
    ///
    /// [`ZooError::Store`] on I/O failure.
    pub fn open(root: &Path) -> Result<PromotionLog> {
        let journal = Journal::open(Self::path_under(root), JOURNAL_CONTEXT)?;
        Ok(PromotionLog { journal })
    }

    /// Appends one transition durably.
    ///
    /// # Errors
    ///
    /// [`ZooError::Store`] on I/O failure.
    pub fn append(&mut self, record: PromotionRecord) -> Result<()> {
        self.journal.append(&record.encode())?;
        Ok(())
    }

    /// Every decodable record currently in the log, in append order.
    /// Undecodable payloads (foreign schema) surface as an error rather
    /// than being silently skipped.
    ///
    /// # Errors
    ///
    /// [`ZooError::JournalSchema`] when a CRC-valid record does not parse
    /// as a promotion record.
    pub fn records(&self) -> Result<Vec<PromotionRecord>> {
        self.journal
            .records()
            .iter()
            .map(|raw| {
                PromotionRecord::decode(raw).ok_or_else(|| ZooError::JournalSchema {
                    detail: format!("unparseable {}-byte record", raw.len()),
                })
            })
            .collect()
    }

    /// Number of records replayed from disk at open time.
    pub fn recovered(&self) -> usize {
        self.journal.recovered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adv_zoo_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn rec(stage: PromotionStage, variant: u32, version: u32) -> PromotionRecord {
        PromotionRecord {
            stage,
            variant,
            version,
            crc: 0xABCD_1234,
        }
    }

    #[test]
    fn records_roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let written = vec![
            rec(PromotionStage::Staged, 1, 2),
            rec(PromotionStage::Warming, 1, 2),
            rec(PromotionStage::Live, 1, 2),
            rec(PromotionStage::Retired, 1, 1),
        ];
        {
            let mut log = PromotionLog::open(&dir).expect("open");
            for r in &written {
                log.append(*r).expect("append");
            }
        }
        let log = PromotionLog::open(&dir).expect("reopen");
        assert_eq!(log.recovered(), 4);
        assert_eq!(log.records().expect("decode"), written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_stage_tag_roundtrips() {
        for stage in [
            PromotionStage::Staged,
            PromotionStage::Warming,
            PromotionStage::Live,
            PromotionStage::Retired,
            PromotionStage::Aborted,
        ] {
            let r = rec(stage, 7, 9);
            assert_eq!(PromotionRecord::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn foreign_bytes_do_not_decode() {
        assert_eq!(PromotionRecord::decode(&[0u8; RECORD_BYTES]), None);
        assert_eq!(PromotionRecord::decode(&[1u8; RECORD_BYTES - 1]), None);
        assert_eq!(PromotionRecord::decode(&[99u8; RECORD_BYTES]), None);
    }

    #[test]
    fn torn_tail_is_dropped_on_reopen() {
        let dir = tmp_dir("torn");
        {
            let mut log = PromotionLog::open(&dir).expect("open");
            log.append(rec(PromotionStage::Staged, 1, 1)).expect("a");
            log.append(rec(PromotionStage::Live, 1, 1)).expect("b");
        }
        let path = PromotionLog::path_under(&dir);
        let bytes = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).expect("tear tail");
        let log = PromotionLog::open(&dir).expect("reopen");
        assert_eq!(log.recovered(), 1, "torn record must be dropped");
        assert_eq!(
            log.records().expect("decode")[0].stage,
            PromotionStage::Staged
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
