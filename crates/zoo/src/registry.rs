//! The model zoo: per-variant engine shards behind an epoch-counted
//! routing table, with journaled blue-green promotion.
//!
//! ## Isolation
//!
//! Every variant runs its own [`ServeEngine`] shard — its own worker
//! pool, bounded queue, circuit breaker, restart budget, and
//! [`EngineHealth`]. A panicking or degrading variant exhausts *its*
//! budgets; the routing table keeps every other shard untouched, so their
//! verdict streams are bit-identical to a fault-free run (pinned by the
//! isolation tests).
//!
//! ## Promotion state machine
//!
//! ```text
//!            blob CRC ok            shard up          parity+health ok
//! promote() ──────────────▶ Staged ─────────▶ Warming ───────────────▶ Live ──▶ Retired
//!                │                     │              │                  (old shard drained)
//!                │ corrupt → quarantine│ loader/spawn │ mismatch, unhealthy,
//!                ▼                     ▼              ▼ injected fault
//!           BlobRejected            Aborted        Aborted (auto-rollback)
//! ```
//!
//! Every transition is fsync-journaled through adv-store *before* it takes
//! effect in memory, so a kill -9 at any point resumes deterministically:
//! no `Live` record → the flip never happened and recovery aborts the
//! promotion (old version keeps serving); a `Live` record → the flip is
//! authoritative and recovery finishes the retirement. The routing table
//! itself is an immutable `Arc` swapped under an epoch counter — in-flight
//! requests finish on the table (and shard) they resolved, and a retiring
//! shard is only shut down once every reader has released it, so a
//! successful flip drops zero requests.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use adv_chaos::FaultInjector;
use adv_magnet::DefensePipeline;
use adv_serve::{
    EngineHealth, MetricsSnapshot, PendingVerdict, RequestTag, RouteInfo, ServeConfig, ServeEngine,
    ServeError, VariantRouter,
};
use adv_tensor::Tensor;

use crate::blob::{BlobStore, WeightBlob};
use crate::journal::{PromotionLog, PromotionRecord, PromotionStage};
use crate::metrics::{ZooMetrics, ZooStats};
use crate::{Result, ZooError};

/// Fault site: blob staging (`FaultInjector` errors fail the promotion
/// before anything is journaled).
pub const SITE_STAGE: &str = "zoo/stage";
/// Fault site: shadow warm-up (one decision per warm-up sample; an
/// injected error rolls the promotion back).
pub const SITE_WARM: &str = "zoo/warm";
/// Fault site: the routing-table flip (an injected error aborts the
/// promotion at the last gate — the old version keeps serving).
pub const SITE_FLIP: &str = "zoo/flip";

/// Builds a defense pipeline from a CRC-verified weight blob. The zoo
/// never interprets blob bytes itself; tests use cheap stub loaders and
/// production wires the MagNet variants in.
pub trait PipelineLoader: Send + Sync + std::fmt::Debug {
    /// Deserializes `blob` into a ready-to-serve pipeline.
    ///
    /// # Errors
    ///
    /// A human-readable reason; the zoo rolls the promotion back and
    /// journals `Aborted`.
    fn build(&self, blob: &WeightBlob) -> std::result::Result<Arc<dyn DefensePipeline>, String>;
}

/// A loader for zoos that only [`install`](ModelZoo::install) in-process
/// pipelines and never promote from blobs (the probe binaries): every
/// `build` is refused, so a stray blob promotion rolls back instead of
/// serving bytes nobody can interpret.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullLoader;

impl PipelineLoader for NullLoader {
    fn build(&self, _blob: &WeightBlob) -> std::result::Result<Arc<dyn DefensePipeline>, String> {
        Err("null loader: this zoo only serves installed pipelines".into())
    }
}

/// Why a promotion was automatically rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RollbackReason {
    /// The loader could not turn the (CRC-valid) blob into a pipeline.
    LoaderFailed(String),
    /// The candidate shard failed to start or errored during warm-up.
    WarmFailed(String),
    /// Shadow parity: the candidate disagreed with the live shard on more
    /// warm-up verdicts than the configured tolerance.
    ShadowMismatch {
        /// Disagreeing verdicts observed.
        mismatches: u64,
        /// Configured tolerance ([`ZooConfig::max_shadow_mismatches`]).
        allowed: u64,
    },
    /// The candidate shard's health regressed during warm-up.
    ShardUnhealthy(EngineHealth),
    /// A seeded chaos fault fired at a `zoo/*` site.
    InjectedFault(String),
}

impl std::fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackReason::LoaderFailed(d) => write!(f, "loader failed: {d}"),
            RollbackReason::WarmFailed(d) => write!(f, "warm-up failed: {d}"),
            RollbackReason::ShadowMismatch {
                mismatches,
                allowed,
            } => write!(
                f,
                "shadow parity regressed: {mismatches} mismatches (allowed {allowed})"
            ),
            RollbackReason::ShardUnhealthy(h) => write!(f, "candidate shard is {h}"),
            RollbackReason::InjectedFault(d) => write!(f, "injected fault: {d}"),
        }
    }
}

/// Outcome of a successful [`ModelZoo::promote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionReport {
    /// Variant promoted.
    pub variant: u32,
    /// Version now live.
    pub version: u32,
    /// Routing-table epoch after the flip.
    pub epoch: u64,
    /// Shadow-parity mismatches observed during warm-up (≤ tolerance).
    pub shadow_mismatches: u64,
    /// The version that was retired, if the variant was already live.
    pub retired_version: Option<u32>,
}

/// Zoo configuration. `root` hosts the blob store and promotion journal;
/// `shard` is the per-variant engine template.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Durable root: `<root>/blobs/` and `<root>/promotions.journal`.
    pub root: PathBuf,
    /// Engine configuration applied to every variant shard.
    pub shard: ServeConfig,
    /// Shadow traffic replayed through a warming candidate (and mirrored
    /// to the live shard for the verdict-parity probe).
    pub warmup: Vec<Tensor>,
    /// Parity mismatches tolerated before auto-rollback (default 0: any
    /// disagreement with the live shard kills the promotion).
    pub max_shadow_mismatches: u64,
    /// Per-verdict wait bound during warm-up.
    pub warm_timeout: Duration,
    /// Bound on waiting for in-flight readers to release a retiring shard
    /// before falling back to drain-in-place.
    pub retire_wait: Duration,
    /// Seeded chaos injector for the `zoo/*` fault sites.
    pub injector: Option<Arc<FaultInjector>>,
    /// Crash-harness hook: `process::abort()` immediately after the given
    /// stage is journaled, simulating kill -9 mid-promotion (used by
    /// `zoo_probe` and the CI hot-swap soak; never set in production).
    pub abort_after: Option<PromotionStage>,
}

impl ZooConfig {
    /// A config with serving defaults, rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> ZooConfig {
        ZooConfig {
            root: root.into(),
            shard: ServeConfig::default(),
            warmup: Vec::new(),
            max_shadow_mismatches: 0,
            warm_timeout: Duration::from_secs(5),
            retire_wait: Duration::from_secs(2),
            injector: None,
            abort_after: None,
        }
    }
}

/// One variant's serving shard: a version-stamped engine.
#[derive(Debug)]
struct Shard {
    version: u32,
    engine: ServeEngine,
}

/// The immutable routing table. Readers clone the `Arc` and resolve
/// shards by reference — they never clone shard `Arc`s, so
/// `Arc::strong_count` on a shard counts exactly the tables (and the
/// retirer) that reference it.
#[derive(Debug)]
struct RoutingTable {
    epoch: u64,
    draining: bool,
    shards: BTreeMap<u32, Arc<Shard>>,
}

/// Counter totals carried over from retired shards so per-variant
/// accounting identities survive hot swaps.
#[derive(Debug, Default, Clone)]
struct RetiredTotals {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    batches: u64,
    max_queue_depth: u64,
    detect: Duration,
    reform: Duration,
    classify: Duration,
    shed_expired: u64,
    batch_retries: u64,
    worker_panics: u64,
    worker_restarts: u64,
    responses_abandoned: u64,
    degraded_responses: u64,
    breaker_opened: u64,
    breaker_closed: u64,
}

impl RetiredTotals {
    fn absorb(&mut self, s: &MetricsSnapshot) {
        self.submitted += s.submitted;
        self.rejected += s.rejected;
        self.completed += s.completed;
        self.failed += s.failed;
        self.batches += s.batches;
        self.max_queue_depth = self.max_queue_depth.max(s.max_queue_depth);
        self.detect += s.detect_time;
        self.reform += s.reform_time;
        self.classify += s.classify_time;
        self.shed_expired += s.shed_expired;
        self.batch_retries += s.batch_retries;
        self.worker_panics += s.worker_panics;
        self.worker_restarts += s.worker_restarts;
        self.responses_abandoned += s.responses_abandoned;
        self.degraded_responses += s.degraded_responses;
        self.breaker_opened += s.breaker_opened;
        self.breaker_closed += s.breaker_closed;
    }

    /// Folds the carried totals into a live snapshot. Latency percentiles
    /// and mean batch size stay those of the live shard (histograms do not
    /// merge across engines); every counter is cumulative across versions.
    fn merge_into(&self, s: &mut MetricsSnapshot) {
        s.submitted += self.submitted;
        s.rejected += self.rejected;
        s.completed += self.completed;
        s.failed += self.failed;
        s.batches += self.batches;
        s.max_queue_depth = s.max_queue_depth.max(self.max_queue_depth);
        s.detect_time += self.detect;
        s.reform_time += self.reform;
        s.classify_time += self.classify;
        s.shed_expired += self.shed_expired;
        s.batch_retries += self.batch_retries;
        s.worker_panics += self.worker_panics;
        s.worker_restarts += self.worker_restarts;
        s.responses_abandoned += self.responses_abandoned;
        s.degraded_responses += self.degraded_responses;
        s.breaker_opened += self.breaker_opened;
        s.breaker_closed += self.breaker_closed;
    }
}

/// State serialized under one mutex: the journal plus promotion progress.
/// Held for the whole of a `promote()`/`install()` call so promotions
/// never interleave; the submit path only touches the `RwLock`ed table.
#[derive(Debug)]
struct Inner {
    log: PromotionLog,
}

/// The variant registry: every MagNet variant served concurrently from
/// one process, with journaled blue-green promotion. See the module docs
/// for the state machine and crash-recovery contract.
#[derive(Debug)]
pub struct ModelZoo {
    cfg: ZooConfig,
    loader: Arc<dyn PipelineLoader>,
    blobs: BlobStore,
    metrics: ZooMetrics,
    inner: Mutex<Inner>,
    table: RwLock<Arc<RoutingTable>>,
    retired: Mutex<BTreeMap<u32, RetiredTotals>>,
}

impl ModelZoo {
    /// Opens the zoo at `cfg.root`, replaying the promotion journal.
    ///
    /// Recovery resolves every interrupted promotion: machines without a
    /// `Live` record are journaled `Aborted` (the flip never happened);
    /// `Live` records missing their `Retired` are closed out. The routing
    /// table is rebuilt from the last `Live` version of each variant whose
    /// blob still CRC-verifies — a blob that went corrupt on disk (or
    /// whose CRC no longer matches the journaled one) is quarantined and
    /// its variant left unrouted rather than ever serving doubtful bytes.
    ///
    /// # Errors
    ///
    /// [`ZooError::Store`] on journal I/O, [`ZooError::JournalSchema`] on
    /// foreign journal contents, [`ZooError::Serve`] if a recovered
    /// shard's engine cannot start.
    pub fn open(loader: Arc<dyn PipelineLoader>, cfg: ZooConfig) -> Result<ModelZoo> {
        std::fs::create_dir_all(&cfg.root).map_err(adv_store::StoreError::Io)?;
        let blobs = BlobStore::new(&cfg.root);
        let mut log = PromotionLog::open(&cfg.root)?;
        let records = log.records()?;
        let metrics = ZooMetrics::default();

        // Replay: final state per variant.
        let mut live: BTreeMap<u32, (u32, u32)> = BTreeMap::new(); // variant -> (version, crc)
        let mut pending: BTreeMap<u32, u32> = BTreeMap::new(); // variant -> candidate version
        let mut unretired: BTreeMap<u32, u32> = BTreeMap::new(); // variant -> previous live version
        for r in &records {
            match r.stage {
                PromotionStage::Staged | PromotionStage::Warming => {
                    pending.insert(r.variant, r.version);
                }
                PromotionStage::Live => {
                    pending.remove(&r.variant);
                    if let Some((prev_version, _)) = live.insert(r.variant, (r.version, r.crc)) {
                        unretired.insert(r.variant, prev_version);
                    }
                }
                PromotionStage::Retired => {
                    unretired.remove(&r.variant);
                }
                PromotionStage::Aborted => {
                    pending.remove(&r.variant);
                }
            }
        }

        // Close out every interrupted machine before serving anything.
        for (variant, version) in pending {
            log.append(PromotionRecord {
                stage: PromotionStage::Aborted,
                variant,
                version,
                crc: 0,
            })?;
            metrics.resumed_aborts.incr();
        }
        for (variant, version) in unretired {
            log.append(PromotionRecord {
                stage: PromotionStage::Retired,
                variant,
                version,
                crc: 0,
            })?;
            metrics.resumed_retires.incr();
        }

        // Rebuild shards from the last Live version of each variant.
        let mut shards = BTreeMap::new();
        for (variant, (version, journaled_crc)) in live {
            let blob = match blobs.load(variant, version) {
                Ok(blob) => blob,
                Err(_) => {
                    metrics.blob_rejects.incr();
                    continue;
                }
            };
            if blob.crc() != journaled_crc {
                // CRC-valid envelope but not the journaled bytes: the blob
                // was replaced out-of-band. Quarantine; never serve it.
                adv_store::quarantine(&blobs.path_for(variant, version));
                metrics.blob_rejects.incr();
                continue;
            }
            let pipeline = match loader.build(&blob) {
                Ok(p) => p,
                Err(_) => {
                    metrics.blob_rejects.incr();
                    continue;
                }
            };
            let engine = ServeEngine::start(pipeline, cfg.shard.clone())?;
            shards.insert(variant, Arc::new(Shard { version, engine }));
        }

        metrics.live_variants.set(shards.len() as f64);
        metrics.routing_epoch.set(0.0);
        Ok(ModelZoo {
            blobs,
            loader,
            cfg,
            metrics,
            inner: Mutex::new(Inner { log }),
            table: RwLock::new(Arc::new(RoutingTable {
                epoch: 0,
                draining: false,
                shards,
            })),
            retired: Mutex::new(BTreeMap::new()),
        })
    }

    /// Seals `payload` as the weight blob for `(variant, version)`,
    /// ready to [`promote`](Self::promote).
    ///
    /// # Errors
    ///
    /// [`ZooError::Store`] on I/O failure.
    pub fn publish(&self, variant: u32, version: u32, payload: &[u8]) -> Result<WeightBlob> {
        self.blobs.publish(variant, version, payload)
    }

    /// Installs an already-built pipeline as `variant`'s live shard
    /// (version 0, unjournaled). This is the bootstrap path for probes and
    /// tests — unlike [`promote`](Self::promote) it is *not* durable:
    /// reopening the zoo forgets installs. Replaces (and drains) any
    /// previous shard for the variant.
    ///
    /// # Errors
    ///
    /// [`ZooError::Draining`] after [`VariantRouter::begin_drain`];
    /// [`ZooError::Serve`] if the shard cannot start.
    pub fn install(&self, variant: u32, pipeline: Arc<dyn DefensePipeline>) -> Result<()> {
        let _inner = self.lock_inner();
        if self.current_table().draining {
            return Err(ZooError::Draining);
        }
        let engine = ServeEngine::start(pipeline, self.cfg.shard.clone())?;
        let shard = Arc::new(Shard { version: 0, engine });
        let (old_table, new_table) = self.flip_table(|cur| {
            let mut shards = cur.shards.clone();
            shards.insert(variant, Arc::clone(&shard));
            RoutingTable {
                epoch: 0,
                draining: cur.draining,
                shards,
            }
        });
        if new_table.draining {
            shard.engine.begin_drain();
        }
        let old_shard = old_table.shards.get(&variant).map(Arc::clone);
        drop(old_table);
        if let Some(old_shard) = old_shard {
            self.retire_shard(variant, old_shard);
        }
        Ok(())
    }

    /// Blue-green promotion of `(variant, version)`: Staged → Warming →
    /// Live → Retired, with auto-rollback. See the module docs for the
    /// full contract. Returns the report of a completed flip.
    ///
    /// # Errors
    ///
    /// [`ZooError::BlobRejected`] when the blob is missing or corrupt
    /// (quarantined; nothing journaled, the promotion never starts);
    /// [`ZooError::RolledBack`] for every started-then-aborted promotion
    /// (loader failure, warm-up failure, shadow-parity regression,
    /// candidate health regression, injected `zoo/*` fault) — the journal
    /// gains an `Aborted` record and the previous version keeps serving,
    /// verdict-stream untouched; [`ZooError::Draining`] once draining.
    pub fn promote(&self, variant: u32, version: u32) -> Result<PromotionReport> {
        let mut inner = self.lock_inner();
        if self.current_table().draining {
            return Err(ZooError::Draining);
        }

        // ── Stage: fault gate + CRC-verified blob load ──
        if let Err(detail) = self.apply_fault(SITE_STAGE) {
            self.metrics.rollbacks.incr();
            return Err(ZooError::RolledBack {
                variant,
                version,
                reason: RollbackReason::InjectedFault(detail),
            });
        }
        let blob = match self.blobs.load(variant, version) {
            Ok(blob) => blob,
            Err(e) => {
                self.metrics.blob_rejects.incr();
                return Err(e);
            }
        };
        inner.log.append(PromotionRecord {
            stage: PromotionStage::Staged,
            variant,
            version,
            crc: blob.crc(),
        })?;
        self.crash_hook(PromotionStage::Staged);

        // ── Build + start the candidate shard ──
        let pipeline = match self.loader.build(&blob) {
            Ok(p) => p,
            Err(detail) => {
                return self.rollback(
                    &mut inner,
                    variant,
                    version,
                    RollbackReason::LoaderFailed(detail),
                )
            }
        };
        let candidate = match ServeEngine::start(pipeline, self.cfg.shard.clone()) {
            Ok(engine) => engine,
            Err(e) => {
                return self.rollback(
                    &mut inner,
                    variant,
                    version,
                    RollbackReason::WarmFailed(e.to_string()),
                )
            }
        };
        inner.log.append(PromotionRecord {
            stage: PromotionStage::Warming,
            variant,
            version,
            crc: blob.crc(),
        })?;
        self.crash_hook(PromotionStage::Warming);

        // ── Warm on shadow traffic with the live shard as parity oracle ──
        let table_at_warm = self.current_table();
        let live_shard = table_at_warm.shards.get(&variant).map(Arc::clone);
        let warm = self.warm_candidate(&candidate, live_shard.as_deref(), variant);
        drop(live_shard);
        drop(table_at_warm);
        let shadow_mismatches = match warm {
            Ok(m) => m,
            Err(reason) => {
                let _ = candidate.shutdown();
                return self.rollback(&mut inner, variant, version, reason);
            }
        };

        // ── Flip gate ──
        if let Err(detail) = self.apply_fault(SITE_FLIP) {
            let _ = candidate.shutdown();
            return self.rollback(
                &mut inner,
                variant,
                version,
                RollbackReason::InjectedFault(detail),
            );
        }

        // ── Live: journal first (the record is the commit point), then
        //    swap the table atomically ──
        inner.log.append(PromotionRecord {
            stage: PromotionStage::Live,
            variant,
            version,
            crc: blob.crc(),
        })?;
        self.crash_hook(PromotionStage::Live);
        let new_shard = Arc::new(Shard {
            version,
            engine: candidate,
        });
        let (old_table, new_table) = self.flip_table(|cur| {
            let mut shards = cur.shards.clone();
            shards.insert(variant, Arc::clone(&new_shard));
            RoutingTable {
                epoch: 0,
                draining: cur.draining,
                shards,
            }
        });
        if new_table.draining {
            new_shard.engine.begin_drain();
        }
        self.metrics.promotions.incr();

        // ── Retire the previous shard: in-flight requests finish on the
        //    old version, then it drains out ──
        let old_shard = old_table.shards.get(&variant).map(Arc::clone);
        drop(old_table);
        let retired_version = match old_shard {
            Some(old_shard) => {
                let old_version = old_shard.version;
                self.retire_shard(variant, old_shard);
                inner.log.append(PromotionRecord {
                    stage: PromotionStage::Retired,
                    variant,
                    version: old_version,
                    crc: 0,
                })?;
                self.crash_hook(PromotionStage::Retired);
                Some(old_version)
            }
            None => None,
        };

        Ok(PromotionReport {
            variant,
            version,
            epoch: new_table.epoch,
            shadow_mismatches,
            retired_version,
        })
    }

    /// The version currently live for `variant`, if any.
    pub fn live_version(&self, variant: u32) -> Option<u32> {
        self.current_table().shards.get(&variant).map(|s| s.version)
    }

    /// Zoo-level counters (promotions, rollbacks, parity, routing state).
    pub fn stats(&self) -> ZooStats {
        self.metrics.snapshot()
    }

    /// Prometheus exposition of the `zoo.*` registry.
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.obs_snapshot().to_prometheus()
    }

    // ── internals ────────────────────────────────────────────────────

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn current_table(&self) -> Arc<RoutingTable> {
        Arc::clone(&self.table.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Atomically replaces the routing table: builds the successor from
    /// the *current* table under the write lock (so concurrent drains are
    /// never lost), bumps the epoch, and publishes the new `Arc`.
    fn flip_table<F>(&self, build: F) -> (Arc<RoutingTable>, Arc<RoutingTable>)
    where
        F: FnOnce(&RoutingTable) -> RoutingTable,
    {
        let mut guard = self.table.write().unwrap_or_else(|p| p.into_inner());
        let old = Arc::clone(&guard);
        let mut next = build(&old);
        next.epoch = old.epoch + 1;
        let next = Arc::new(next);
        *guard = Arc::clone(&next);
        drop(guard);
        self.metrics.routing_epoch.set(next.epoch as f64);
        self.metrics.live_variants.set(next.shards.len() as f64);
        (old, next)
    }

    fn apply_fault(&self, site: &str) -> std::result::Result<(), String> {
        match &self.cfg.injector {
            Some(injector) => injector.apply(site).map_err(|e| e.to_string()),
            None => Ok(()),
        }
    }

    fn crash_hook(&self, stage: PromotionStage) {
        if self.cfg.abort_after == Some(stage) {
            // Simulated kill -9 for the crash-recovery harness: die without
            // unwinding, exactly as the CI soak's real `kill -9` would.
            std::process::abort();
        }
    }

    fn rollback(
        &self,
        inner: &mut Inner,
        variant: u32,
        version: u32,
        reason: RollbackReason,
    ) -> Result<PromotionReport> {
        self.metrics.rollbacks.incr();
        inner.log.append(PromotionRecord {
            stage: PromotionStage::Aborted,
            variant,
            version,
            crc: 0,
        })?;
        Err(ZooError::RolledBack {
            variant,
            version,
            reason,
        })
    }

    /// Replays the shadow corpus through the candidate; each verdict is
    /// compared against the live shard's (when one exists). Returns the
    /// mismatch count, or the rollback reason.
    fn warm_candidate(
        &self,
        candidate: &ServeEngine,
        live: Option<&Shard>,
        variant: u32,
    ) -> std::result::Result<u64, RollbackReason> {
        let mut mismatches = 0u64;
        let tag = RequestTag::default().with_variant(variant);
        for input in &self.cfg.warmup {
            if let Err(detail) = self.apply_fault(SITE_WARM) {
                return Err(RollbackReason::InjectedFault(detail));
            }
            let pending = candidate
                .submit_tagged(input.clone(), tag)
                .map_err(|e| RollbackReason::WarmFailed(e.to_string()))?;
            let answer = pending
                .wait_timeout(self.cfg.warm_timeout)
                .map_err(|e| RollbackReason::WarmFailed(e.to_string()))?;
            if let Some(live) = live {
                let reference = live
                    .engine
                    .submit_tagged(input.clone(), tag)
                    .ok()
                    .and_then(|p| p.wait_timeout(self.cfg.warm_timeout).ok());
                // A live shard that cannot answer shadow traffic (it may be
                // degraded or saturated by real load) skips the parity
                // probe for this sample rather than failing the candidate.
                if let Some(reference) = reference {
                    if reference.verdict != answer.verdict {
                        mismatches += 1;
                        self.metrics.shadow_mismatches.incr();
                    }
                }
            }
        }
        if mismatches > self.cfg.max_shadow_mismatches {
            return Err(RollbackReason::ShadowMismatch {
                mismatches,
                allowed: self.cfg.max_shadow_mismatches,
            });
        }
        let health = candidate.health();
        if health > EngineHealth::Healthy {
            return Err(RollbackReason::ShardUnhealthy(health));
        }
        Ok(mismatches)
    }

    /// Shuts a replaced shard down without dropping requests: waits (with
    /// a bound) for every in-flight reader to release the shard, then
    /// drains and joins it, folding its final counters into the variant's
    /// retired totals.
    fn retire_shard(&self, variant: u32, shard: Arc<Shard>) {
        // lint-ok(gated-clocks): bounds the reader-release wait — the
        // retire deadline is part of the hot-swap serving contract, not
        // incidental instrumentation.
        let deadline = Instant::now() + self.cfg.retire_wait;
        // lint-ok(gated-clocks): polls the same retire deadline as above.
        while Arc::strong_count(&shard) > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(200));
        }
        let finals = match Arc::try_unwrap(shard) {
            Ok(shard) => shard.engine.shutdown(),
            Err(shard) => {
                // A reader is still holding the shard past the bound (it
                // can only be mid-submit). Stop admissions and snapshot;
                // the engine finishes draining when the last Arc drops.
                shard.engine.begin_drain();
                shard.engine.metrics()
            }
        };
        let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        retired.entry(variant).or_default().absorb(&finals);
        drop(retired);
        self.metrics.retired_shards.incr();
    }
}

impl VariantRouter for ModelZoo {
    fn submit_routed(
        &self,
        variant: u32,
        input: Tensor,
        tag: RequestTag,
        budget: Duration,
    ) -> adv_serve::Result<PendingVerdict> {
        let table = self.current_table();
        let Some(shard) = table.shards.get(&variant) else {
            self.metrics.variant_unavailable.incr();
            return Err(ServeError::VariantUnavailable(variant));
        };
        if shard.engine.health() == EngineHealth::Failed {
            // A failed shard's queue is closed; report it as an unroutable
            // variant (clients can fail over) instead of ShuttingDown,
            // which would read as whole-process drain.
            self.metrics.variant_unavailable.incr();
            return Err(ServeError::VariantUnavailable(variant));
        }
        shard
            .engine
            .submit_tagged_with_deadline(input, tag.with_variant(variant), budget)
    }

    /// Aggregate health with isolation semantics: one sick variant makes
    /// the zoo *Degraded*, never Failed — the front door only reports
    /// Failed when every shard has failed (and Draining only after
    /// [`begin_drain`](VariantRouter::begin_drain)).
    fn router_health(&self) -> EngineHealth {
        let table = self.current_table();
        if table.draining {
            return EngineHealth::Draining;
        }
        if table.shards.is_empty() {
            return EngineHealth::Degraded;
        }
        let mut worst = EngineHealth::Healthy;
        let mut all_failed = true;
        for shard in table.shards.values() {
            let h = shard.engine.health();
            worst = worst.max(h);
            all_failed &= h == EngineHealth::Failed;
        }
        if all_failed {
            EngineHealth::Failed
        } else if worst > EngineHealth::Healthy {
            EngineHealth::Degraded
        } else {
            EngineHealth::Healthy
        }
    }

    fn routes(&self) -> Vec<RouteInfo> {
        self.current_table()
            .shards
            .iter()
            .map(|(&variant, shard)| RouteInfo {
                variant,
                version: shard.version,
                health: shard.engine.health(),
            })
            .collect()
    }

    fn routing_epoch(&self) -> u64 {
        self.current_table().epoch
    }

    fn begin_drain(&self) {
        let (_, new_table) = self.flip_table(|cur| RoutingTable {
            epoch: 0,
            draining: true,
            shards: cur.shards.clone(),
        });
        for shard in new_table.shards.values() {
            shard.engine.begin_drain();
        }
    }

    fn variant_metrics(&self, variant: u32) -> Option<MetricsSnapshot> {
        let table = self.current_table();
        let live = table.shards.get(&variant).map(|s| s.engine.metrics());
        let retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        let carried = retired.get(&variant).cloned();
        drop(retired);
        match (live, carried) {
            (Some(mut snapshot), Some(totals)) => {
                totals.merge_into(&mut snapshot);
                Some(snapshot)
            }
            (Some(snapshot), None) => Some(snapshot),
            (None, Some(totals)) => {
                let mut snapshot = empty_snapshot();
                totals.merge_into(&mut snapshot);
                Some(snapshot)
            }
            (None, None) => None,
        }
    }
}

/// An all-zero snapshot to merge retired totals into when a variant has no
/// live shard left.
fn empty_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        submitted: 0,
        rejected: 0,
        completed: 0,
        failed: 0,
        batches: 0,
        max_queue_depth: 0,
        mean_batch_size: 0.0,
        p50_latency: Duration::ZERO,
        p99_latency: Duration::ZERO,
        detect_time: Duration::ZERO,
        reform_time: Duration::ZERO,
        classify_time: Duration::ZERO,
        shed_expired: 0,
        batch_retries: 0,
        worker_panics: 0,
        worker_restarts: 0,
        responses_abandoned: 0,
        degraded_responses: 0,
        breaker_opened: 0,
        breaker_closed: 0,
    }
}
