//! Zoo-level counters on a private `adv-obs` registry: promotion outcomes,
//! shadow parity, blob hygiene, and routing-table state.
//!
//! Per-request serving counters stay on each shard's own engine registry
//! (`serve.*`); the `zoo.*` names here count only what the zoo itself does
//! — promotions, rollbacks, flips, and refusals — so the two registries
//! never cross-count.

use std::sync::Arc;

use adv_obs::{Counter, Gauge, Registry, Snapshot};

/// Point-in-time view of the zoo counters, from [`ZooMetrics::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZooStats {
    /// Promotions that reached Live (the routing table flipped).
    pub promotions: u64,
    /// Promotions auto-rolled back before going Live.
    pub rollbacks: u64,
    /// Shadow-warmup verdicts that disagreed with the live shard.
    pub shadow_mismatches: u64,
    /// Weight blobs rejected at load time (corrupt → quarantined, or
    /// missing); a rejected blob never reaches a shard.
    pub blob_rejects: u64,
    /// Routed submissions refused because the variant had no live shard.
    pub variant_unavailable: u64,
    /// Epoch of the current routing table (bumps on every flip).
    pub routing_epoch: u64,
    /// Variants currently admitting traffic.
    pub live_variants: u64,
    /// Interrupted promotions aborted during journal recovery.
    pub resumed_aborts: u64,
    /// Interrupted retirements completed during journal recovery.
    pub resumed_retires: u64,
    /// Shards retired after a successful flip (old versions drained out).
    pub retired_shards: u64,
}

/// Shared zoo counters on a private registry.
#[derive(Debug)]
pub(crate) struct ZooMetrics {
    registry: Arc<Registry>,
    pub(crate) promotions: Arc<Counter>,
    pub(crate) rollbacks: Arc<Counter>,
    pub(crate) shadow_mismatches: Arc<Counter>,
    pub(crate) blob_rejects: Arc<Counter>,
    pub(crate) variant_unavailable: Arc<Counter>,
    pub(crate) routing_epoch: Arc<Gauge>,
    pub(crate) live_variants: Arc<Gauge>,
    pub(crate) resumed_aborts: Arc<Counter>,
    pub(crate) resumed_retires: Arc<Counter>,
    pub(crate) retired_shards: Arc<Counter>,
}

impl Default for ZooMetrics {
    fn default() -> Self {
        let registry = Arc::new(Registry::new());
        ZooMetrics {
            promotions: registry.counter("zoo.promotions"),
            rollbacks: registry.counter("zoo.rollbacks"),
            shadow_mismatches: registry.counter("zoo.shadow_mismatches"),
            blob_rejects: registry.counter("zoo.blob_rejects"),
            variant_unavailable: registry.counter("zoo.variant_unavailable"),
            routing_epoch: registry.gauge("zoo.routing_epoch"),
            live_variants: registry.gauge("zoo.live_variants"),
            resumed_aborts: registry.counter("zoo.resumed_aborts"),
            resumed_retires: registry.counter("zoo.resumed_retires"),
            retired_shards: registry.counter("zoo.retired_shards"),
            registry,
        }
    }
}

impl ZooMetrics {
    /// Raw `adv-obs` snapshot, for the Prometheus/JSON exporters.
    pub(crate) fn obs_snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    pub(crate) fn snapshot(&self) -> ZooStats {
        ZooStats {
            promotions: self.promotions.get(),
            rollbacks: self.rollbacks.get(),
            shadow_mismatches: self.shadow_mismatches.get(),
            blob_rejects: self.blob_rejects.get(),
            variant_unavailable: self.variant_unavailable.get(),
            routing_epoch: self.routing_epoch.get() as u64,
            live_variants: self.live_variants.get() as u64,
            resumed_aborts: self.resumed_aborts.get(),
            resumed_retires: self.resumed_retires.get(),
            retired_shards: self.retired_shards.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ZooMetrics::default();
        m.promotions.incr();
        m.rollbacks.incr();
        m.rollbacks.incr();
        m.shadow_mismatches.add(3);
        m.routing_epoch.set(7.0);
        m.live_variants.set(2.0);
        let s = m.snapshot();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.rollbacks, 2);
        assert_eq!(s.shadow_mismatches, 3);
        assert_eq!(s.routing_epoch, 7);
        assert_eq!(s.live_variants, 2);
        let prom = m.obs_snapshot().to_prometheus();
        assert!(prom.contains("zoo_promotions 1"), "{prom}");
        assert!(prom.contains("zoo_rollbacks 2"), "{prom}");
    }
}
