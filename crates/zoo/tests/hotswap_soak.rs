//! Soak: client threads hammer the routing table while promotions flip it
//! underneath them. The zero-drop contract — no request accepted before a
//! flip is lost by it, and no request observes `VariantUnavailable` for a
//! variant that stays in the table throughout — plus the per-variant
//! accounting identity across live and retired shards.

mod common;

use adv_serve::{RequestTag, ServeConfig, VariantRouter};
use adv_zoo::{ModelZoo, ZooConfig};
use common::*;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const VARIANTS: [u32; 2] = [1, 2];
const CLIENTS_PER_VARIANT: usize = 2;
const PROMOTIONS: u32 = 6;

fn zoo_cfg(root: &Path) -> ZooConfig {
    let mut cfg = ZooConfig::new(root);
    cfg.shard = ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        queue_capacity: 512,
        ..ServeConfig::default()
    };
    cfg.warmup = (0..4).map(item).collect();
    cfg
}

#[test]
fn traffic_survives_repeated_hot_swaps_without_drops() {
    let root = scratch("hotswap_soak");
    let zoo = Arc::new(ModelZoo::open(Arc::new(StubLoader), zoo_cfg(&root)).expect("open zoo"));
    for v in VARIANTS {
        zoo.publish(v, 1, &payload(MODE_OK, v as u8)).unwrap();
        zoo.promote(v, 1).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let unavailable = Arc::new(AtomicU64::new(0));
    let wrong_verdicts = Arc::new(AtomicU64::new(0));
    let resolved = Arc::new(AtomicU64::new(0));

    let mut clients = Vec::new();
    for variant in VARIANTS {
        for worker in 0..CLIENTS_PER_VARIANT {
            let zoo = Arc::clone(&zoo);
            let stop = Arc::clone(&stop);
            let unavailable = Arc::clone(&unavailable);
            let wrong_verdicts = Arc::clone(&wrong_verdicts);
            let resolved = Arc::clone(&resolved);
            clients.push(std::thread::spawn(move || {
                let mut i = worker * 10_000;
                while !stop.load(Ordering::Relaxed) {
                    let input = item(i);
                    let expected = stub_verdict(variant as u8, input.as_slice());
                    match zoo.submit_routed(
                        variant,
                        input,
                        RequestTag::default().with_variant(variant),
                        Duration::from_secs(5),
                    ) {
                        Ok(pending) => {
                            // Zero-drop contract: every accepted request
                            // resolves even if its shard retires mid-flight.
                            let outcome = pending
                                .wait_timeout(Duration::from_secs(5))
                                .expect("accepted request must resolve across hot swaps");
                            resolved.fetch_add(1, Ordering::Relaxed);
                            // Every promotion in this soak republishes the
                            // same seed, so verdicts are version-invariant.
                            if outcome.verdict != expected {
                                wrong_verdicts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(adv_serve::ServeError::VariantUnavailable(_)) => {
                            unavailable.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(adv_serve::ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                    i += 1;
                }
            }));
        }
    }

    // Flip both variants repeatedly while traffic flows; each promotion
    // reuses the variant's seed so shadow parity always passes.
    for version in 2..=(PROMOTIONS + 1) {
        for v in VARIANTS {
            zoo.publish(v, version, &payload(MODE_OK, v as u8)).unwrap();
            let report = zoo.promote(v, version).expect("promotion under load");
            assert_eq!(report.retired_version, Some(version - 1));
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }

    assert_eq!(
        unavailable.load(Ordering::Relaxed),
        0,
        "variants never left the table, so no request may see VariantUnavailable"
    );
    assert_eq!(
        wrong_verdicts.load(Ordering::Relaxed),
        0,
        "same-seed hot swaps must be verdict-invariant"
    );
    assert!(
        resolved.load(Ordering::Relaxed) > 0,
        "soak produced no traffic"
    );

    // Per-variant accounting identity across live + retired shards.
    for v in VARIANTS {
        let m = zoo.variant_metrics(v).expect("metrics");
        assert_eq!(
            m.submitted,
            m.completed + m.failed + m.shed_expired,
            "variant {v}: accounting identity across {PROMOTIONS} swaps"
        );
        assert_eq!(
            m.failed, 0,
            "variant {v}: no request may fail in a clean soak"
        );
        assert_eq!(
            m.shed_expired, 0,
            "variant {v}: no shedding in a clean soak"
        );
    }

    let stats = zoo.stats();
    // Initial bootstrap (2) + PROMOTIONS rounds x 2 variants.
    assert_eq!(stats.promotions, u64::from(2 + PROMOTIONS * 2));
    assert_eq!(stats.retired_shards, u64::from(PROMOTIONS * 2));
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(zoo.routing_epoch(), u64::from(2 + PROMOTIONS * 2));
    let _ = std::fs::remove_dir_all(&root);
}
