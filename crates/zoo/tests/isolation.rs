//! Satellite: per-variant blast-radius isolation. One variant's reformer
//! is chaos-faulted into the ground while a clean variant serves the same
//! corpus; the clean variant's verdict stream, detected-rate, and
//! accounting must be bit-identical to a fault-free control run, and the
//! zoo must report Degraded — never Failed — while any healthy shard
//! remains.

mod common;

use adv_chaos::{FaultInjector, FaultPlan, FaultyDefense, PANIC_MARKER, SITE_REFORM};
use adv_magnet::arch::{mnist_ae_two, mnist_classifier};
use adv_magnet::{Autoencoder, MagnetDefense, ReconstructionDetector, ReconstructionNorm, Verdict};
use adv_nn::loss::ReconstructionLoss;
use adv_nn::Sequential;
use adv_serve::{
    DegradePolicy, EngineHealth, RequestTag, RestartPolicy, ServeConfig, VariantRouter,
};
use adv_tensor::{Shape, Tensor};
use adv_zoo::{ModelZoo, ZooConfig};
use common::scratch;
use std::sync::{Arc, Once};
use std::time::Duration;

const CLEAN: u32 = 1;
const FAULTY: u32 = 2;
const CORPUS: usize = 48;

fn silence_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(PANIC_MARKER));
            if !injected {
                previous(info);
            }
        }));
    });
}

fn toy_defense(name: &str) -> Arc<MagnetDefense> {
    let ae = Autoencoder::new(
        &mnist_ae_two(1, 3),
        ReconstructionLoss::MeanSquaredError,
        0.0,
        1,
    )
    .unwrap();
    let classifier = Sequential::from_specs(&mnist_classifier(8, 1, 2, 4, 8, 10), 2).unwrap();
    let det = ReconstructionDetector::new(ae.clone(), ReconstructionNorm::L2);
    let mut defense = MagnetDefense::new(name, vec![Box::new(det)], ae, classifier);
    let calib = Tensor::from_fn(Shape::nchw(64, 1, 8, 8), |i| ((i * 7) % 23) as f32 / 23.0);
    defense.calibrate_detectors(&calib, 0.05).unwrap();
    Arc::new(defense)
}

fn corpus_item(offset: usize) -> Tensor {
    Tensor::from_fn(Shape::nchw(1, 1, 8, 8), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
    .index_axis0(0)
    .unwrap()
}

fn shard_cfg() -> ServeConfig {
    ServeConfig {
        workers: 2,
        max_batch: 4,
        max_wait: Duration::from_micros(500),
        queue_capacity: 128,
        max_retries: 1,
        retry_backoff: Duration::from_micros(50),
        restart: RestartPolicy {
            max_restarts: 4,
            window: Duration::from_secs(30),
            backoff_base: Duration::from_micros(100),
            backoff_max: Duration::from_millis(2),
        },
        degrade: DegradePolicy {
            enabled: true,
            failure_threshold: 4,
            probe_interval: Duration::from_millis(5),
        },
        ..ServeConfig::default()
    }
}

/// Replays the corpus through `variant`, returning per-item outcomes
/// (verdict or typed-error marker — the stream must be deterministic
/// either way).
fn replay(zoo: &ModelZoo, variant: u32) -> Vec<Result<Verdict, String>> {
    (0..CORPUS)
        .map(|i| {
            let pending = match zoo.submit_routed(
                variant,
                corpus_item(i),
                RequestTag::default().with_variant(variant),
                Duration::from_secs(10),
            ) {
                Ok(p) => p,
                Err(e) => return Err(format!("submit: {e}")),
            };
            match pending.wait_timeout(Duration::from_secs(10)) {
                Ok(outcome) => Ok(outcome.verdict),
                Err(e) => Err(format!("wait: {e}")),
            }
        })
        .collect()
}

fn detected_rate(outcomes: &[Result<Verdict, String>]) -> f64 {
    let detected = outcomes
        .iter()
        .filter(|o| matches!(o, Ok(Verdict::Detected)))
        .count();
    detected as f64 / outcomes.len() as f64
}

#[test]
fn faulted_variant_never_contaminates_its_neighbors() {
    silence_chaos_panics();

    // ── Control: the clean variant alone, no chaos anywhere ──
    let control_root = scratch("isolation_control");
    let control = {
        let mut cfg = ZooConfig::new(&control_root);
        cfg.shard = shard_cfg();
        let zoo = ModelZoo::open(Arc::new(common::StubLoader), cfg).unwrap();
        zoo.install(CLEAN, toy_defense("isolation-clean")).unwrap();
        let outcomes = replay(&zoo, CLEAN);
        let metrics = zoo.variant_metrics(CLEAN).unwrap();
        (outcomes, metrics)
    };

    // ── Experiment: same clean variant, plus a neighbor whose reformer
    //    errors and panics constantly ──
    let root = scratch("isolation_experiment");
    let mut cfg = ZooConfig::new(&root);
    cfg.shard = shard_cfg();
    let zoo = ModelZoo::open(Arc::new(common::StubLoader), cfg).unwrap();
    zoo.install(CLEAN, toy_defense("isolation-clean")).unwrap();

    let plan = FaultPlan::new(0xBAD_5EED).with(
        adv_chaos::SiteFaults::at(SITE_REFORM)
            .errors(0.6)
            .panics(0.4),
    );
    let injector = Arc::new(FaultInjector::new(plan).unwrap());
    let faulty = Arc::new(FaultyDefense::new(
        toy_defense("isolation-faulty"),
        injector,
    ));
    zoo.install(FAULTY, faulty).unwrap();

    // Hammer the faulty variant first so its breaker/restart machinery is
    // churning while the clean corpus replays.
    let zoo = Arc::new(zoo);
    let hammer = {
        let zoo = Arc::clone(&zoo);
        std::thread::spawn(move || {
            let mut failures = 0usize;
            for i in 0..CORPUS {
                match zoo.submit_routed(
                    FAULTY,
                    corpus_item(i),
                    RequestTag::default().with_variant(FAULTY),
                    Duration::from_secs(10),
                ) {
                    Ok(p) => {
                        if p.wait_timeout(Duration::from_secs(10)).is_err() {
                            failures += 1;
                        }
                    }
                    Err(_) => failures += 1,
                }
            }
            failures
        })
    };

    let outcomes = replay(&zoo, CLEAN);
    let faulty_failures = hammer.join().expect("hammer thread");

    // The chaos schedule actually bit: the faulty variant saw failures.
    assert!(
        faulty_failures > 0,
        "fault plan produced no failures; the isolation claim is vacuous"
    );

    // Bit-identical verdict stream and detected-rate (the ASR proxy) on
    // the clean variant, fault-free vs faulted-neighbor runs.
    assert_eq!(
        outcomes, control.0,
        "clean variant's verdicts changed when a neighbor was faulted"
    );
    assert_eq!(detected_rate(&outcomes), detected_rate(&control.0));

    // Accounting on the clean variant matches the control run exactly.
    let m = zoo.variant_metrics(CLEAN).unwrap();
    assert_eq!(m.submitted, control.1.submitted);
    assert_eq!(m.completed, control.1.completed);
    assert_eq!(m.failed, control.1.failed);
    assert_eq!(m.shed_expired, control.1.shed_expired);
    assert_eq!(m.worker_panics, 0, "clean shard must see zero panics");
    assert_eq!(
        m.submitted,
        m.completed + m.failed + m.shed_expired,
        "accounting identity on the clean shard"
    );

    // Blast radius: the faulty shard may be Degraded or Failed, but the
    // zoo aggregate must never report Failed while a healthy shard serves.
    let health = zoo.router_health();
    assert!(
        health < EngineHealth::Failed,
        "zoo reported {health:?} with a healthy shard still live"
    );
    let faulty_metrics = zoo.variant_metrics(FAULTY).unwrap();
    assert_eq!(
        faulty_metrics.submitted,
        faulty_metrics.completed + faulty_metrics.failed + faulty_metrics.shed_expired,
        "accounting identity holds even on the faulted shard"
    );

    let _ = std::fs::remove_dir_all(&control_root);
    let _ = std::fs::remove_dir_all(&root);
}
