//! The blue-green promotion state machine, end to end: staged → warming →
//! live → retired on the happy path, and auto-rollback on every failure
//! class — corrupt blob, loader refusal, warm-up failure, worker panic,
//! shadow-parity regression, and seeded chaos faults at the `zoo/*` sites.
//! After every failed promotion the previous version must keep serving
//! with its verdict stream bit-identical.

mod common;

use adv_chaos::{FaultInjector, FaultPlan, SiteFaults};
use adv_magnet::Verdict;
use adv_serve::{EngineHealth, RequestTag, ServeConfig, VariantRouter};
use adv_zoo::{
    ModelZoo, PromotionStage, RollbackReason, ZooConfig, ZooError, SITE_FLIP, SITE_STAGE, SITE_WARM,
};
use common::*;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const VARIANT: u32 = 1;

fn zoo_cfg(root: &Path) -> ZooConfig {
    let mut cfg = ZooConfig::new(root);
    cfg.shard = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        queue_capacity: 256,
        ..ServeConfig::default()
    };
    cfg.warmup = (0..6).map(item).collect();
    cfg
}

fn open_zoo(root: &Path) -> ModelZoo {
    ModelZoo::open(Arc::new(StubLoader), zoo_cfg(root)).expect("open zoo")
}

/// Drives `n` requests through `variant` and returns the verdicts.
fn drive(zoo: &ModelZoo, variant: u32, n: usize) -> Vec<Verdict> {
    (0..n)
        .map(|i| {
            zoo.submit_routed(
                variant,
                item(i),
                RequestTag::default(),
                Duration::from_secs(5),
            )
            .expect("submit")
            .wait_timeout(Duration::from_secs(5))
            .expect("verdict")
            .verdict
        })
        .collect()
}

#[test]
fn first_promotion_goes_live_and_serves() {
    let root = scratch("first_live");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    let report = zoo.promote(VARIANT, 1).expect("promote");
    assert_eq!((report.variant, report.version), (VARIANT, 1));
    assert_eq!(report.retired_version, None);
    assert_eq!(report.epoch, 1);
    assert_eq!(zoo.live_version(VARIANT), Some(1));
    assert_eq!(zoo.routing_epoch(), 1);

    let routes = zoo.routes();
    assert_eq!(routes.len(), 1);
    assert_eq!((routes[0].variant, routes[0].version), (VARIANT, 1));

    let verdicts = drive(&zoo, VARIANT, 8);
    for (i, v) in verdicts.iter().enumerate() {
        assert_eq!(*v, stub_verdict(7, item(i).as_slice()), "request {i}");
    }
    let stats = zoo.stats();
    assert_eq!((stats.promotions, stats.rollbacks), (1, 0));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_variant_is_refused_and_counted() {
    let root = scratch("unknown_variant");
    let zoo = open_zoo(&root);
    let err = zoo
        .submit_routed(99, item(0), RequestTag::default(), Duration::from_secs(1))
        .expect_err("no such variant");
    assert!(matches!(err, adv_serve::ServeError::VariantUnavailable(99)));
    assert_eq!(zoo.stats().variant_unavailable, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn upgrade_retires_old_version_and_accounting_survives_the_swap() {
    let root = scratch("upgrade");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 1).unwrap();
    let before = drive(&zoo, VARIANT, 10);

    // Same seed → same behavior → shadow parity passes.
    zoo.publish(VARIANT, 2, &payload(MODE_OK, 7)).unwrap();
    let report = zoo.promote(VARIANT, 2).expect("promote v2");
    assert_eq!(report.retired_version, Some(1));
    assert_eq!(report.shadow_mismatches, 0);
    assert_eq!(zoo.live_version(VARIANT), Some(2));

    let after = drive(&zoo, VARIANT, 10);
    assert_eq!(before, after, "same-seed upgrade must not change verdicts");

    // Per-variant accounting identity across the swap: counters from the
    // retired v1 shard are carried into the variant's merged snapshot.
    let m = zoo.variant_metrics(VARIANT).expect("metrics");
    assert_eq!(
        m.submitted,
        m.completed + m.failed + m.shed_expired,
        "accounting identity must survive the hot swap"
    );
    // 20 driven requests + warm-up traffic (candidate replay + live
    // parity oracle) all land in the merged totals.
    assert!(m.completed >= 20, "completed {} < driven 20", m.completed);
    let stats = zoo.stats();
    assert_eq!(stats.promotions, 2);
    assert_eq!(stats.retired_shards, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_blob_is_rejected_quarantined_and_never_live() {
    let root = scratch("corrupt_blob");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 1).unwrap();
    let before = drive(&zoo, VARIANT, 6);

    let blob = zoo.publish(VARIANT, 2, &payload(MODE_OK, 7)).unwrap();
    drop(blob);
    let path = root.join("blobs/variant_1_v2.blob");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    match zoo.promote(VARIANT, 2) {
        Err(ZooError::BlobRejected {
            variant, version, ..
        }) => assert_eq!((variant, version), (VARIANT, 2)),
        other => panic!("expected BlobRejected, got {other:?}"),
    }
    assert!(!path.exists(), "corrupt blob must be quarantined");
    assert_eq!(zoo.live_version(VARIANT), Some(1));
    assert_eq!(drive(&zoo, VARIANT, 6), before);
    let stats = zoo.stats();
    assert_eq!(stats.blob_rejects, 1);
    // Nothing was journaled: reopening must not see an interrupted machine.
    drop(zoo);
    let zoo = open_zoo(&root);
    assert_eq!(zoo.stats().resumed_aborts, 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn rollback_reasons_cover_loader_warmup_and_parity() {
    silence_injected_panics();
    let root = scratch("rollback_matrix");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 1).unwrap();
    let before = drive(&zoo, VARIANT, 8);

    // Loader refuses the blob.
    zoo.publish(VARIANT, 2, &payload(MODE_UNLOADABLE, 7))
        .unwrap();
    match zoo.promote(VARIANT, 2) {
        Err(ZooError::RolledBack {
            reason: RollbackReason::LoaderFailed(_),
            ..
        }) => {}
        other => panic!("expected LoaderFailed, got {other:?}"),
    }

    // Candidate errors on every warm-up batch.
    zoo.publish(VARIANT, 3, &payload(MODE_ERROR, 7)).unwrap();
    match zoo.promote(VARIANT, 3) {
        Err(ZooError::RolledBack {
            reason: RollbackReason::WarmFailed(_),
            ..
        }) => {}
        other => panic!("expected WarmFailed, got {other:?}"),
    }

    // Candidate panics mid-warm: the shard's supervisor catches it; the
    // wait surfaces a worker failure and the promotion rolls back.
    zoo.publish(VARIANT, 4, &payload(MODE_PANIC, 7)).unwrap();
    match zoo.promote(VARIANT, 4) {
        Err(ZooError::RolledBack { reason, .. }) => assert!(
            matches!(
                reason,
                RollbackReason::WarmFailed(_) | RollbackReason::ShardUnhealthy(_)
            ),
            "unexpected reason {reason:?}"
        ),
        other => panic!("expected rollback, got {other:?}"),
    }

    // Different seed → verdicts disagree with the live shard → parity kill.
    zoo.publish(VARIANT, 5, &payload(MODE_OK, 8)).unwrap();
    match zoo.promote(VARIANT, 5) {
        Err(ZooError::RolledBack {
            reason: RollbackReason::ShadowMismatch { mismatches, .. },
            ..
        }) => assert!(mismatches > 0),
        other => panic!("expected ShadowMismatch, got {other:?}"),
    }

    // Through it all, v1 kept serving bit-identically.
    assert_eq!(zoo.live_version(VARIANT), Some(1));
    assert_eq!(drive(&zoo, VARIANT, 8), before);
    let stats = zoo.stats();
    assert_eq!(stats.rollbacks, 4);
    assert_eq!(stats.promotions, 1);
    assert!(stats.shadow_mismatches > 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn seeded_chaos_faults_roll_back_at_every_zoo_site() {
    let root = scratch("chaos_sites");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    for site in [SITE_STAGE, SITE_WARM, SITE_FLIP] {
        let plan = FaultPlan::new(0xC0FFEE).with(SiteFaults::at(site).errors(1.0).limit(1));
        let mut cfg = zoo_cfg(&root);
        cfg.injector = Some(Arc::new(FaultInjector::new(plan).unwrap()));
        let zoo = ModelZoo::open(Arc::new(StubLoader), cfg).expect("open");
        let before = drive(&zoo, VARIANT, 4);
        zoo.publish(VARIANT, 9, &payload(MODE_OK, 7)).unwrap();
        match zoo.promote(VARIANT, 9) {
            Err(ZooError::RolledBack {
                reason: RollbackReason::InjectedFault(_),
                ..
            }) => {}
            other => panic!("site {site}: expected InjectedFault, got {other:?}"),
        }
        assert_eq!(zoo.live_version(VARIANT), Some(1), "site {site}");
        assert_eq!(drive(&zoo, VARIANT, 4), before, "site {site}");
        assert_eq!(zoo.stats().rollbacks, 1, "site {site}");
        // The fault was limited to one hit: the retry promotes cleanly.
        let report = zoo.promote(VARIANT, 9).expect("retry after fault");
        assert_eq!(report.version, 9);
        // Reset to v1 for the next site (same behavior, parity passes).
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn draining_zoo_refuses_promotions_and_reports_draining() {
    let root = scratch("draining");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 1).unwrap();
    zoo.begin_drain();
    assert_eq!(zoo.router_health(), EngineHealth::Draining);
    zoo.publish(VARIANT, 2, &payload(MODE_OK, 7)).unwrap();
    assert!(matches!(zoo.promote(VARIANT, 2), Err(ZooError::Draining)));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn journal_records_the_full_machine() {
    let root = scratch("journal_shape");
    let zoo = open_zoo(&root);
    zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 1).unwrap();
    zoo.publish(VARIANT, 2, &payload(MODE_OK, 8)).unwrap();
    let _ = zoo.promote(VARIANT, 2); // parity rollback
    zoo.publish(VARIANT, 3, &payload(MODE_OK, 7)).unwrap();
    zoo.promote(VARIANT, 3).unwrap();
    drop(zoo);

    let log = adv_zoo::PromotionLog::open(&root).unwrap();
    let stages: Vec<PromotionStage> = log.records().unwrap().iter().map(|r| r.stage).collect();
    assert_eq!(
        stages,
        vec![
            // v1: clean first promotion (no previous shard to retire).
            PromotionStage::Staged,
            PromotionStage::Warming,
            PromotionStage::Live,
            // v2: rolled back during warm-up parity.
            PromotionStage::Staged,
            PromotionStage::Warming,
            PromotionStage::Aborted,
            // v3: clean upgrade, retiring v1.
            PromotionStage::Staged,
            PromotionStage::Warming,
            PromotionStage::Live,
            PromotionStage::Retired,
        ]
    );
    let _ = std::fs::remove_dir_all(&root);
}
