//! Crash recovery: the journal is the source of truth. A zoo reopened over
//! an interrupted promotion must either resume past the commit point (Live
//! journaled → finish the retire) or cleanly abort (no Live → journal
//! Aborted and keep the old version), and a blob that no longer matches
//! its journaled CRC must be quarantined, never routed.

mod common;

use adv_serve::{RequestTag, ServeConfig, VariantRouter};
use adv_zoo::{ModelZoo, PromotionLog, PromotionRecord, PromotionStage, ZooConfig};
use common::*;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const VARIANT: u32 = 1;

fn zoo_cfg(root: &Path) -> ZooConfig {
    let mut cfg = ZooConfig::new(root);
    cfg.shard = ServeConfig {
        workers: 1,
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        queue_capacity: 128,
        ..ServeConfig::default()
    };
    cfg.warmup = (0..4).map(item).collect();
    cfg
}

fn open_zoo(root: &Path) -> ModelZoo {
    ModelZoo::open(Arc::new(StubLoader), zoo_cfg(root)).expect("open zoo")
}

fn verdict_of(zoo: &ModelZoo, i: usize) -> adv_magnet::Verdict {
    zoo.submit_routed(
        VARIANT,
        item(i),
        RequestTag::default(),
        Duration::from_secs(5),
    )
    .expect("submit")
    .wait_timeout(Duration::from_secs(5))
    .expect("verdict")
    .verdict
}

/// Simulates a kill -9 at `stage` of promoting `version`: publishes the
/// blob, appends exactly the journal prefix a crashed promotion would have
/// left behind, then reopens and returns the recovered zoo. (The in-process
/// equivalent of the CI soak's real `std::process::abort` crash hook —
/// `ZooConfig::abort_after` can't be exercised inside a test process.)
fn crash_at(root: &Path, stage: PromotionStage, version: u32) -> ModelZoo {
    let crc = {
        let zoo = open_zoo(root);
        zoo.publish(VARIANT, version, &payload(MODE_OK, 7))
            .unwrap()
            .crc()
    };
    let prefix: &[PromotionStage] = match stage {
        PromotionStage::Staged => &[PromotionStage::Staged],
        PromotionStage::Warming => &[PromotionStage::Staged, PromotionStage::Warming],
        _ => &[
            PromotionStage::Staged,
            PromotionStage::Warming,
            PromotionStage::Live,
        ],
    };
    {
        let mut log = PromotionLog::open(root).unwrap();
        for &s in prefix {
            log.append(PromotionRecord {
                stage: s,
                variant: VARIANT,
                version,
                crc,
            })
            .unwrap();
        }
    }
    open_zoo(root)
}

#[test]
fn reopen_restores_the_last_live_version() {
    let root = scratch("reopen_live");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
        zoo.publish(VARIANT, 2, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 2).unwrap();
    }
    let zoo = open_zoo(&root);
    assert_eq!(zoo.live_version(VARIANT), Some(2));
    assert_eq!(zoo.stats().resumed_aborts, 0);
    assert_eq!(zoo.stats().resumed_retires, 0);
    assert_eq!(
        verdict_of(&zoo, 3),
        stub_verdict(7, item(3).as_slice()),
        "recovered shard must serve"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_before_commit_point_aborts_and_keeps_the_old_version() {
    let root = scratch("crash_precommit");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    for (round, stage) in [PromotionStage::Staged, PromotionStage::Warming]
        .into_iter()
        .enumerate()
    {
        let version = 10 + round as u32;
        let zoo = crash_at(&root, stage, version);
        assert_eq!(
            zoo.live_version(VARIANT),
            Some(1),
            "{stage:?}: crash before Live must keep v1"
        );
        assert_eq!(zoo.stats().resumed_aborts, 1, "{stage:?}");
        assert_eq!(
            verdict_of(&zoo, round),
            stub_verdict(7, item(round).as_slice())
        );
        drop(zoo);
        // The journal must now close the interrupted machine with Aborted.
        let log = PromotionLog::open(&root).unwrap();
        let last = *log.records().unwrap().last().expect("journal non-empty");
        assert_eq!(
            (last.stage, last.variant, last.version),
            (PromotionStage::Aborted, VARIANT, version),
            "{stage:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn crash_after_commit_point_resumes_the_promotion() {
    let root = scratch("crash_postcommit");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    // Live is journaled (the commit point) but the crash lands before
    // Retired: recovery must serve v2 and close the machine.
    let zoo = crash_at(&root, PromotionStage::Live, 2);
    assert_eq!(
        zoo.live_version(VARIANT),
        Some(2),
        "Live was durable, so recovery must finish the promotion"
    );
    assert_eq!(zoo.stats().resumed_retires, 1);
    assert_eq!(zoo.stats().resumed_aborts, 0);
    assert_eq!(verdict_of(&zoo, 5), stub_verdict(7, item(5).as_slice()));
    drop(zoo);
    let log = PromotionLog::open(&root).unwrap();
    let last = *log.records().unwrap().last().expect("journal non-empty");
    // The Retired record names the version that was retired — v1.
    assert_eq!(
        (last.stage, last.variant, last.version),
        (PromotionStage::Retired, VARIANT, 1)
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn journaled_crc_mismatch_quarantines_the_blob_on_recovery() {
    let root = scratch("crc_mismatch");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    // Replace the live blob out-of-band with a *valid* envelope holding
    // different bytes: the store's own CRC passes, but the journaled CRC
    // — what actually went through warm-up — does not.
    {
        let zoo = open_zoo(&root);
        drop(zoo);
    }
    let staging = scratch("crc_mismatch_staging");
    {
        let other = open_zoo(&staging);
        other.publish(VARIANT, 1, &payload(MODE_OK, 9)).unwrap();
    }
    std::fs::copy(
        staging.join("blobs/variant_1_v1.blob"),
        root.join("blobs/variant_1_v1.blob"),
    )
    .unwrap();

    let zoo = open_zoo(&root);
    assert_eq!(
        zoo.live_version(VARIANT),
        None,
        "a swapped blob must never be routed"
    );
    assert!(zoo.stats().blob_rejects >= 1);
    assert!(
        root.join("blobs/variant_1_v1.blob.corrupt").exists(),
        "swapped blob must be quarantined"
    );
    assert!(matches!(
        zoo.submit_routed(
            VARIANT,
            item(0),
            RequestTag::default(),
            Duration::from_secs(1)
        ),
        Err(adv_serve::ServeError::VariantUnavailable(VARIANT))
    ));
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&staging);
}

#[test]
fn truncated_journal_tail_is_ignored_not_fatal() {
    let root = scratch("torn_tail");
    {
        let zoo = open_zoo(&root);
        zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        zoo.promote(VARIANT, 1).unwrap();
    }
    // Simulate a torn append: write half a record at the tail.
    let path = root.join("promotions.journal");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
    drop(f);

    let zoo = open_zoo(&root);
    assert_eq!(zoo.live_version(VARIANT), Some(1));
    assert_eq!(verdict_of(&zoo, 2), stub_verdict(7, item(2).as_slice()));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn hand_written_journal_replays_to_the_recorded_state() {
    let root = scratch("hand_journal");
    // Publish blobs through a zoo (for envelope + CRC), then write the
    // journal by hand and check replay lands exactly where it says.
    let (crc1, crc2) = {
        let zoo = open_zoo(&root);
        let b1 = zoo.publish(VARIANT, 1, &payload(MODE_OK, 7)).unwrap();
        let b2 = zoo.publish(VARIANT, 2, &payload(MODE_OK, 7)).unwrap();
        (b1.crc(), b2.crc())
    };
    std::fs::remove_file(root.join("promotions.journal")).ok();
    {
        let mut log = PromotionLog::open(&root).unwrap();
        for (stage, version, crc) in [
            (PromotionStage::Staged, 1, crc1),
            (PromotionStage::Warming, 1, crc1),
            (PromotionStage::Live, 1, crc1),
            (PromotionStage::Staged, 2, crc2),
            (PromotionStage::Warming, 2, crc2),
            (PromotionStage::Live, 2, crc2),
            // Retired names the version that left the table.
            (PromotionStage::Retired, 1, 0),
        ] {
            log.append(PromotionRecord {
                stage,
                variant: VARIANT,
                version,
                crc,
            })
            .unwrap();
        }
    }
    let zoo = open_zoo(&root);
    assert_eq!(zoo.live_version(VARIANT), Some(2));
    assert_eq!(verdict_of(&zoo, 1), stub_verdict(7, item(1).as_slice()));
    let _ = std::fs::remove_dir_all(&root);
}
