//! Shared fixtures for the adv-zoo integration tests: a deterministic
//! blob-driven pipeline (verdicts are a pure function of the blob's seed
//! byte and the input bytes) so the tests exercise the *promotion* path,
//! not inference cost.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use adv_magnet::{DefensePipeline, DefenseScheme, MagnetError, StageTimings, Verdict};
use adv_tensor::{Shape, Tensor};
use adv_zoo::{PipelineLoader, WeightBlob};
use std::path::PathBuf;
use std::sync::Arc;

/// Blob layout byte 0: pipeline behavior mode.
pub const MODE_OK: u8 = 0;
/// Every batch fails with a transient stage error.
pub const MODE_ERROR: u8 = 1;
/// Every batch panics (exercises the worker supervisor during warm-up).
pub const MODE_PANIC: u8 = 2;
/// The loader refuses to build the pipeline.
pub const MODE_UNLOADABLE: u8 = 3;

/// Builds a blob payload: `[mode, seed]`.
pub fn payload(mode: u8, seed: u8) -> Vec<u8> {
    vec![mode, seed]
}

/// The verdict the stub pipeline produces for one item under `seed` —
/// shared with the tests so routed verdicts can be checked against the
/// in-process truth.
pub fn stub_verdict(seed: u8, item: &[f32]) -> Verdict {
    let sum: f32 = item.iter().sum();
    let q = (sum.abs() * 16.0) as usize + seed as usize;
    if q.is_multiple_of(7) {
        Verdict::Detected
    } else {
        Verdict::Classified(q % 10)
    }
}

/// A deterministic, dependency-free pipeline parameterized by blob bytes.
#[derive(Debug)]
pub struct BlobPipeline {
    mode: u8,
    seed: u8,
}

impl DefensePipeline for BlobPipeline {
    fn name(&self) -> &str {
        "zoo-stub"
    }

    fn classify_batch(
        &self,
        x: &Tensor,
        _scheme: DefenseScheme,
    ) -> adv_magnet::Result<(Vec<Verdict>, StageTimings)> {
        match self.mode {
            MODE_ERROR => {
                return Err(MagnetError::Stage {
                    stage: "zoo-stub".into(),
                    message: "injected stage failure".into(),
                })
            }
            MODE_PANIC => panic!("zoo-stub: injected panic"),
            _ => {}
        }
        let n = x.shape().dims().first().copied().unwrap_or(0);
        let data = x.as_slice();
        let item_len = data.len() / n.max(1);
        let verdicts = (0..n)
            .map(|i| stub_verdict(self.seed, &data[i * item_len..(i + 1) * item_len]))
            .collect();
        Ok((verdicts, StageTimings::default()))
    }
}

/// Loader that interprets the two-byte blob layout above.
#[derive(Debug, Default)]
pub struct StubLoader;

impl PipelineLoader for StubLoader {
    fn build(&self, blob: &WeightBlob) -> Result<Arc<dyn DefensePipeline>, String> {
        let bytes = blob.bytes();
        let mode = bytes.first().copied().unwrap_or(MODE_OK);
        let seed = bytes.get(1).copied().unwrap_or(0);
        if mode == MODE_UNLOADABLE {
            return Err("blob declared unloadable".into());
        }
        Ok(Arc::new(BlobPipeline { mode, seed }))
    }
}

/// A deterministic `[1, 8, 8]` input, distinct per `offset`.
pub fn item(offset: usize) -> Tensor {
    Tensor::from_fn(Shape::new(vec![1, 8, 8]), |i| {
        (((i + offset * 131) * 7) % 23) as f32 / 23.0
    })
}

/// A fresh per-test scratch directory.
pub fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adv_zoo_test_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Silences the panic hook for the stub's injected panics so MODE_PANIC
/// soaks don't spam the test output.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("zoo-stub:"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("zoo-stub:"));
            if !injected {
                previous(info);
            }
        }));
    });
}
