//! Causal request traces: a [`TraceId`] minted at submit time, threaded
//! through queue wait, batch formation, defense stages and kernel scopes.
//!
//! The serving engine mints one id per request ([`next_trace_id`]) and one
//! per executed batch; [`link`] ties each request to the batch that served
//! it. The worker activates the batch id on its thread with
//! [`record_into`], so every [`KernelScope`](crate::KernelScope) /
//! [`StageScope`](crate::StageScope) drop during the batch also lands as a
//! [`TraceSpan`] in a bounded global ring (newest spans win; a contended
//! flush drops rather than blocks, like the kernel sink). Request-level
//! events that happen outside the worker — queue wait, total latency — are
//! recorded explicitly with [`record_event`].
//!
//! [`observe_latency`] keeps one exemplar trace id per latency-histogram
//! bucket (last writer wins), so "what does a 16–32 ms request look like?"
//! resolves to a concrete span tree via [`spans_for`]/[`render_trace`]
//! instead of a bucket count.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap on spans held in the global ring; older spans are evicted.
pub const MAX_TRACE_SPANS: usize = 1 << 16;

/// Hard cap on request→batch links held; older links are evicted.
pub const MAX_TRACE_LINKS: usize = 1 << 14;

/// A causal trace identity. `0` is the null id ("not traced"): minting is
/// gated on [`crate::enabled`], so untraced deployments pay one relaxed
/// load per submit and every id stays 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(u64);

impl TraceId {
    /// The null id: not traced.
    pub const NONE: TraceId = TraceId(0);

    /// Rebuilds an id from its raw value (e.g. off a telemetry row).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(raw)
    }

    /// The raw value (0 = none) — what rides on `ServedRecord` and
    /// telemetry rows.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` for the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One recorded interval inside a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Owning trace id (a request's or a batch's).
    pub trace: u64,
    /// Frame name (kernel name, stage name, or an explicit event name).
    pub name: &'static str,
    /// Nesting depth at entry (0 = top level on its thread).
    pub depth: u16,
    /// Start offset in nanoseconds from the process profile epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Mints a fresh trace id, or [`TraceId::NONE`] while profiling is off.
#[inline]
pub fn next_trace_id() -> TraceId {
    if !crate::enabled() {
        return TraceId::NONE;
    }
    static NEXT: AtomicU64 = AtomicU64::new(1);
    TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
}

struct TraceSink {
    spans: Mutex<VecDeque<TraceSpan>>,
    links: Mutex<VecDeque<(u64, u64)>>,
    dropped: AtomicU64,
}

fn sink() -> &'static TraceSink {
    static SINK: OnceLock<TraceSink> = OnceLock::new();
    SINK.get_or_init(|| TraceSink {
        spans: Mutex::new(VecDeque::new()),
        links: Mutex::new(VecDeque::new()),
        dropped: AtomicU64::new(0),
    })
}

/// Merges a thread's pending spans into the global ring (newest win).
/// Drop-not-block: a contended ring drops the batch and counts it.
pub(crate) fn flush_spans(pending: &mut Vec<TraceSpan>) {
    let sink = sink();
    match sink.spans.try_lock() {
        Ok(mut ring) => {
            for span in pending.drain(..) {
                if ring.len() >= MAX_TRACE_SPANS {
                    ring.pop_front();
                }
                ring.push_back(span);
            }
        }
        Err(_) => {
            // lint-ok(ordering-justified): independent overflow counter;
            // readers only report it.
            sink.dropped
                .fetch_add(pending.len() as u64, Ordering::Relaxed);
            pending.clear();
        }
    }
}

/// Spans dropped because the span ring stayed contended at flush time.
pub fn dropped_spans() -> u64 {
    // lint-ok(ordering-justified): reporting-only read of an independent
    // counter; staleness is fine.
    sink().dropped.load(Ordering::Relaxed)
}

/// Ties a request trace to the batch trace that served it. No-op for null
/// ids; drop-not-block under contention.
pub fn link(request: TraceId, batch: TraceId) {
    if request.is_none() || batch.is_none() {
        return;
    }
    if let Ok(mut links) = sink().links.try_lock() {
        if links.len() >= MAX_TRACE_LINKS {
            links.pop_front();
        }
        links.push_back((request.0, batch.0));
    }
}

/// Records one explicit event of `dur_ns` ending roughly now (e.g. a
/// request's queue wait) into `trace`. No-op for the null id.
pub fn record_event(trace: TraceId, name: &'static str, dur_ns: u64) {
    if trace.is_none() || !crate::enabled() {
        return;
    }
    let now_ns = crate::kernel::epoch().elapsed().as_nanos() as u64;
    crate::kernel::push_span(TraceSpan {
        trace: trace.0,
        name,
        depth: 0,
        start_ns: now_ns.saturating_sub(dur_ns),
        dur_ns,
    });
}

/// RAII guard scoping the calling thread's active trace; see
/// [`record_into`].
#[derive(Debug)]
#[must_use = "the trace deactivates when the guard is dropped"]
pub struct TraceGuard {
    previous: u64,
    active: bool,
}

/// Activates `trace` on the calling thread: until the guard drops, every
/// kernel/stage scope completing on this thread is also recorded as a
/// [`TraceSpan`] of `trace`. Null ids (or profiling off) activate nothing.
pub fn record_into(trace: TraceId) -> TraceGuard {
    if trace.is_none() || !crate::enabled() {
        return TraceGuard {
            previous: 0,
            active: false,
        };
    }
    TraceGuard {
        previous: crate::kernel::swap_thread_trace(trace.0),
        active: true,
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.active {
            let _ = crate::kernel::swap_thread_trace(self.previous);
        }
    }
}

fn exemplar_slots() -> &'static [AtomicU64] {
    static SLOTS: OnceLock<Vec<AtomicU64>> = OnceLock::new();
    SLOTS.get_or_init(|| {
        (0..=adv_obs::DURATION_BOUNDS_NS.len())
            .map(|_| AtomicU64::new(0))
            .collect()
    })
}

/// Stamps `trace` as the exemplar for the latency-histogram bucket
/// `latency_ns` falls in (the same `DURATION_BOUNDS_NS` buckets the serve
/// metrics histogram uses). Last writer wins; null ids are ignored.
pub fn observe_latency(latency_ns: u64, trace: TraceId) {
    if trace.is_none() {
        return;
    }
    let v = latency_ns as f64;
    let idx = adv_obs::DURATION_BOUNDS_NS.partition_point(|&b| b < v);
    if let Some(slot) = exemplar_slots().get(idx) {
        // lint-ok(ordering-justified): last-writer-wins exemplar cell; the
        // id is self-contained and readers tolerate any published value.
        slot.store(trace.0, Ordering::Relaxed);
    }
}

/// The per-bucket latency exemplars recorded so far: `(upper_bound_ns,
/// trace_id)` for every bucket that has one (the last bucket reports
/// `f64::INFINITY`).
pub fn latency_exemplars() -> Vec<(f64, u64)> {
    exemplar_slots()
        .iter()
        .enumerate()
        .filter_map(|(i, slot)| {
            // lint-ok(ordering-justified): reporting-only read of a
            // last-writer-wins cell.
            let id = slot.load(Ordering::Relaxed);
            if id == 0 {
                return None;
            }
            let le = adv_obs::DURATION_BOUNDS_NS
                .get(i)
                .copied()
                .unwrap_or(f64::INFINITY);
            Some((le, id))
        })
        .collect()
}

/// Every recorded span belonging to `trace` — including spans of batch
/// traces [`link`]ed from it — sorted by start time. Flushes the calling
/// thread first; worker threads flush at buffer thresholds and when their
/// frame stacks unwind.
pub fn spans_for(trace: TraceId) -> Vec<TraceSpan> {
    if trace.is_none() {
        return Vec::new();
    }
    crate::kernel::flush_current_thread();
    let sink = sink();
    let batches: Vec<u64> = match sink.links.lock() {
        Ok(links) => links
            .iter()
            .filter(|(req, _)| *req == trace.0)
            .map(|(_, batch)| *batch)
            .collect(),
        Err(_) => Vec::new(),
    };
    let mut spans: Vec<TraceSpan> = match sink.spans.lock() {
        Ok(ring) => ring
            .iter()
            .filter(|s| s.trace == trace.0 || batches.contains(&s.trace))
            .copied()
            .collect(),
        Err(_) => Vec::new(),
    };
    spans.sort_by_key(|s| (s.start_ns, s.depth));
    spans
}

/// Renders `trace`'s span tree as indented text (one line per span,
/// depth-indented, with start offset and duration) — the exemplar drill
/// -down view the probes print for slow requests.
pub fn render_trace(trace: TraceId) -> String {
    let spans = spans_for(trace);
    let mut out = String::new();
    let _ = writeln!(out, "trace {} ({} spans)", trace.as_u64(), spans.len());
    for s in &spans {
        let indent = "  ".repeat(usize::from(s.depth) + 1);
        let origin = if s.trace == trace.as_u64() {
            ""
        } else {
            " [batch]"
        };
        let _ = writeln!(
            out,
            "{indent}{} +{:.3}ms {:.3}ms{origin}",
            s.name,
            s.start_ns as f64 / 1e6,
            s.dur_ns as f64 / 1e6,
        );
    }
    out
}

/// Clears spans, links, exemplars and the drop counter (tests/probes).
pub(crate) fn reset_traces() {
    let sink = sink();
    if let Ok(mut spans) = sink.spans.lock() {
        spans.clear();
    }
    if let Ok(mut links) = sink.links.lock() {
        links.clear();
    }
    // lint-ok(ordering-justified): test/probe-only reset of an independent
    // counter.
    sink.dropped.store(0, Ordering::Relaxed);
    for slot in exemplar_slots() {
        // lint-ok(ordering-justified): test/probe-only reset of a
        // last-writer-wins cell.
        slot.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelScope, StageScope};
    use crate::test_enabled_lock;
    use crate::{KernelKind, Work};

    #[test]
    fn disabled_minting_yields_none() {
        let _guard = test_enabled_lock();
        crate::set_enabled(false);
        assert!(next_trace_id().is_none());
    }

    #[test]
    fn ids_are_unique_when_enabled() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        let a = next_trace_id();
        let b = next_trace_id();
        crate::set_enabled(false);
        assert!(!a.is_none());
        assert_ne!(a, b);
    }

    #[test]
    fn recorded_scopes_land_in_the_trace() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        let request = next_trace_id();
        let batch = next_trace_id();
        link(request, batch);
        record_event(request, "queue_wait", 1234);
        {
            let _rec = record_into(batch);
            let _stage = StageScope::enter("serve/batch");
            let _k = KernelScope::enter(KernelKind::MatMul, || Work::matmul(2, 2, 2));
        }
        crate::set_enabled(false);
        let spans = spans_for(request);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"queue_wait"), "{names:?}");
        assert!(names.contains(&"serve/batch"), "{names:?}");
        assert!(names.contains(&"matmul"), "{names:?}");
        let rendered = render_trace(request);
        assert!(rendered.contains("matmul"), "{rendered}");
        assert!(rendered.contains("[batch]"), "{rendered}");
    }

    #[test]
    fn trace_guard_restores_previous_trace() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        let outer = next_trace_id();
        let inner = next_trace_id();
        {
            let _a = record_into(outer);
            {
                let _b = record_into(inner);
                let _k = KernelScope::enter(KernelKind::Jsd, || Work::custom(1, 1, 1));
            }
            let _k = KernelScope::enter(KernelKind::Softmax, || Work::softmax(1, 2));
        }
        crate::set_enabled(false);
        let inner_spans = spans_for(inner);
        let outer_spans = spans_for(outer);
        assert!(inner_spans.iter().any(|s| s.name == "jsd"));
        assert!(inner_spans.iter().all(|s| s.name != "softmax"));
        assert!(outer_spans.iter().any(|s| s.name == "softmax"));
    }

    #[test]
    fn exemplars_keep_one_trace_per_bucket() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        let a = next_trace_id();
        let b = next_trace_id();
        crate::set_enabled(false);
        observe_latency(300, a); // 256..512 bucket
        observe_latency(100_000_000, b); // ~100ms bucket
        observe_latency(0, TraceId::NONE); // ignored
        let ex = latency_exemplars();
        assert_eq!(ex.len(), 2, "{ex:?}");
        assert!(ex.iter().any(|&(le, id)| le == 512.0 && id == a.as_u64()));
        assert!(ex.iter().any(|&(_, id)| id == b.as_u64()));
    }

    #[test]
    fn span_ring_evicts_oldest() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        let mut pending: Vec<TraceSpan> = (0..MAX_TRACE_SPANS + 10)
            .map(|i| TraceSpan {
                trace: 7,
                name: "fill",
                depth: 0,
                start_ns: i as u64,
                dur_ns: 1,
            })
            .collect();
        flush_spans(&mut pending);
        crate::set_enabled(false);
        let spans = spans_for(TraceId::from_u64(7));
        assert_eq!(spans.len(), MAX_TRACE_SPANS);
        assert_eq!(spans.first().map(|s| s.start_ns), Some(10));
    }
}
