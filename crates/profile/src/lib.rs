//! adv-profile: kernel-level continuous profiling for the reproduction
//! stack.
//!
//! The crate is dependency-free (std plus `adv-obs` for the registry
//! export), always compiled into release binaries, and runtime-gated — the
//! same deployment contract as `adv-obs`. Three pieces:
//!
//! * [`kernel`] — **kernel accounting**: [`KernelScope`] is an RAII guard
//!   wrapped around every hot kernel in `adv-tensor` (matmul, im2col/conv,
//!   elementwise, reductions), `adv-nn` (softmax) and `adv-magnet`
//!   (detector-distance loops, JSD). Each scope records wall time, call
//!   count, element count and the kernel's declared FLOP/byte volume, so a
//!   profile reports *achieved GFLOP/s per kernel* — the attribution the
//!   SIMD roadmap item needs before and after vectorizing. Scopes nest;
//!   self time is total time minus time inside child scopes, so every
//!   nanosecond lands in exactly one kernel. Aggregation is per-thread
//!   with drop-not-block flushing into process-wide atomics, the same
//!   discipline as `adv-telemetry`'s recorder.
//! * [`trace`] — **causal request traces**: a [`TraceId`] minted at
//!   `submit` time rides through queue wait, batch formation, defense
//!   stages and kernel scopes. Latency exemplars map each latency
//!   histogram bucket to the most recent trace that landed in it, so a
//!   slow request resolves to a full span tree instead of a bucket count.
//! * [`report`] — exports: a per-kernel table, a collapsed-stack
//!   (flamegraph-compatible) text dump, and gauges published into an
//!   `adv-obs` [`Registry`](adv_obs::Registry).
//!
//! # Enabling profiling
//!
//! Everything is gated on a process-wide flag read from the `ADV_PROFILE`
//! environment variable (`off|on`, read once on first use) or set
//! programmatically via [`set_enabled`]. While off, every instrumentation
//! point is one relaxed atomic load and a predictable branch — the
//! `server_b32_profile_off` bench variant pins this at <2% of serve
//! throughput. Profiling never changes numerical results at any setting;
//! it only reads clocks and bumps atomics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod report;
pub mod trace;

pub use kernel::{dropped_stacks, flush_current_thread, KernelKind, KernelScope, StageScope, Work};
pub use report::{
    collapsed, kernel_reports, kernel_table, publish_to, total_kernel_self_ns, KernelReport,
};
pub use trace::{
    dropped_spans, latency_exemplars, link, next_trace_id, observe_latency, record_event,
    record_into, render_trace, spans_for, TraceGuard, TraceId, TraceSpan,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// Sentinel meaning "not yet initialised from `ADV_PROFILE`".
const ENABLED_UNSET: u8 = u8::MAX;

static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNSET);

#[cold]
fn init_enabled_from_env() -> bool {
    let on = std::env::var("ADV_PROFILE")
        .ok()
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "on" | "1" | "true"))
        .unwrap_or(false);
    // Keep an explicit `set_enabled` that raced ahead of us.
    // lint-ok(ordering-justified): the flag byte is self-contained state;
    // the CAS only needs atomicity and the follow-up load only needs to
    // see *a* committed value — both orderings are free to be Relaxed.
    let _ = ENABLED.compare_exchange(
        ENABLED_UNSET,
        u8::from(on),
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    // lint-ok(ordering-justified): see the CAS above; any committed flag
    // byte is a valid answer here.
    ENABLED.load(Ordering::Relaxed) == 1
}

/// `true` when profiling instrumentation records (initialised from
/// `ADV_PROFILE` on first call). This is the hot-path gate: one relaxed
/// load and a compare.
#[inline]
pub fn enabled() -> bool {
    // lint-ok(ordering-justified): a momentarily stale flag only delays
    // when profiling switches on/off; no data is guarded by it.
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        ENABLED_UNSET => init_enabled_from_env(),
        _ => false,
    }
}

/// Turns profiling on or off for the whole process (the probe binaries'
/// programmatic switch; overrides `ADV_PROFILE`).
pub fn set_enabled(on: bool) {
    // lint-ok(ordering-justified): last-writer-wins flag; readers tolerate
    // observing the change late (see `enabled`).
    ENABLED.store(u8::from(on), Ordering::Relaxed);
}

/// Clears every accumulated profile: kernel slots, collapsed stacks,
/// trace spans, links, exemplars, and drop counters. Flushes the calling
/// thread first; other threads' unflushed tails are picked up once they
/// flush or exit (tests and probes).
pub fn reset() {
    kernel::flush_current_thread();
    kernel::reset_kernels();
    trace::reset_traces();
}

#[cfg(test)]
pub(crate) fn test_enabled_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_controls_gate() {
        let _guard = test_enabled_lock();
        let before = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(before);
    }
}
