//! Kernel accounting: RAII scopes around hot kernels, aggregated into
//! process-wide per-kernel slots and a collapsed-stack profile.
//!
//! [`KernelScope::enter`] pushes a frame on the current thread's profile
//! stack; dropping the guard attributes the frame's *self time* (total
//! minus time inside child scopes) to its [`KernelKind`] slot and to the
//! collapsed call-path, and — when a trace is active on the thread (see
//! [`crate::trace::record_into`]) — appends a [`TraceSpan`] for the causal
//! request trace. [`StageScope`] is the same machinery for non-kernel
//! frames (defense stages, batch formation): they shape the collapsed
//! stacks and traces but do not own a kernel slot.
//!
//! Aggregation is drop-not-block: per-kind counters are plain relaxed
//! atomics (never contended on a lock), while collapsed stacks and trace
//! spans buffer per-thread and merge into global sinks under `try_lock` —
//! a contended flush retries later and, past a hard cap, drops (and
//! counts) rather than stalls the worker.

use crate::trace::TraceSpan;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The fixed set of accounted kernels. Each variant owns one process-wide
/// accumulator slot, so recording is branch-free fetch-adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum KernelKind {
    /// `C = A·B` dense matmul.
    MatMul = 0,
    /// `C = Aᵀ·B` (weight-gradient product).
    MatMulAtB = 1,
    /// `C = A·Bᵀ` (input-gradient product, conv forward inner product).
    MatMulABt = 2,
    /// Convolution patch extraction.
    Im2col = 3,
    /// Patch scatter-accumulate (conv backward).
    Col2im = 4,
    /// Full conv2d forward (contains im2col + matmul children).
    Conv2d = 5,
    /// Full conv2d backward.
    Conv2dBackward = 6,
    /// Row-wise softmax (with or without temperature).
    Softmax = 7,
    /// Row-wise log-softmax.
    LogSoftmax = 8,
    /// Pointwise map/zip kernels (add, mul, activations, clamp, …).
    Elementwise = 9,
    /// Reductions (sum, mean, min/max, argmax, dot, norms).
    Reduction = 10,
    /// Pure data movement (stack, concat, slice extraction).
    Memcpy = 11,
    /// Per-item reconstruction-error distances (MagNet detectors).
    DetectorDistance = 12,
    /// Jensen–Shannon divergence rows (JSD detectors).
    Jsd = 13,
}

/// Number of kernel kinds ([`KernelKind::ALL`]'s length).
pub const KERNEL_KINDS: usize = 14;

impl KernelKind {
    /// Every kind, in slot order.
    pub const ALL: [KernelKind; KERNEL_KINDS] = [
        KernelKind::MatMul,
        KernelKind::MatMulAtB,
        KernelKind::MatMulABt,
        KernelKind::Im2col,
        KernelKind::Col2im,
        KernelKind::Conv2d,
        KernelKind::Conv2dBackward,
        KernelKind::Softmax,
        KernelKind::LogSoftmax,
        KernelKind::Elementwise,
        KernelKind::Reduction,
        KernelKind::Memcpy,
        KernelKind::DetectorDistance,
        KernelKind::Jsd,
    ];

    /// Stable display name (also the collapsed-stack frame name).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::MatMul => "matmul",
            KernelKind::MatMulAtB => "matmul_at_b",
            KernelKind::MatMulABt => "matmul_a_bt",
            KernelKind::Im2col => "im2col",
            KernelKind::Col2im => "col2im",
            KernelKind::Conv2d => "conv2d",
            KernelKind::Conv2dBackward => "conv2d_backward",
            KernelKind::Softmax => "softmax",
            KernelKind::LogSoftmax => "log_softmax",
            KernelKind::Elementwise => "elementwise",
            KernelKind::Reduction => "reduction",
            KernelKind::Memcpy => "memcpy",
            KernelKind::DetectorDistance => "detector_distance",
            KernelKind::Jsd => "jsd",
        }
    }
}

/// The arithmetic/data volume one kernel invocation declares, from which
/// the report derives achieved GFLOP/s and GB/s. Constructors encode the
/// standard cost models so call sites stay one-liners.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Work {
    /// Output elements produced.
    pub elems: u64,
    /// Floating-point operations performed.
    pub flops: u64,
    /// Bytes read plus written (useful-traffic model, not cache traffic).
    pub bytes: u64,
}

impl Work {
    /// Explicit volumes for kernels without a stock cost model.
    pub fn custom(elems: u64, flops: u64, bytes: u64) -> Work {
        Work {
            elems,
            flops,
            bytes,
        }
    }

    /// `[m,k]·[k,n]`: `2mkn` FLOPs, reads A and B once, writes C.
    pub fn matmul(m: usize, k: usize, n: usize) -> Work {
        let (m, k, n) = (m as u64, k as u64, n as u64);
        Work {
            elems: m * n,
            flops: 2 * m * k * n,
            bytes: 4 * (m * k + k * n + m * n),
        }
    }

    /// Unary pointwise kernel over `n` elements (1 FLOP, read + write).
    pub fn map(n: usize) -> Work {
        Work {
            elems: n as u64,
            flops: n as u64,
            bytes: 8 * n as u64,
        }
    }

    /// Binary pointwise kernel over `n` elements (1 FLOP, 2 reads + write).
    pub fn zip(n: usize) -> Work {
        Work {
            elems: n as u64,
            flops: n as u64,
            bytes: 12 * n as u64,
        }
    }

    /// Reduction of `n` elements to a scalar-ish result.
    pub fn reduce(n: usize) -> Work {
        Work {
            elems: n as u64,
            flops: n as u64,
            bytes: 4 * n as u64,
        }
    }

    /// Pure copy of `n` elements (no FLOPs, read + write).
    pub fn copy(n: usize) -> Work {
        Work {
            elems: n as u64,
            flops: 0,
            bytes: 8 * n as u64,
        }
    }

    /// Row-wise softmax: max, subtract+exp, sum, divide ≈ 4 FLOPs/element.
    pub fn softmax(rows: usize, cols: usize) -> Work {
        let n = (rows * cols) as u64;
        Work {
            elems: n,
            flops: 4 * n,
            bytes: 8 * n,
        }
    }
}

/// One process-wide accumulator; every field is an independent relaxed
/// counter (snapshot readers tolerate torn cross-field reads).
#[derive(Debug, Default)]
pub(crate) struct KindSlot {
    pub(crate) calls: AtomicU64,
    pub(crate) wall_ns: AtomicU64,
    pub(crate) self_ns: AtomicU64,
    pub(crate) elems: AtomicU64,
    pub(crate) flops: AtomicU64,
    pub(crate) bytes: AtomicU64,
}

pub(crate) fn slots() -> &'static [KindSlot] {
    static SLOTS: OnceLock<Vec<KindSlot>> = OnceLock::new();
    SLOTS.get_or_init(|| (0..KERNEL_KINDS).map(|_| KindSlot::default()).collect())
}

/// The global collapsed-stack profile: call path → accumulated self ns.
pub(crate) struct StackSink {
    pub(crate) stacks: Mutex<HashMap<Box<[&'static str]>, u64>>,
    pub(crate) dropped: AtomicU64,
}

pub(crate) fn stack_sink() -> &'static StackSink {
    static SINK: OnceLock<StackSink> = OnceLock::new();
    SINK.get_or_init(|| StackSink {
        stacks: Mutex::new(HashMap::new()),
        dropped: AtomicU64::new(0),
    })
}

/// The instant all trace-span offsets are measured from (first use wins).
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    // lint-ok(gated-clocks): reached only from frame entry/exit, both
    // behind the enabled() gate; profiling timestamps are the feature.
    *EPOCH.get_or_init(Instant::now)
}

struct Frame {
    name: &'static str,
    kind: Option<KernelKind>,
    start: Instant,
    child_ns: u64,
    work: Work,
}

/// Local stack entries a thread accumulates before flushing to the sink.
const STACK_FLUSH_THRESHOLD: usize = 128;
/// Hard cap on a thread's local stack map under sink contention; beyond
/// it, entries are dropped (and counted) instead of growing unboundedly.
const STACK_LOCAL_CAP: usize = 4096;
/// Pending trace spans a thread buffers before flushing.
const SPAN_FLUSH_THRESHOLD: usize = 512;

struct ThreadProf {
    frames: Vec<Frame>,
    /// Scratch key for collapsed-stack lookups (avoids an alloc per drop).
    path: Vec<&'static str>,
    stacks: HashMap<Box<[&'static str]>, u64>,
    spans: Vec<TraceSpan>,
    /// Trace id scope drops record spans into (0 = none active).
    trace: u64,
}

impl ThreadProf {
    fn new() -> ThreadProf {
        ThreadProf {
            frames: Vec::new(),
            path: Vec::new(),
            stacks: HashMap::new(),
            spans: Vec::new(),
            trace: 0,
        }
    }

    fn flush(&mut self) {
        if !self.stacks.is_empty() {
            let sink = stack_sink();
            match sink.stacks.try_lock() {
                Ok(mut global) => {
                    for (path, ns) in self.stacks.drain() {
                        *global.entry(path).or_insert(0) += ns;
                    }
                }
                Err(_) => {
                    if self.stacks.len() > STACK_LOCAL_CAP {
                        // Drop-not-block: a worker never stalls on the
                        // profile sink; losses are visible in `dropped`.
                        // lint-ok(ordering-justified): independent overflow
                        // counter; readers only report it.
                        sink.dropped
                            .fetch_add(self.stacks.len() as u64, Ordering::Relaxed);
                        self.stacks.clear();
                    }
                }
            }
        }
        if !self.spans.is_empty() {
            crate::trace::flush_spans(&mut self.spans);
        }
    }
}

impl Drop for ThreadProf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_PROF: RefCell<ThreadProf> = RefCell::new(ThreadProf::new());
}

/// Pushes a frame; returns `false` when the thread-local is unavailable
/// (thread teardown) so the guard stays inert.
#[inline(never)]
fn enter_frame(name: &'static str, kind: Option<KernelKind>, work: Work) -> bool {
    THREAD_PROF
        .try_with(|tp| {
            let mut tp = tp.borrow_mut();
            // Force the epoch before the first frame so offsets are valid.
            let _ = epoch();
            tp.frames.push(Frame {
                name,
                kind,
                // lint-ok(gated-clocks): behind the enabled() gate at every
                // scope entry; kernel timing IS the feature here.
                start: Instant::now(),
                child_ns: 0,
                work,
            });
        })
        .is_ok()
}

#[inline(never)]
fn exit_frame() {
    let _ = THREAD_PROF.try_with(|tp| {
        let mut tp = tp.borrow_mut();
        let Some(frame) = tp.frames.pop() else {
            return;
        };
        let total_ns = frame.start.elapsed().as_nanos() as u64;
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        if let Some(parent) = tp.frames.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(total_ns);
        }

        // Six independent monotone counters: snapshot readers tolerate any
        // interleaving and no other memory is published through them, so
        // every fetch_add below is free to be Relaxed.
        if let Some(kind) = frame.kind {
            if let Some(slot) = slots().get(kind as usize) {
                slot.calls.fetch_add(1, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
                slot.wall_ns.fetch_add(total_ns, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
                slot.self_ns.fetch_add(self_ns, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
                slot.elems.fetch_add(frame.work.elems, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
                slot.flops.fetch_add(frame.work.flops, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
                slot.bytes.fetch_add(frame.work.bytes, Ordering::Relaxed); // lint-ok(ordering-justified): independent monotone counter, see block comment
            }
        }

        // Collapsed stack: ancestors still on the stack, then this frame.
        let ThreadProf {
            frames,
            path,
            stacks,
            ..
        } = &mut *tp;
        path.clear();
        path.extend(frames.iter().map(|f| f.name));
        path.push(frame.name);
        match stacks.get_mut(path.as_slice()) {
            Some(ns) => *ns = ns.saturating_add(self_ns),
            None => {
                stacks.insert(path.clone().into_boxed_slice(), self_ns);
            }
        }

        if tp.trace != 0 {
            let start_ns = frame.start.duration_since(epoch()).as_nanos() as u64;
            let span = TraceSpan {
                trace: tp.trace,
                name: frame.name,
                depth: tp.frames.len() as u16,
                start_ns,
                dur_ns: total_ns,
            };
            tp.spans.push(span);
        }

        if tp.spans.len() >= SPAN_FLUSH_THRESHOLD
            || (tp.frames.is_empty() && tp.stacks.len() >= STACK_FLUSH_THRESHOLD)
        {
            tp.flush();
        }
    });
}

/// Sets the calling thread's active trace id, returning the previous one.
pub(crate) fn swap_thread_trace(trace: u64) -> u64 {
    THREAD_PROF
        .try_with(|tp| {
            let mut tp = tp.borrow_mut();
            std::mem::replace(&mut tp.trace, trace)
        })
        .unwrap_or(0)
}

/// Buffers one explicit span (e.g. a queue-wait event) on the thread.
pub(crate) fn push_span(span: TraceSpan) {
    let _ = THREAD_PROF.try_with(|tp| {
        let mut tp = tp.borrow_mut();
        tp.spans.push(span);
        if tp.spans.len() >= SPAN_FLUSH_THRESHOLD {
            tp.flush();
        }
    });
}

/// Flushes the calling thread's buffered stacks and spans into the global
/// sinks. Threads flush automatically at buffer thresholds, whenever the
/// frame stack unwinds to empty with enough pending entries, and on
/// thread exit; call this before reading a report on the thread that did
/// the work (e.g. `main`).
pub fn flush_current_thread() {
    let _ = THREAD_PROF.try_with(|tp| tp.borrow_mut().flush());
}

/// Clears the kernel slots and the collapsed-stack sink (tests/probes).
pub(crate) fn reset_kernels() {
    // Test/probe-only reset of independent counters; no ordering
    // relationship is required for any of the stores below.
    for slot in slots() {
        slot.calls.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
        slot.wall_ns.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
        slot.self_ns.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
        slot.elems.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
        slot.flops.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
        slot.bytes.store(0, Ordering::Relaxed); // lint-ok(ordering-justified): reset of independent counter, see loop comment
    }
    let sink = stack_sink();
    if let Ok(mut stacks) = sink.stacks.lock() {
        stacks.clear();
    }
    // lint-ok(ordering-justified): see above — reset of an independent
    // counter.
    sink.dropped.store(0, Ordering::Relaxed);
}

/// Entries dropped because the stack sink stayed contended past the
/// local-buffer cap.
pub fn dropped_stacks() -> u64 {
    // lint-ok(ordering-justified): reporting-only read of an independent
    // counter; staleness is fine.
    stack_sink().dropped.load(Ordering::Relaxed)
}

/// RAII guard accounting one kernel invocation; see the module docs.
///
/// The `work` closure is evaluated only when profiling is enabled, so the
/// disabled path never computes volumes:
///
/// ```
/// use adv_profile::{KernelKind, KernelScope, Work};
/// let _scope = KernelScope::enter(KernelKind::MatMul, || Work::matmul(8, 8, 8));
/// // ... run the kernel ...
/// ```
#[derive(Debug)]
#[must_use = "the kernel is accounted when the guard is dropped"]
pub struct KernelScope {
    active: bool,
}

impl KernelScope {
    /// Opens a kernel scope; a no-op (one relaxed load) while profiling is
    /// off.
    #[inline]
    pub fn enter(kind: KernelKind, work: impl FnOnce() -> Work) -> KernelScope {
        if !crate::enabled() {
            return KernelScope { active: false };
        }
        KernelScope {
            active: enter_frame(kind.name(), Some(kind), work()),
        }
    }
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        if self.active {
            exit_frame();
        }
    }
}

/// RAII guard for a non-kernel frame (defense stage, batch formation):
/// contributes to collapsed stacks and traces, owns no kernel slot.
#[derive(Debug)]
#[must_use = "the stage ends when the guard is dropped"]
pub struct StageScope {
    active: bool,
}

impl StageScope {
    /// Opens a stage frame; a no-op (one relaxed load) while profiling is
    /// off.
    #[inline]
    pub fn enter(name: &'static str) -> StageScope {
        if !crate::enabled() {
            return StageScope { active: false };
        }
        StageScope {
            active: enter_frame(name, None, Work::default()),
        }
    }
}

impl Drop for StageScope {
    fn drop(&mut self) {
        if self.active {
            exit_frame();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_enabled_lock;
    use std::time::Duration;

    fn slot_of(kind: KernelKind) -> &'static KindSlot {
        slots().get(kind as usize).unwrap()
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = test_enabled_lock();
        crate::set_enabled(false);
        crate::reset();
        {
            let _s = KernelScope::enter(KernelKind::MatMul, || Work::matmul(4, 4, 4));
        }
        assert_eq!(slot_of(KernelKind::MatMul).calls.load(Ordering::Relaxed), 0);
        assert!(crate::report::collapsed().is_empty());
    }

    #[test]
    fn kernel_scope_accumulates_work_and_time() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        for _ in 0..3 {
            let _s = KernelScope::enter(KernelKind::MatMul, || Work::matmul(2, 3, 4));
            std::thread::sleep(Duration::from_millis(1));
        }
        crate::set_enabled(false);
        flush_current_thread();
        let slot = slot_of(KernelKind::MatMul);
        assert_eq!(slot.calls.load(Ordering::Relaxed), 3);
        assert_eq!(slot.flops.load(Ordering::Relaxed), 3 * 2 * 2 * 3 * 4);
        assert_eq!(slot.elems.load(Ordering::Relaxed), 3 * 8);
        assert!(slot.wall_ns.load(Ordering::Relaxed) >= 3_000_000);
        assert!(
            slot.self_ns.load(Ordering::Relaxed) <= slot.wall_ns.load(Ordering::Relaxed),
            "self never exceeds wall"
        );
    }

    #[test]
    fn nested_scopes_split_self_time_and_fold_paths() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _outer = KernelScope::enter(KernelKind::Conv2d, || Work::custom(1, 0, 0));
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = KernelScope::enter(KernelKind::Im2col, || Work::copy(64));
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        crate::set_enabled(false);
        flush_current_thread();
        let conv = slot_of(KernelKind::Conv2d);
        let im2col = slot_of(KernelKind::Im2col);
        let conv_wall = conv.wall_ns.load(Ordering::Relaxed);
        let conv_self = conv.self_ns.load(Ordering::Relaxed);
        let im_wall = im2col.wall_ns.load(Ordering::Relaxed);
        assert!(conv_wall >= im_wall, "parent wall covers child");
        assert!(
            conv_self <= conv_wall - im_wall + 1_000_000,
            "parent self excludes child: self {conv_self}, wall {conv_wall}, child {im_wall}"
        );
        let folded = crate::report::collapsed();
        assert!(folded.contains("conv2d;im2col "), "{folded}");
        let conv_line = folded
            .lines()
            .find(|l| l.starts_with("conv2d ") || l.starts_with("conv2d\t"))
            .unwrap_or("");
        assert!(!conv_line.is_empty(), "top-level conv2d line in {folded}");
    }

    #[test]
    fn stage_scopes_shape_stacks_without_kernel_slots() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _stage = StageScope::enter("serve/batch");
            let _k = KernelScope::enter(KernelKind::Softmax, || Work::softmax(4, 10));
        }
        crate::set_enabled(false);
        flush_current_thread();
        let folded = crate::report::collapsed();
        assert!(folded.contains("serve/batch;softmax "), "{folded}");
        assert_eq!(
            slot_of(KernelKind::Softmax).calls.load(Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        let t = std::thread::spawn(|| {
            let _s = KernelScope::enter(KernelKind::Reduction, || Work::reduce(100));
        });
        t.join().ok();
        crate::set_enabled(false);
        let folded = crate::report::collapsed();
        assert!(folded.contains("reduction "), "{folded}");
    }
}
