//! Profile exports: the per-kernel achieved-rate table, the
//! collapsed-stack (flamegraph-compatible) dump, and gauges published into
//! an `adv-obs` registry.

use crate::kernel::{self, KernelKind};
use adv_obs::Registry;
use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// One kernel's accumulated accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelReport {
    /// The kernel.
    pub kind: KernelKind,
    /// Completed invocations.
    pub calls: u64,
    /// Total wall time inside the kernel, children included (ns).
    pub wall_ns: u64,
    /// Wall time minus time inside child scopes (ns).
    pub self_ns: u64,
    /// Output elements produced across all calls.
    pub elems: u64,
    /// Declared floating-point operations across all calls.
    pub flops: u64,
    /// Declared bytes moved across all calls.
    pub bytes: u64,
}

impl KernelReport {
    /// Achieved GFLOP/s over the kernel's wall time (0 when unmeasured).
    pub fn gflops(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.flops as f64 / self.wall_ns as f64
    }

    /// Achieved GB/s of declared traffic over the kernel's wall time.
    pub fn gbytes_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.bytes as f64 / self.wall_ns as f64
    }
}

/// Snapshot of every kernel with at least one completed call, sorted by
/// self time descending.
pub fn kernel_reports() -> Vec<KernelReport> {
    let slots = kernel::slots();
    let mut reports: Vec<KernelReport> = KernelKind::ALL
        .iter()
        .filter_map(|&kind| {
            let slot = slots.get(kind as usize)?;
            // Reporting-only reads of independent counters: a snapshot
            // racing a recording thread may tear across fields, which only
            // skews a report momentarily — every load below is Relaxed.
            let calls = slot.calls.load(Ordering::Relaxed); // lint-ok(ordering-justified): reporting-only read, see block comment
            if calls == 0 {
                return None;
            }
            Some(KernelReport {
                kind,
                calls,
                wall_ns: slot.wall_ns.load(Ordering::Relaxed), // lint-ok(ordering-justified): reporting-only read, see block comment
                self_ns: slot.self_ns.load(Ordering::Relaxed), // lint-ok(ordering-justified): reporting-only read, see block comment
                elems: slot.elems.load(Ordering::Relaxed), // lint-ok(ordering-justified): reporting-only read, see block comment
                flops: slot.flops.load(Ordering::Relaxed), // lint-ok(ordering-justified): reporting-only read, see block comment
                bytes: slot.bytes.load(Ordering::Relaxed), // lint-ok(ordering-justified): reporting-only read, see block comment
            })
        })
        .collect();
    reports.sort_by_key(|r| std::cmp::Reverse(r.self_ns));
    reports
}

/// Sum of kernel self time across all kinds — the numerator of the
/// "fraction of wall time attributed to named kernels" check. Self time
/// (not wall) so nested kernels never double-count.
pub fn total_kernel_self_ns() -> u64 {
    kernel_reports().iter().map(|r| r.self_ns).sum()
}

/// Renders the per-kernel table the probes print:
///
/// ```text
/// kernel            calls      total       self   GFLOP/s     GB/s
/// matmul             1520    1.203s      1.203s      1.84     2.51
/// ```
pub fn kernel_table() -> String {
    let reports = kernel_reports();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>11} {:>11} {:>9} {:>8}",
        "kernel", "calls", "total", "self", "GFLOP/s", "GB/s"
    );
    for r in &reports {
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>11} {:>11} {:>9.2} {:>8.2}",
            r.kind.name(),
            r.calls,
            format_ns(r.wall_ns),
            format_ns(r.self_ns),
            r.gflops(),
            r.gbytes_per_s(),
        );
    }
    let total = total_kernel_self_ns();
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>11} {:>11}",
        "TOTAL (self)",
        "",
        "",
        format_ns(total)
    );
    let dropped = kernel::dropped_stacks() + crate::trace::dropped_spans();
    if dropped > 0 {
        let _ = writeln!(out, "({dropped} profile entries dropped under contention)");
    }
    out
}

/// The collapsed-stack dump in the flamegraph "folded" format — one line
/// per distinct call path, `frame;frame;frame self_ns`, sorted for stable
/// output. Feed it straight to `flamegraph.pl` or `inferno`.
pub fn collapsed() -> String {
    kernel::flush_current_thread();
    let sink = kernel::stack_sink();
    let mut lines: Vec<String> = match sink.stacks.lock() {
        Ok(stacks) => stacks
            .iter()
            .map(|(path, ns)| format!("{} {ns}", path.join(";")))
            .collect(),
        Err(_) => Vec::new(),
    };
    lines.sort();
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Publishes the current kernel accounting into `registry` as gauges
/// (`profile.kernel.<name>.{calls,wall_ns,self_ns,gflops}` plus
/// `profile.self_ns_total` and `profile.dropped`). Gauge semantics make
/// republishing idempotent — probes call this right before exporting the
/// registry snapshot.
pub fn publish_to(registry: &Registry) {
    for r in kernel_reports() {
        let base = format!("profile.kernel.{}", r.kind.name());
        registry.gauge(&format!("{base}.calls")).set(r.calls as f64);
        registry
            .gauge(&format!("{base}.wall_ns"))
            .set(r.wall_ns as f64);
        registry
            .gauge(&format!("{base}.self_ns"))
            .set(r.self_ns as f64);
        registry.gauge(&format!("{base}.gflops")).set(r.gflops());
    }
    registry
        .gauge("profile.self_ns_total")
        .set(total_kernel_self_ns() as f64);
    registry
        .gauge("profile.dropped")
        .set((kernel::dropped_stacks() + crate::trace::dropped_spans()) as f64);
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_enabled_lock;
    use crate::{KernelScope, Work};

    #[test]
    fn reports_table_and_registry_cover_recorded_kernels() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = KernelScope::enter(KernelKind::MatMul, || Work::matmul(8, 8, 8));
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        kernel::flush_current_thread();

        let reports = kernel_reports();
        assert_eq!(reports.len(), 1);
        let r = reports.first().unwrap();
        assert_eq!(r.kind, KernelKind::MatMul);
        assert_eq!(r.calls, 1);
        assert_eq!(r.flops, 2 * 8 * 8 * 8);
        assert!(r.gflops() > 0.0);
        assert!(total_kernel_self_ns() >= 1_000_000);

        let table = kernel_table();
        assert!(table.contains("matmul"), "{table}");
        assert!(table.contains("TOTAL (self)"), "{table}");

        let registry = Registry::new();
        publish_to(&registry);
        let snap = registry.snapshot();
        assert!(snap.gauge("profile.kernel.matmul.calls").is_some());
        assert!(snap.gauge("profile.self_ns_total").unwrap() >= 1e6);
    }

    #[test]
    fn collapsed_output_is_folded_format() {
        let _guard = test_enabled_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _outer = KernelScope::enter(KernelKind::Conv2d, || Work::custom(1, 0, 0));
            let _inner = KernelScope::enter(KernelKind::MatMulABt, || Work::matmul(2, 2, 2));
        }
        crate::set_enabled(false);
        let folded = collapsed();
        let line = folded
            .lines()
            .find(|l| l.starts_with("conv2d;matmul_a_bt"))
            .unwrap_or("");
        assert!(!line.is_empty(), "{folded}");
        let mut parts = line.rsplitn(2, ' ');
        let ns: u64 = parts.next().unwrap_or("x").parse().unwrap_or(u64::MAX);
        assert!(ns < u64::MAX, "numeric self field: {line}");
    }
}
