//! Property-based tests for the tensor substrate: algebraic laws of the
//! elementwise ops, norm inequalities, and adjointness of the conv/pool
//! kernels under random geometry.

use adv_tensor::ops::{
    avg_pool2d, avg_pool2d_backward, col2im, conv2d, conv2d_backward, im2col, matmul,
    upsample2d_nearest, upsample2d_nearest_backward, Conv2dSpec, Pool2dSpec,
};
use adv_tensor::{norms, Shape, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn add_commutes(data in small_vec(16)) {
        let a = Tensor::from_vec(data.clone(), Shape::vector(16)).unwrap();
        let b = Tensor::from_vec(data.iter().rev().copied().collect(), Shape::vector(16)).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_is_additive_inverse(data in small_vec(12)) {
        let a = Tensor::from_vec(data, Shape::vector(12)).unwrap();
        let zero = a.sub(&a).unwrap();
        prop_assert!(zero.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_distributes_over_add(data in small_vec(8), k in -5.0f32..5.0) {
        let a = Tensor::from_vec(data.clone(), Shape::vector(8)).unwrap();
        let b = Tensor::from_vec(data.iter().map(|v| v * 0.5 + 1.0).collect(), Shape::vector(8)).unwrap();
        let lhs = a.add(&b).unwrap().scale(k);
        let rhs = a.scale(k).add(&b.scale(k)).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() <= 1e-3 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn l2_triangle_inequality(xs in small_vec(10), ys in small_vec(10)) {
        let a = Tensor::from_vec(xs, Shape::vector(10)).unwrap();
        let b = Tensor::from_vec(ys, Shape::vector(10)).unwrap();
        let sum = a.add(&b).unwrap();
        prop_assert!(norms::l2_norm(&sum) <= norms::l2_norm(&a) + norms::l2_norm(&b) + 1e-3);
    }

    #[test]
    fn l1_dominates_l2_dominates_linf(xs in small_vec(10)) {
        let a = Tensor::from_vec(xs, Shape::vector(10)).unwrap();
        prop_assert!(norms::l1_norm(&a) + 1e-4 >= norms::l2_norm(&a));
        prop_assert!(norms::l2_norm(&a) + 1e-4 >= norms::linf_norm(&a));
    }

    #[test]
    fn elastic_net_monotone_in_beta(xs in small_vec(10), b1 in 0.0f32..0.5, db in 0.0f32..0.5) {
        let a = Tensor::from_vec(xs, Shape::vector(10)).unwrap();
        let zero = Tensor::zeros(Shape::vector(10));
        let lo = norms::elastic_net_dist(&a, &zero, b1).unwrap();
        let hi = norms::elastic_net_dist(&a, &zero, b1 + db).unwrap();
        prop_assert!(hi >= lo - 1e-4);
    }

    #[test]
    fn matmul_identity(r in 1usize..6, c in 1usize..6, seed in 0u64..1000) {
        let a = Tensor::from_fn(Shape::matrix(r, c), |i| ((i as u64 * 2654435761 + seed) % 17) as f32 - 8.0);
        let id = Tensor::from_fn(Shape::matrix(c, c), |i| if i / c == i % c { 1.0 } else { 0.0 });
        prop_assert_eq!(matmul(&a, &id).unwrap(), a);
    }

    #[test]
    fn matmul_linearity(seed in 0u64..1000) {
        // (A + B)·C == A·C + B·C
        let gen = |s: u64| Tensor::from_fn(Shape::matrix(3, 4), move |i| ((i as u64 * 31 + s) % 13) as f32 - 6.0);
        let a = gen(seed);
        let b = gen(seed + 7);
        let c = Tensor::from_fn(Shape::matrix(4, 2), |i| ((i * 7) % 5) as f32 - 2.0);
        let lhs = matmul(&a.add(&b).unwrap(), &c).unwrap();
        let rhs = matmul(&a, &c).unwrap().add(&matmul(&b, &c).unwrap()).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-2);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(h in 3usize..7, w in 3usize..7, c in 1usize..3, seed in 0u64..100) {
        let spec = Conv2dSpec::same(c, 1, 3);
        let x = Tensor::from_fn(Shape::nchw(1, c, h, w), |i| ((i as u64 * 97 + seed) % 19) as f32 * 0.1 - 0.9);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cols.shape().clone(), |i| ((i as u64 * 53 + seed) % 23) as f32 * 0.05 - 0.5);
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, 1, h, w, &spec).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn conv_is_linear_in_input(seed in 0u64..100) {
        let spec = Conv2dSpec::same(1, 2, 3);
        let w = Tensor::from_fn(Shape::new(vec![2, 1, 3, 3]), |i| ((i * 5) % 7) as f32 * 0.1 - 0.3);
        let b = Tensor::zeros(Shape::vector(2));
        let gen = |s: u64| Tensor::from_fn(Shape::nchw(1, 1, 5, 5), move |i| ((i as u64 * 41 + s) % 11) as f32 * 0.1);
        let x1 = gen(seed);
        let x2 = gen(seed + 13);
        let lhs = conv2d(&x1.add(&x2).unwrap(), &w, &b, &spec).unwrap();
        let rhs = conv2d(&x1, &w, &b, &spec).unwrap().add(&conv2d(&x2, &w, &b, &spec).unwrap()).unwrap();
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_backward_input_grad_is_adjoint(seed in 0u64..50) {
        // <conv(x), dy> == <x, dx> when bias = 0 — conv is linear in x, so its
        // Jacobian-transpose action must satisfy the adjoint identity exactly.
        let spec = Conv2dSpec::same(2, 3, 3);
        let x = Tensor::from_fn(Shape::nchw(1, 2, 4, 4), |i| ((i as u64 * 29 + seed) % 13) as f32 * 0.1 - 0.6);
        let w = Tensor::from_fn(Shape::new(vec![3, 2, 3, 3]), |i| ((i as u64 * 17 + seed) % 9) as f32 * 0.1 - 0.4);
        let b = Tensor::zeros(Shape::vector(3));
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        let dy = Tensor::from_fn(y.shape().clone(), |i| ((i as u64 * 7 + seed) % 5) as f32 * 0.2 - 0.4);
        let (dx, _, _) = conv2d_backward(&x, &w, &dy, &spec).unwrap();
        let lhs = y.dot(&dy).unwrap();
        let rhs = x.dot(&dx).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn avg_pool_preserves_mean(h in 2usize..5, seed in 0u64..100) {
        let spec = Pool2dSpec::square(2);
        let x = Tensor::from_fn(Shape::nchw(1, 1, h * 2, h * 2), |i| ((i as u64 * 61 + seed) % 15) as f32 * 0.1);
        let y = avg_pool2d(&x, &spec).unwrap();
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    #[test]
    fn avg_pool_adjoint(h in 2usize..5, seed in 0u64..100) {
        let spec = Pool2dSpec::square(2);
        let x = Tensor::from_fn(Shape::nchw(1, 2, h * 2, h * 2), |i| ((i as u64 * 43 + seed) % 17) as f32 * 0.1 - 0.8);
        let y = Tensor::from_fn(Shape::nchw(1, 2, h, h), |i| ((i as u64 * 37 + seed) % 7) as f32 * 0.2 - 0.6);
        let lhs = avg_pool2d(&x, &spec).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&avg_pool2d_backward(x.shape(), &y, &spec).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn upsample_adjoint(h in 2usize..5, f in 1usize..4, seed in 0u64..100) {
        let x = Tensor::from_fn(Shape::nchw(1, 1, h, h), |i| ((i as u64 * 71 + seed) % 9) as f32 * 0.1);
        let y = Tensor::from_fn(Shape::nchw(1, 1, h * f, h * f), |i| ((i as u64 * 11 + seed) % 5) as f32 * 0.2);
        let lhs = upsample2d_nearest(&x, f).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&upsample2d_nearest_backward(&y, f).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    #[test]
    fn reshape_preserves_data(data in small_vec(24)) {
        let a = Tensor::from_vec(data.clone(), Shape::new(vec![2, 3, 4])).unwrap();
        let b = a.reshape(Shape::new(vec![4, 6])).unwrap();
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn stack_then_index_roundtrip(data in small_vec(6)) {
        let a = Tensor::from_vec(data[..3].to_vec(), Shape::vector(3)).unwrap();
        let b = Tensor::from_vec(data[3..].to_vec(), Shape::vector(3)).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        prop_assert_eq!(s.index_axis0(0).unwrap(), a);
        prop_assert_eq!(s.index_axis0(1).unwrap(), b);
    }
}
