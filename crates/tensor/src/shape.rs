use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated list of tensor dimensions.
///
/// `Shape` is row-major: the last dimension varies fastest in the underlying
/// buffer. The empty shape `[]` denotes a scalar with volume 1.
///
/// # Example
///
/// ```
/// use adv_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// Shorthand for a rank-1 shape `[n]`.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// Shorthand for a rank-2 shape `[rows, cols]`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Shorthand for an NCHW image batch shape `[n, c, h, w]`.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index, or `None` if any coordinate is
    /// out of bounds or the rank differs.
    pub fn offset(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.0.len() {
            return None;
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&ix, &dim)) in index.iter().zip(self.0.iter()).enumerate() {
            if ix >= dim {
                return None;
            }
            off += ix * strides[i];
        }
        Some(off)
    }

    /// `true` when the shape has no zero-sized dimension.
    pub fn is_nonempty(&self) -> bool {
        self.0.iter().all(|&d| d > 0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_of_scalar_is_one() {
        assert_eq!(Shape::new(vec![]).volume(), 1);
    }

    #[test]
    fn volume_is_product() {
        assert_eq!(Shape::new(vec![2, 3, 4]).volume(), 24);
        assert_eq!(Shape::new(vec![5]).volume(), 5);
        assert_eq!(Shape::new(vec![7, 0, 3]).volume(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![6]).strides(), vec![1]);
        assert!(Shape::new(vec![]).strides().is_empty());
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), Some(0));
        assert_eq!(s.offset(&[1, 2, 3]), Some(23));
        assert_eq!(s.offset(&[1, 0, 2]), Some(14));
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[2, 0]), None);
        assert_eq!(s.offset(&[0, 3]), None);
        assert_eq!(s.offset(&[0]), None);
    }

    #[test]
    fn nchw_constructor() {
        let s = Shape::nchw(8, 3, 16, 16);
        assert_eq!(s.dims(), &[8, 3, 16, 16]);
        assert_eq!(s.volume(), 8 * 3 * 16 * 16);
    }

    #[test]
    fn conversion_from_array() {
        let s: Shape = [2, 2].into();
        assert_eq!(s, Shape::matrix(2, 2));
    }

    #[test]
    fn display_renders_dims() {
        assert_eq!(Shape::new(vec![1, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn nonempty_detection() {
        assert!(Shape::new(vec![1, 2]).is_nonempty());
        assert!(!Shape::new(vec![1, 0]).is_nonempty());
        assert!(Shape::new(vec![]).is_nonempty());
    }
}
