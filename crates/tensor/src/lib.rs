//! Dense `f32` tensor substrate for the MagNet/EAD reproduction.
//!
//! This crate provides the numerical foundation every other crate in the
//! workspace builds on:
//!
//! - [`Tensor`]: a dense, row-major, `f32` n-dimensional array with
//!   elementwise arithmetic, reductions and shape manipulation,
//! - [`Shape`]: a validated dimension list with stride computation,
//! - convolution / pooling / upsampling kernels in [`ops`] (the exact
//!   forward *and* backward kernels used by `adv-nn` layers),
//! - blocked matrix multiplication in [`ops::matmul()`],
//! - distortion norms (L0/L1/L2/L∞) in [`norms`] — the metrics the paper
//!   reports in Table I,
//! - seeded weight initializers in [`init`].
//!
//! Everything is deterministic given a seed; no global state is used.
//!
//! # Example
//!
//! ```
//! use adv_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::new(vec![2, 2]))?;
//! let b = Tensor::ones(Shape::new(vec![2, 2]));
//! let c = a.add(&b)?;
//! assert_eq!(c.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
//! # Ok::<(), adv_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod shape;
mod tensor;

pub mod init;
pub mod norms;
pub mod ops;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
