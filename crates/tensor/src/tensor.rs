use crate::{Result, Shape, TensorError};
use adv_profile::{KernelKind, KernelScope, Work};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` owns its buffer (`Vec<f32>`) and carries a [`Shape`]. All binary
/// operations are *fallible* and return [`TensorError::ShapeMismatch`] rather
/// than panicking, so shape bugs surface as values at the call site.
///
/// Image batches use NCHW layout throughout the workspace.
///
/// # Example
///
/// ```
/// use adv_tensor::{Tensor, Shape};
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], Shape::vector(3))?;
/// let y = x.map(|v| v.max(0.0)); // ReLU
/// assert_eq!(y.as_slice(), &[1.0, 0.0, 3.0]);
/// # Ok::<(), adv_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor from a data buffer and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// `shape.volume()`.
    pub fn from_vec(data: Vec<f32>, shape: Shape) -> Result<Self> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor {
            data: vec![value; shape.volume()],
            shape,
        }
    }

    /// Creates a zero tensor.
    pub fn zeros(shape: Shape) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(vec![]),
        }
    }

    /// Creates a tensor by evaluating `f` at each flat (row-major) index.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(usize) -> f32) -> Self {
        let n = shape.volume();
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f(i));
        }
        Tensor { data, shape }
    }

    // ------------------------------------------------------------ accessors

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid for
    /// this shape.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let off = self
            .shape
            .offset(index)
            .ok_or(TensorError::IndexOutOfBounds {
                index: index.first().copied().unwrap_or(0),
                bound: self.shape.dims().first().copied().unwrap_or(0),
            })?;
        Ok(self.data[off])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self
            .shape
            .offset(index)
            .ok_or(TensorError::IndexOutOfBounds {
                index: index.first().copied().unwrap_or(0),
                bound: self.shape.dims().first().copied().unwrap_or(0),
            })?;
        self.data[off] = value;
        Ok(())
    }

    // --------------------------------------------------------- shape moves

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Consuming variant of [`reshape`](Self::reshape); avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn into_reshaped(self, shape: Shape) -> Result<Tensor> {
        Tensor::from_vec(self.data, shape)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, Shape::matrix(c, r))
    }

    /// Extracts item `i` along axis 0 (e.g. one image from an NCHW batch).
    ///
    /// The result has the remaining dimensions; a rank-1 input yields a
    /// scalar.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `i` exceeds the batch
    /// size and [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dim(0);
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
        }
        let item = self.shape.volume() / n;
        let dims = self.shape.dims()[1..].to_vec();
        let _prof = KernelScope::enter(KernelKind::Memcpy, || Work::copy(item));
        // lint-ok(no-alloc-in-kernel): the output allocation is the measured
        // copy itself — there is no way to hoist it without copying twice
        let data = self.data[i * item..(i + 1) * item].to_vec();
        Tensor::from_vec(data, Shape::new(dims))
    }

    /// Overwrites item `i` along axis 0 with `src`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `i` exceeds the batch
    /// size, and [`TensorError::ShapeMismatch`] when `src` does not have the
    /// per-item shape.
    pub fn set_axis0(&mut self, i: usize, src: &Tensor) -> Result<()> {
        let n = self.shape.dim(0);
        if i >= n {
            return Err(TensorError::IndexOutOfBounds { index: i, bound: n });
        }
        let item = self.shape.volume() / n;
        if src.len() != item || src.shape.dims() != &self.shape.dims()[1..] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims()[1..].to_vec(),
                right: src.shape.dims().to_vec(),
            });
        }
        self.data[i * item..(i + 1) * item].copy_from_slice(src.as_slice());
        Ok(())
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input and
    /// [`TensorError::ShapeMismatch`] when items disagree in shape.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("stack of zero tensors".into()))?;
        // Validate and allocate before entering the kernel scope: the
        // measured region is the copy alone.
        for t in items {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims().to_vec(),
                    right: t.shape.dims().to_vec(),
                });
            }
        }
        let mut data = Vec::with_capacity(first.len() * items.len());
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.shape.dims());
        let _prof =
            KernelScope::enter(KernelKind::Memcpy, || Work::copy(first.len() * items.len()));
        for t in items {
            data.extend_from_slice(t.as_slice());
        }
        Tensor::from_vec(data, Shape::new(dims))
    }

    /// Concatenates tensors along axis 0 (batch axis).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input and
    /// [`TensorError::ShapeMismatch`] when trailing dimensions disagree.
    pub fn concat0(items: &[Tensor]) -> Result<Tensor> {
        let first = items
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        if first.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let tail = &first.shape.dims()[1..];
        // Validate and allocate before entering the kernel scope: the
        // measured region is the copy alone.
        let mut n = 0usize;
        for t in items {
            if t.shape.rank() != first.shape.rank() || &t.shape.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    left: first.shape.dims().to_vec(),
                    right: t.shape.dims().to_vec(),
                });
            }
            n += t.shape.dim(0);
        }
        let total: usize = items.iter().map(Tensor::len).sum();
        let mut data = Vec::with_capacity(total);
        let mut dims = vec![n];
        dims.extend_from_slice(tail);
        let _prof = KernelScope::enter(KernelKind::Memcpy, || Work::copy(total));
        for t in items {
            data.extend_from_slice(t.as_slice());
        }
        Tensor::from_vec(data, Shape::new(dims))
    }

    // ---------------------------------------------------------- elementwise

    fn check_same_shape(&self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.dims().to_vec(),
                right: other.shape.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient `self / other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|v| v * k)
    }

    /// Adds `k` to every element.
    pub fn add_scalar(&self, k: f32) -> Tensor {
        self.map(|v| v + k)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Clamps every element to `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let shape = self.shape.clone();
        let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::map(self.data.len()));
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::map(self.data.len()));
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other)?;
        let shape = self.shape.clone();
        let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::zip(self.data.len()));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor { data, shape })
    }

    /// In-place `self += k * other` (axpy). Hot path for optimizers and
    /// attack iterations.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, k: f32) -> Result<()> {
        self.check_same_shape(other)?;
        let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::zip(self.data.len()));
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += k * b;
        }
        Ok(())
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.add_scaled_assign(other, 1.0)
    }

    /// In-place `self *= k`.
    pub fn scale_assign(&mut self, k: f32) {
        let _prof = KernelScope::enter(KernelKind::Elementwise, || Work::map(self.data.len()));
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(self.data.len()));
        // Kahan summation keeps reductions stable for the long, small-valued
        // buffers produced by image batches.
        let mut sum = 0.0f32;
        let mut comp = 0.0f32;
        for &v in &self.data {
            let y = v - comp;
            let t = sum + y;
            comp = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(self.data.len()));
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(self.data.len()));
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence), or `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Per-row argmax of a rank-2 tensor (e.g. predicted class per example).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not rank 2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Vec::with_capacity(r);
        let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(self.data.len()));
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            // lint-ok(no-alloc-in-kernel): pre-sized with_capacity(r) above — push never reallocates
            out.push(best);
        }
        Ok(out)
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other)?;
        let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(self.data.len()));
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …({} total)", self.data.len())?;
        }
        write!(f, "]")
    }
}

impl std::ops::Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        Tensor::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::new(dims.to_vec())).unwrap()
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(vec![1.0, 2.0], Shape::matrix(2, 2)).unwrap_err();
        assert_eq!(
            err,
            TensorError::LengthMismatch {
                expected: 4,
                actual: 2
            }
        );
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0], &[2, 1]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn scale_and_clamp() {
        let a = t(&[-1.0, 0.5, 2.0], &[3]);
        assert_eq!(a.scale(2.0).as_slice(), &[-2.0, 1.0, 4.0]);
        assert_eq!(a.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn reductions() {
        let a = t(&[1.0, -2.0, 3.0, 0.0], &[2, 2]);
        assert_eq!(a.sum(), 2.0);
        assert_eq!(a.mean(), 0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), Some(2));
    }

    #[test]
    fn argmax_rows_per_example() {
        let a = t(&[0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_requires_rank2() {
        let a = t(&[1.0, 2.0], &[2]);
        assert!(matches!(
            a.argmax_rows(),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transpose_2x3() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.shape().dims(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn index_axis0_extracts_batch_item() {
        let batch = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let item = batch.index_axis0(1).unwrap();
        assert_eq!(item.shape().dims(), &[3]);
        assert_eq!(item.as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn set_axis0_replaces_batch_item() {
        let mut batch = Tensor::zeros(Shape::matrix(2, 2));
        batch.set_axis0(1, &t(&[7.0, 8.0], &[2])).unwrap();
        assert_eq!(batch.as_slice(), &[0.0, 0.0, 7.0, 8.0]);
        assert!(batch.set_axis0(2, &t(&[1.0, 1.0], &[2])).is_err());
        assert!(batch.set_axis0(0, &t(&[1.0], &[1])).is_err());
    }

    #[test]
    fn stack_builds_batch() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0], &[2]);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_rejects_mixed_shapes_and_empty() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0], &[1]);
        assert!(Tensor::stack(&[a, b]).is_err());
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn concat0_joins_batches() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::concat0(&[a, b]).unwrap();
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = t(&[1.0, 2.0], &[2]);
        let g = t(&[0.5, -0.5], &[2]);
        a.add_scaled_assign(&g, -2.0).unwrap();
        assert_eq!(a.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn get_set_multi_index() {
        let mut a = Tensor::zeros(Shape::new(vec![2, 3, 4]));
        a.set(&[1, 2, 3], 9.0).unwrap();
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 9.0);
        assert!(a.get(&[2, 0, 0]).is_err());
    }

    #[test]
    fn dot_product() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn display_previews_elements() {
        let a = Tensor::zeros(Shape::vector(20));
        let s = a.to_string();
        assert!(s.contains("(20 total)"));
    }

    #[test]
    fn neg_operator() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!((-&a).as_slice(), &[-1.0, 2.0]);
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1e6 values of 0.1 — naive f32 summation drifts noticeably.
        let a = Tensor::full(Shape::vector(1_000_000), 0.1);
        assert!((a.sum() - 100_000.0).abs() < 1.0);
    }
}
