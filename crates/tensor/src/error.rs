use std::fmt;

/// Errors produced by tensor construction and tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; shapes are rendered in `Display`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// buffer length.
    LengthMismatch {
        /// Elements expected from the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// An operation required a specific rank (number of dimensions).
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// An index was out of bounds for the tensor.
    IndexOutOfBounds {
        /// The offending flat or axis index.
        index: usize,
        /// The bound that was exceeded.
        bound: usize,
    },
    /// An operation received a parameter outside its valid domain
    /// (e.g. zero stride, empty shape where non-empty is required).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension of size {bound}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
        };
        let msg = err.to_string();
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_length_mismatch() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 5,
        };
        assert_eq!(
            err.to_string(),
            "data length 5 does not match shape volume 4"
        );
    }

    #[test]
    fn display_matmul_mismatch() {
        let err = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        assert!(err.to_string().contains("3 columns"));
        assert!(err.to_string().contains("4 rows"));
    }
}
