//! Seeded weight initializers.
//!
//! All initializers draw from a caller-provided RNG so that training is
//! reproducible end-to-end from a single `u64` seed.

use crate::{Shape, Tensor};
use rand::Rng;

/// Uniform values in `[lo, hi)`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| rng.gen_range(lo..hi))
}

/// Standard normal values scaled by `std`, generated with Box–Muller.
pub fn normal(shape: Shape, std: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_fn(shape, |_| {
        // Box–Muller transform; clamp u1 away from 0 to avoid ln(0).
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

/// Glorot/Xavier uniform initialization: `U(±√(6 / (fan_in + fan_out)))`.
///
/// Appropriate for sigmoid/tanh layers — the activation MagNet's
/// auto-encoders use throughout.
pub fn glorot_uniform(shape: Shape, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

/// He/Kaiming normal initialization: `N(0, √(2 / fan_in))`.
///
/// Appropriate for ReLU layers — the victim classifiers.
pub fn he_normal(shape: Shape, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    normal(shape, (2.0 / fan_in.max(1) as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(Shape::vector(1000), -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = normal(Shape::vector(20_000), 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn glorot_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(1);
        let small_fan = glorot_uniform(Shape::vector(100), 2, 2, &mut rng);
        let large_fan = glorot_uniform(Shape::vector(100), 2000, 2000, &mut rng);
        assert!(small_fan.map(f32::abs).max() > large_fan.map(f32::abs).max());
    }

    #[test]
    fn seeded_init_is_reproducible() {
        let a = glorot_uniform(Shape::vector(64), 8, 8, &mut StdRng::seed_from_u64(3));
        let b = glorot_uniform(Shape::vector(64), 8, 8, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = he_normal(Shape::vector(10_000), 50, &mut rng);
        let std = t.map(|v| v * v).mean().sqrt();
        let expected = (2.0f32 / 50.0).sqrt();
        assert!((std - expected).abs() < 0.02, "std {std} vs {expected}");
    }
}
