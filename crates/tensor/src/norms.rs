//! Distortion metrics between natural and adversarial examples.
//!
//! The paper reports L1 and L2 distortions (Table I) and argues that the
//! choice of metric — L1 vs L2 — is precisely what separates EAD from C&W.
//! L0 and L∞ are included because the attack literature (and the EAD paper)
//! report them as well.

use crate::{Result, Tensor, TensorError};
use adv_profile::{KernelKind, KernelScope, Work};

fn check(a: &Tensor, b: &Tensor) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().dims().to_vec(),
            right: b.shape().dims().to_vec(),
        });
    }
    Ok(())
}

/// Number of non-zero elements of `t` (with tolerance `tol`).
pub fn l0_norm(t: &Tensor, tol: f32) -> usize {
    t.as_slice().iter().filter(|v| v.abs() > tol).count()
}

/// `‖t‖₁ = Σ|tᵢ|`.
pub fn l1_norm(t: &Tensor) -> f32 {
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(t.len()));
    t.as_slice().iter().map(|v| v.abs()).sum()
}

/// `‖t‖₂ = √(Σ tᵢ²)`.
pub fn l2_norm(t: &Tensor) -> f32 {
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(t.len()));
    t.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Squared L2 norm `Σ tᵢ²` (avoids the square root on hot paths).
pub fn l2_norm_sq(t: &Tensor) -> f32 {
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(t.len()));
    t.as_slice().iter().map(|v| v * v).sum::<f32>()
}

/// `‖t‖_∞ = max |tᵢ|`.
pub fn linf_norm(t: &Tensor) -> f32 {
    t.as_slice().iter().map(|v| v.abs()).fold(0.0, f32::max)
}

/// L1 distance `‖a − b‖₁`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn l1_dist(a: &Tensor, b: &Tensor) -> Result<f32> {
    check(a, b)?;
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(a.len()));
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .sum())
}

/// L2 distance `‖a − b‖₂`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn l2_dist(a: &Tensor, b: &Tensor) -> Result<f32> {
    check(a, b)?;
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(a.len()));
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt())
}

/// L∞ distance `max |aᵢ − bᵢ|`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn linf_dist(a: &Tensor, b: &Tensor) -> Result<f32> {
    check(a, b)?;
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max))
}

/// Elastic-net distance `‖a − b‖₂² + β·‖a − b‖₁` — EAD's decision metric
/// under the EN rule (paper eq. 1 without the attack loss term).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when shapes differ.
pub fn elastic_net_dist(a: &Tensor, b: &Tensor, beta: f32) -> Result<f32> {
    check(a, b)?;
    let _prof = KernelScope::enter(KernelKind::Reduction, || Work::reduce(a.len()));
    let mut l1 = 0.0f32;
    let mut l2sq = 0.0f32;
    for (&x, &y) in a.as_slice().iter().zip(b.as_slice()) {
        let d = x - y;
        l1 += d.abs();
        l2sq += d * d;
    }
    Ok(l2sq + beta * l1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    fn t(data: &[f32]) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::vector(data.len())).unwrap()
    }

    #[test]
    fn norms_of_known_vector() {
        let v = t(&[3.0, -4.0, 0.0]);
        assert_eq!(l0_norm(&v, 1e-9), 2);
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(l2_norm_sq(&v), 25.0);
        assert_eq!(linf_norm(&v), 4.0);
    }

    #[test]
    fn distances_of_known_vectors() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[1.0, 0.0, 0.0]);
        assert_eq!(l1_dist(&a, &b).unwrap(), 5.0);
        assert!((l2_dist(&a, &b).unwrap() - 13.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(linf_dist(&a, &b).unwrap(), 3.0);
    }

    #[test]
    fn elastic_net_combines_both() {
        let a = t(&[1.0, 0.0]);
        let b = t(&[0.0, 0.0]);
        // δ = (1, 0): ‖δ‖₂² = 1, ‖δ‖₁ = 1 → 1 + β
        assert_eq!(elastic_net_dist(&a, &b, 0.5).unwrap(), 1.5);
        // β = 0 degenerates to squared L2 (the C&W case).
        assert_eq!(elastic_net_dist(&a, &b, 0.0).unwrap(), 1.0);
    }

    #[test]
    fn zero_distance_for_identical() {
        let a = t(&[0.3, -0.7, 0.9]);
        assert_eq!(l1_dist(&a, &a).unwrap(), 0.0);
        assert_eq!(l2_dist(&a, &a).unwrap(), 0.0);
        assert_eq!(linf_dist(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = t(&[1.0, 2.0]);
        let b = t(&[1.0, 2.0, 3.0]);
        assert!(l1_dist(&a, &b).is_err());
        assert!(l2_dist(&a, &b).is_err());
        assert!(linf_dist(&a, &b).is_err());
        assert!(elastic_net_dist(&a, &b, 0.1).is_err());
    }

    #[test]
    fn l0_tolerance_filters_noise() {
        let v = t(&[1e-8, 0.5, -1e-8]);
        assert_eq!(l0_norm(&v, 1e-6), 1);
        assert_eq!(l0_norm(&v, 0.0), 3);
    }
}
