//! Small statistics helpers used by detector calibration and the evaluation
//! harness (percentiles, means over successful attacks, histograms).

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Sample standard deviation (0 when fewer than two values).
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / (xs.len() - 1) as f32).sqrt()
}

/// The `q`-th quantile (`0.0..=1.0`) with linear interpolation, or `None`
/// when the slice is empty or `q` out of range.
///
/// Used by MagNet's detector calibration: the threshold is the score quantile
/// at `1 − fpr` over clean validation data.
pub fn quantile(xs: &[f32], q: f32) -> Option<f32> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f32;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f32;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Fraction of values strictly above `threshold`.
pub fn fraction_above(xs: &[f32], threshold: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x > threshold).count() as f32 / xs.len() as f32
}

/// A fixed-width histogram over `[lo, hi]` for quick terminal summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates an empty histogram with `bins` buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a value; out-of-range values clamp to the edge bins.
    pub fn add(&mut self, x: f32) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = ((t * bins as f32) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of values added.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 0.01);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn quantile_rejects_empty_and_out_of_range() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 1.5), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
    }

    #[test]
    fn fraction_above_threshold() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_above(&xs, 2.5), 0.5);
        assert_eq!(fraction_above(&xs, 10.0), 0.0);
        assert_eq!(fraction_above(&[], 0.0), 0.0);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.3, 0.6, 0.9, 1.5, -0.2] {
            h.add(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts(), &[2, 1, 1, 2]); // clamped extremes land on edges
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
