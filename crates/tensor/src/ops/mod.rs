//! Numerical kernels: matrix multiplication, convolution, pooling and
//! upsampling, each with the backward passes the `adv-nn` layers need.

pub mod conv;
pub mod matmul;
pub mod pool;

pub use conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dSpec};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, upsample2d_nearest,
    upsample2d_nearest_backward, Pool2dSpec,
};
