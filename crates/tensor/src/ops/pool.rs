//! 2-D pooling (average / max) and nearest-neighbour upsampling with their
//! backward passes.
//!
//! MagNet's MNIST auto-encoders use `AveragePooling 2×2` and `Upsampling 2×2`
//! (paper Table II); the victim classifiers use max pooling. All operate on
//! NCHW tensors.

use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pool2dSpec {
    /// Window height.
    pub kh: usize,
    /// Window width.
    pub kw: usize,
    /// Stride along both axes.
    pub stride: usize,
}

impl Pool2dSpec {
    /// The common square window with stride equal to the window size
    /// (non-overlapping pooling).
    pub fn square(k: usize) -> Self {
        Pool2dSpec {
            kh: k,
            kw: k,
            stride: k,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kh) / self.stride + 1,
            (w - self.kw) / self.stride + 1,
        )
    }

    fn validate(&self, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
        if input.shape().rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: input.shape().rank(),
            });
        }
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be > 0".into()));
        }
        let d = input.shape().dims();
        if d[2] < self.kh || d[3] < self.kw {
            return Err(TensorError::InvalidArgument(format!(
                "pool window {}x{} larger than input {}x{}",
                self.kh, self.kw, d[2], d[3]
            )));
        }
        Ok((d[0], d[1], d[2], d[3]))
    }
}

/// Average pooling forward pass.
///
/// # Errors
///
/// Returns rank / geometry validation errors from [`Pool2dSpec`].
pub fn avg_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = spec.validate(input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let x = input.as_slice();
    let win = (spec.kh * spec.kw) as f32;
    let mut y = vec![0.0f32; n * c * ho * wo];
    for bc in 0..n * c {
        let xp = &x[bc * h * w..(bc + 1) * h * w];
        let yp = &mut y[bc * ho * wo..(bc + 1) * ho * wo];
        for oh in 0..ho {
            for ow in 0..wo {
                let mut acc = 0.0f32;
                for dy in 0..spec.kh {
                    let iy = oh * spec.stride + dy;
                    for dx in 0..spec.kw {
                        acc += xp[iy * w + ow * spec.stride + dx];
                    }
                }
                yp[oh * wo + ow] = acc / win;
            }
        }
    }
    Tensor::from_vec(y, Shape::nchw(n, c, ho, wo))
}

/// Average pooling backward pass: spreads each upstream gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns validation errors when `dy` does not match the pooled geometry of
/// `input_shape`.
pub fn avg_pool2d_backward(input_shape: &Shape, dy: &Tensor, spec: &Pool2dSpec) -> Result<Tensor> {
    if input_shape.rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_shape.rank(),
        });
    }
    let d = input_shape.dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (ho, wo) = spec.output_hw(h, w);
    let expected = Shape::nchw(n, c, ho, wo);
    if dy.shape() != &expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.dims().to_vec(),
            right: dy.shape().dims().to_vec(),
        });
    }
    let g = dy.as_slice();
    let win = (spec.kh * spec.kw) as f32;
    let mut dx = vec![0.0f32; n * c * h * w];
    for bc in 0..n * c {
        let gp = &g[bc * ho * wo..(bc + 1) * ho * wo];
        let dp = &mut dx[bc * h * w..(bc + 1) * h * w];
        for oh in 0..ho {
            for ow in 0..wo {
                let gv = gp[oh * wo + ow] / win;
                for dy_ in 0..spec.kh {
                    let iy = oh * spec.stride + dy_;
                    for dx_ in 0..spec.kw {
                        dp[iy * w + ow * spec.stride + dx_] += gv;
                    }
                }
            }
        }
    }
    Tensor::from_vec(dx, input_shape.clone())
}

/// Max pooling forward pass. Returns the pooled tensor and the flat index of
/// each selected element (needed by the backward pass).
///
/// # Errors
///
/// Returns rank / geometry validation errors from [`Pool2dSpec`].
pub fn max_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<(Tensor, Vec<usize>)> {
    let (n, c, h, w) = spec.validate(input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let x = input.as_slice();
    let mut y = vec![0.0f32; n * c * ho * wo];
    let mut idx = vec![0usize; n * c * ho * wo];
    for bc in 0..n * c {
        let xp = &x[bc * h * w..(bc + 1) * h * w];
        for oh in 0..ho {
            for ow in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_i = 0usize;
                for dy in 0..spec.kh {
                    let iy = oh * spec.stride + dy;
                    for dx in 0..spec.kw {
                        let ix = ow * spec.stride + dx;
                        let v = xp[iy * w + ix];
                        if v > best {
                            best = v;
                            best_i = iy * w + ix;
                        }
                    }
                }
                let o = bc * ho * wo + oh * wo + ow;
                y[o] = best;
                idx[o] = bc * h * w + best_i;
            }
        }
    }
    Ok((Tensor::from_vec(y, Shape::nchw(n, c, ho, wo))?, idx))
}

/// Max pooling backward pass: routes each upstream gradient to the element
/// that won the corresponding window (as recorded by [`max_pool2d`]).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `indices` does not match `dy`.
pub fn max_pool2d_backward(input_shape: &Shape, dy: &Tensor, indices: &[usize]) -> Result<Tensor> {
    if indices.len() != dy.len() {
        return Err(TensorError::LengthMismatch {
            expected: dy.len(),
            actual: indices.len(),
        });
    }
    let mut dx = vec![0.0f32; input_shape.volume()];
    for (&i, &g) in indices.iter().zip(dy.as_slice().iter()) {
        if i >= dx.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                bound: dx.len(),
            });
        }
        dx[i] += g;
    }
    Tensor::from_vec(dx, input_shape.clone())
}

/// Nearest-neighbour upsampling by an integer factor.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for `factor == 0` and rank errors
/// for non-NCHW inputs.
pub fn upsample2d_nearest(input: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidArgument("factor must be > 0".into()));
    }
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let d = input.shape().dims();
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (ho, wo) = (h * factor, w * factor);
    let x = input.as_slice();
    let mut y = vec![0.0f32; n * c * ho * wo];
    for bc in 0..n * c {
        let xp = &x[bc * h * w..(bc + 1) * h * w];
        let yp = &mut y[bc * ho * wo..(bc + 1) * ho * wo];
        for oy in 0..ho {
            let iy = oy / factor;
            for ox in 0..wo {
                yp[oy * wo + ox] = xp[iy * w + ox / factor];
            }
        }
    }
    Tensor::from_vec(y, Shape::nchw(n, c, ho, wo))
}

/// Backward pass of nearest-neighbour upsampling: sums each `factor × factor`
/// block of the upstream gradient.
///
/// # Errors
///
/// Returns validation errors when `dy` is not `factor`-divisible or ranks
/// disagree.
pub fn upsample2d_nearest_backward(dy: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidArgument("factor must be > 0".into()));
    }
    if dy.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dy.shape().rank(),
        });
    }
    let d = dy.shape().dims();
    let (n, c, ho, wo) = (d[0], d[1], d[2], d[3]);
    if ho % factor != 0 || wo % factor != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "gradient {ho}x{wo} not divisible by factor {factor}"
        )));
    }
    let (h, w) = (ho / factor, wo / factor);
    let g = dy.as_slice();
    let mut dx = vec![0.0f32; n * c * h * w];
    for bc in 0..n * c {
        let gp = &g[bc * ho * wo..(bc + 1) * ho * wo];
        let dp = &mut dx[bc * h * w..(bc + 1) * h * w];
        for oy in 0..ho {
            let iy = oy / factor;
            for ox in 0..wo {
                dp[iy * w + ox / factor] += gp[oy * wo + ox];
            }
        }
    }
    Tensor::from_vec(dx, Shape::nchw(n, c, h, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nchw(data: &[f32], n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::nchw(n, c, h, w)).unwrap()
    }

    #[test]
    fn avg_pool_2x2() {
        let x = nchw(
            &[
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            1,
            1,
            4,
            4,
        );
        let y = avg_pool2d(&x, &Pool2dSpec::square(2)).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let shape = Shape::nchw(1, 1, 2, 2);
        let dy = nchw(&[4.0], 1, 1, 1, 1);
        let dx = avg_pool2d_backward(&shape, &dy, &Pool2dSpec::square(2)).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn avg_pool_adjoint_property() {
        // <avg_pool(x), y> == <x, avg_pool_backward(y)>
        let spec = Pool2dSpec::square(2);
        let x = Tensor::from_fn(Shape::nchw(2, 3, 4, 4), |i| {
            ((i * 31 % 13) as f32 - 6.0) * 0.1
        });
        let y = Tensor::from_fn(Shape::nchw(2, 3, 2, 2), |i| {
            ((i * 17 % 7) as f32 - 3.0) * 0.2
        });
        let lhs = avg_pool2d(&x, &spec).unwrap().dot(&y).unwrap();
        let rhs = x
            .dot(&avg_pool2d_backward(x.shape(), &y, &spec).unwrap())
            .unwrap();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn max_pool_selects_maximum() {
        let x = nchw(
            &[
                1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 4.0, 2.0, 0.5, 0.5, 6.0, 1.0, 2.0, 2.0, 2.0, 2.0,
            ],
            1,
            1,
            4,
            4,
        );
        let (y, idx) = max_pool2d(&x, &Pool2dSpec::square(2)).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 4.0, 2.0, 6.0]);
        assert_eq!(idx[0], 1); // position of the 5.0
    }

    #[test]
    fn max_pool_backward_routes_to_winner() {
        let x = nchw(&[1.0, 5.0, 3.0, 0.0], 1, 1, 2, 2);
        let (_, idx) = max_pool2d(&x, &Pool2dSpec::square(2)).unwrap();
        let dy = nchw(&[7.0], 1, 1, 1, 1);
        let dx = max_pool2d_backward(x.shape(), &dy, &idx).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn upsample_nearest_2x() {
        let x = nchw(&[1.0, 2.0, 3.0, 4.0], 1, 1, 2, 2);
        let y = upsample2d_nearest(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 4, 4]);
        assert_eq!(
            y.as_slice(),
            &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0, 3.0, 3.0, 4.0, 4.0]
        );
    }

    #[test]
    fn upsample_roundtrip_shapes() {
        let x = Tensor::from_fn(Shape::nchw(2, 3, 3, 3), |i| i as f32);
        let y = upsample2d_nearest(&x, 2).unwrap();
        let dx = upsample2d_nearest_backward(&Tensor::ones(y.shape().clone()), 2).unwrap();
        assert_eq!(dx.shape(), x.shape());
        // Each input position received 4 gradient contributions of 1.
        assert!(dx.as_slice().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn upsample_adjoint_property() {
        let x = Tensor::from_fn(Shape::nchw(1, 2, 3, 3), |i| {
            ((i * 23 % 11) as f32 - 5.0) * 0.1
        });
        let y = Tensor::from_fn(Shape::nchw(1, 2, 6, 6), |i| {
            ((i * 19 % 9) as f32 - 4.0) * 0.1
        });
        let lhs = upsample2d_nearest(&x, 2).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&upsample2d_nearest_backward(&y, 2).unwrap()).unwrap();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn pool_validates_geometry() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(avg_pool2d(&x, &Pool2dSpec::square(3)).is_err());
        assert!(avg_pool2d(
            &x,
            &Pool2dSpec {
                kh: 1,
                kw: 1,
                stride: 0
            }
        )
        .is_err());
        let v = Tensor::zeros(Shape::vector(4));
        assert!(avg_pool2d(&v, &Pool2dSpec::square(2)).is_err());
    }

    #[test]
    fn upsample_backward_rejects_indivisible() {
        let dy = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(upsample2d_nearest_backward(&dy, 2).is_err());
    }
}
