//! 2-D convolution via `im2col` + matrix multiplication, with the exact
//! backward pass (input, weight and bias gradients).
//!
//! Tensors use NCHW layout. Weights are `[out_channels, in_channels, kh, kw]`.
//! `im2col` arranges every receptive field as a row so the convolution becomes
//! one large matrix product — the standard CPU formulation.

use crate::ops::matmul::{matmul_a_bt, matmul_at_b};
use crate::{Result, Shape, Tensor, TensorError};
use adv_profile::{KernelKind, KernelScope, Work};
use serde::{Deserialize, Serialize};

/// Geometry of a 2-D convolution.
///
/// # Example
///
/// ```
/// use adv_tensor::ops::Conv2dSpec;
///
/// // A 3×3 "same" convolution on 28×28 inputs.
/// let spec = Conv2dSpec::same(1, 8, 3);
/// assert_eq!(spec.output_hw(28, 28), (28, 28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along both axes.
    pub stride: usize,
    /// Zero padding along both axes.
    pub padding: usize,
}

impl Conv2dSpec {
    /// A stride-1 convolution with a square `k × k` kernel and the padding
    /// that preserves spatial size for odd `k` ("same" padding).
    pub fn same(in_channels: usize, out_channels: usize, k: usize) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kh: k,
            kw: k,
            stride: 1,
            padding: k / 2,
        }
    }

    /// A convolution with no padding ("valid").
    pub fn valid(in_channels: usize, out_channels: usize, k: usize, stride: usize) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kh: k,
            kw: k,
            stride,
            padding: 0,
        }
    }

    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ho = (h + 2 * self.padding - self.kh) / self.stride + 1;
        let wo = (w + 2 * self.padding - self.kw) / self.stride + 1;
        (ho, wo)
    }

    /// Number of elements in one receptive-field row (`c · kh · kw`).
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kh * self.kw
    }

    fn validate_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        if input.shape().rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: input.shape().rank(),
            });
        }
        let dims = input.shape().dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        if c != self.in_channels {
            return Err(TensorError::InvalidArgument(format!(
                "input has {c} channels, spec expects {}",
                self.in_channels
            )));
        }
        if self.stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be > 0".into()));
        }
        if h + 2 * self.padding < self.kh || w + 2 * self.padding < self.kw {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh,
                self.kw,
                h + 2 * self.padding,
                w + 2 * self.padding
            )));
        }
        let _ = n;
        Ok((n, h, w))
    }
}

/// Unfolds an NCHW batch into receptive-field rows.
///
/// The output is `[n·ho·wo, c·kh·kw]`, rows ordered by `(n, oh, ow)` and
/// columns by `(c, kh, kw)`; out-of-bounds (padding) taps contribute zeros.
///
/// # Errors
///
/// Propagates the validation errors of [`Conv2dSpec`] (rank, channel count,
/// zero stride, kernel larger than padded input).
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (n, h, w) = spec.validate_input(input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let c = spec.in_channels;
    let patch = spec.patch_len();
    let _prof = KernelScope::enter(KernelKind::Im2col, || Work::copy(n * ho * wo * patch));
    let x = input.as_slice();
    let mut cols = vec![0.0f32; n * ho * wo * patch];
    let pad = spec.padding as isize;
    let stride = spec.stride;

    for b in 0..n {
        let xb = &x[b * c * h * w..(b + 1) * c * h * w];
        for oh in 0..ho {
            for ow in 0..wo {
                let row = ((b * ho + oh) * wo + ow) * patch;
                let ih0 = (oh * stride) as isize - pad;
                let iw0 = (ow * stride) as isize - pad;
                let mut col = row;
                for ch in 0..c {
                    let xc = &xb[ch * h * w..(ch + 1) * h * w];
                    for dy in 0..spec.kh {
                        let iy = ih0 + dy as isize;
                        if iy >= 0 && (iy as usize) < h {
                            let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
                            for dx in 0..spec.kw {
                                let ix = iw0 + dx as isize;
                                if ix >= 0 && (ix as usize) < w {
                                    cols[col] = xrow[ix as usize];
                                }
                                col += 1;
                            }
                        } else {
                            col += spec.kw;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(cols, Shape::matrix(n * ho * wo, patch))
}

/// Folds receptive-field rows back into an NCHW batch, *summing* overlapping
/// contributions — the adjoint of [`im2col`], used for input gradients.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not have the
/// `[n·ho·wo, c·kh·kw]` shape implied by `spec` and the output geometry.
pub fn col2im(cols: &Tensor, n: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Result<Tensor> {
    let (ho, wo) = spec.output_hw(h, w);
    let c = spec.in_channels;
    let patch = spec.patch_len();
    let expected = Shape::matrix(n * ho * wo, patch);
    if cols.shape() != &expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.dims().to_vec(),
            right: cols.shape().dims().to_vec(),
        });
    }
    let _prof = KernelScope::enter(KernelKind::Col2im, || {
        Work::custom(
            (n * c * h * w) as u64,
            (n * ho * wo * patch) as u64,
            (8 * n * ho * wo * patch) as u64,
        )
    });
    let cv = cols.as_slice();
    let mut out = vec![0.0f32; n * c * h * w];
    let pad = spec.padding as isize;
    let stride = spec.stride;

    for b in 0..n {
        let ob = &mut out[b * c * h * w..(b + 1) * c * h * w];
        for oh in 0..ho {
            for ow in 0..wo {
                let row = ((b * ho + oh) * wo + ow) * patch;
                let ih0 = (oh * stride) as isize - pad;
                let iw0 = (ow * stride) as isize - pad;
                let mut col = row;
                for ch in 0..c {
                    let base = ch * h * w;
                    for dy in 0..spec.kh {
                        let iy = ih0 + dy as isize;
                        if iy >= 0 && (iy as usize) < h {
                            for dx in 0..spec.kw {
                                let ix = iw0 + dx as isize;
                                if ix >= 0 && (ix as usize) < w {
                                    ob[base + iy as usize * w + ix as usize] += cv[col];
                                }
                                col += 1;
                            }
                        } else {
                            col += spec.kw;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::nchw(n, c, h, w))
}

fn check_weight(weight: &Tensor, spec: &Conv2dSpec) -> Result<()> {
    let expected = Shape::new(vec![spec.out_channels, spec.in_channels, spec.kh, spec.kw]);
    if weight.shape() != &expected {
        return Err(TensorError::ShapeMismatch {
            left: expected.dims().to_vec(),
            right: weight.shape().dims().to_vec(),
        });
    }
    Ok(())
}

/// Forward 2-D convolution: `y = x ⊛ weight + bias`.
///
/// `input` is `[n, c, h, w]`, `weight` is `[oc, c, kh, kw]`, `bias` is `[oc]`,
/// and the result is `[n, oc, ho, wo]`.
///
/// # Errors
///
/// Returns shape/validation errors when the operands disagree with `spec`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    check_weight(weight, spec)?;
    if bias.shape() != &Shape::vector(spec.out_channels) {
        return Err(TensorError::ShapeMismatch {
            left: vec![spec.out_channels],
            right: bias.shape().dims().to_vec(),
        });
    }
    let (n, h, w) = spec.validate_input(input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let _prof = KernelScope::enter(KernelKind::Conv2d, || {
        // The im2col + matmul children account their own volumes; the
        // conv2d frame itself owns the bias repack.
        Work::map(n * spec.out_channels * ho * wo)
    });
    let cols = im2col(input, spec)?;
    let wmat = weight.reshape(Shape::matrix(spec.out_channels, spec.patch_len()))?;
    // rows: [n·ho·wo, oc]
    let rows = matmul_a_bt(&cols, &wmat)?;
    let rv = rows.as_slice();
    let bv = bias.as_slice();
    let oc = spec.out_channels;
    let hw = ho * wo;
    let mut y = vec![0.0f32; n * oc * hw];
    for b in 0..n {
        for p in 0..hw {
            let row = &rv[(b * hw + p) * oc..(b * hw + p + 1) * oc];
            for (ch, &v) in row.iter().enumerate() {
                y[(b * oc + ch) * hw + p] = v + bv[ch];
            }
        }
    }
    Tensor::from_vec(y, Shape::nchw(n, oc, ho, wo))
}

/// Backward 2-D convolution.
///
/// Given the upstream gradient `dy = ∂L/∂y` (`[n, oc, ho, wo]`), recomputes
/// `im2col(input)` and returns `(dx, dweight, dbias)` with the shapes of
/// `input`, `weight` and the bias vector respectively.
///
/// # Errors
///
/// Returns shape/validation errors when the operands disagree with `spec`.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor, Tensor)> {
    check_weight(weight, spec)?;
    let (n, h, w) = spec.validate_input(input)?;
    let (ho, wo) = spec.output_hw(h, w);
    let expected_dy = Shape::nchw(n, spec.out_channels, ho, wo);
    if dy.shape() != &expected_dy {
        return Err(TensorError::ShapeMismatch {
            left: expected_dy.dims().to_vec(),
            right: dy.shape().dims().to_vec(),
        });
    }

    let _prof = KernelScope::enter(KernelKind::Conv2dBackward, || {
        Work::map(n * spec.out_channels * ho * wo)
    });
    // Repack dy from NCHW to rows [n·ho·wo, oc] (matching the im2col row order).
    let oc = spec.out_channels;
    let hw = ho * wo;
    let dyv = dy.as_slice();
    let mut dyrows = vec![0.0f32; n * hw * oc];
    for b in 0..n {
        for ch in 0..oc {
            for p in 0..hw {
                dyrows[(b * hw + p) * oc + ch] = dyv[(b * oc + ch) * hw + p];
            }
        }
    }
    let dyrows = Tensor::from_vec(dyrows, Shape::matrix(n * hw, oc))?;

    let cols = im2col(input, spec)?;
    // dW = dyrowsᵀ · cols → [oc, patch]
    let dw = matmul_at_b(&dyrows, &cols)?;
    let dw = dw.into_reshaped(Shape::new(vec![oc, spec.in_channels, spec.kh, spec.kw]))?;

    // db = column sums of dyrows.
    let mut db = vec![0.0f32; oc];
    for row in dyrows.as_slice().chunks_exact(oc) {
        for (d, &v) in db.iter_mut().zip(row.iter()) {
            *d += v;
        }
    }
    let db = Tensor::from_vec(db, Shape::vector(oc))?;

    // dX = col2im(dyrows · W)
    let wmat = weight.reshape(Shape::matrix(oc, spec.patch_len()))?;
    let dcols = crate::ops::matmul::matmul(&dyrows, &wmat)?;
    let dx = col2im(&dcols, n, h, w, spec)?;

    Ok((dx, dw, db))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nchw(data: &[f32], n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::nchw(n, c, h, w)).unwrap()
    }

    #[test]
    fn output_geometry() {
        let spec = Conv2dSpec::same(1, 4, 3);
        assert_eq!(spec.output_hw(28, 28), (28, 28));
        let spec = Conv2dSpec::valid(1, 4, 3, 1);
        assert_eq!(spec.output_hw(28, 28), (26, 26));
        let spec = Conv2dSpec::valid(1, 4, 2, 2);
        assert_eq!(spec.output_hw(8, 8), (4, 4));
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1×1 kernel, stride 1: im2col rows are just pixels.
        let x = nchw(&[1.0, 2.0, 3.0, 4.0], 1, 1, 2, 2);
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 1,
            padding: 0,
        };
        let cols = im2col(&x, &spec).unwrap();
        assert_eq!(cols.shape().dims(), &[4, 1]);
        assert_eq!(cols.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv2d_hand_computed_3x3_valid() {
        // 3×3 input, 2×2 kernel of ones, no padding → each output is the sum
        // of a 2×2 patch.
        let x = nchw(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 1, 1, 3, 3);
        let w = nchw(&[1.0, 1.0, 1.0, 1.0], 1, 1, 2, 2);
        let b = Tensor::zeros(Shape::vector(1));
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            padding: 0,
        };
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_bias_is_added_per_channel() {
        let x = nchw(&[1.0; 4], 1, 1, 2, 2);
        let w = Tensor::zeros(Shape::new(vec![2, 1, 1, 1]));
        let b = Tensor::from_vec(vec![5.0, -3.0], Shape::vector(2)).unwrap();
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            padding: 0,
        };
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        assert_eq!(y.as_slice(), &[5.0, 5.0, 5.0, 5.0, -3.0, -3.0, -3.0, -3.0]);
    }

    #[test]
    fn same_padding_preserves_size() {
        let x = Tensor::from_fn(Shape::nchw(2, 3, 5, 5), |i| (i % 11) as f32 * 0.1);
        let spec = Conv2dSpec::same(3, 4, 3);
        let w = Tensor::from_fn(Shape::new(vec![4, 3, 3, 3]), |i| {
            ((i % 7) as f32 - 3.0) * 0.1
        });
        let b = Tensor::zeros(Shape::vector(4));
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        assert_eq!(y.shape().dims(), &[2, 4, 5, 5]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let spec = Conv2dSpec::same(2, 3, 3);
        let x = Tensor::from_fn(Shape::nchw(1, 2, 4, 4), |i| {
            ((i * 37 % 17) as f32 - 8.0) * 0.1
        });
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cols.shape().clone(), |i| {
            ((i * 13 % 29) as f32 - 14.0) * 0.05
        });
        let lhs = cols.dot(&y).unwrap();
        let folded = col2im(&y, 1, 4, 4, &spec).unwrap();
        let rhs = x.dot(&folded).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec::same(1, 2, 3);
        let x = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| ((i % 9) as f32 - 4.0) * 0.1);
        let w = Tensor::from_fn(Shape::new(vec![2, 1, 3, 3]), |i| {
            ((i % 5) as f32 - 2.0) * 0.1
        });
        let b = Tensor::from_vec(vec![0.1, -0.2], Shape::vector(2)).unwrap();

        // Scalar loss L = sum(conv(x)) → dy = ones.
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        let dy = Tensor::ones(y.shape().clone());
        let (dx, dw, db) = conv2d_backward(&x, &w, &dy, &spec).unwrap();

        let eps = 1e-3f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| conv2d(x, w, b, &spec).unwrap().sum();

        for i in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps);
            assert!(
                (fd - dx.as_slice()[i]).abs() < 1e-2,
                "dx[{i}]: fd {fd} vs analytic {}",
                dx.as_slice()[i]
            );
        }
        for i in [0usize, 4, 9, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps);
            assert!(
                (fd - dw.as_slice()[i]).abs() < 1e-2,
                "dw[{i}]: fd {fd} vs analytic {}",
                dw.as_slice()[i]
            );
        }
        for i in 0..2 {
            let mut bp = b.clone();
            bp.as_mut_slice()[i] += eps;
            let mut bm = b.clone();
            bm.as_mut_slice()[i] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            assert!(
                (fd - db.as_slice()[i]).abs() < 5e-2,
                "db[{i}]: fd {fd} vs analytic {}",
                db.as_slice()[i]
            );
        }
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let x = Tensor::zeros(Shape::nchw(1, 2, 4, 4));
        let spec = Conv2dSpec::same(3, 4, 3);
        let w = Tensor::zeros(Shape::new(vec![4, 3, 3, 3]));
        let b = Tensor::zeros(Shape::vector(4));
        assert!(conv2d(&x, &w, &b, &spec).is_err());
    }

    #[test]
    fn rejects_wrong_weight_shape() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let spec = Conv2dSpec::same(1, 2, 3);
        let w = Tensor::zeros(Shape::new(vec![2, 1, 5, 5]));
        let b = Tensor::zeros(Shape::vector(2));
        assert!(matches!(
            conv2d(&x, &w, &b, &spec),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn stride_two_downsamples() {
        let x = Tensor::from_fn(Shape::nchw(1, 1, 4, 4), |i| i as f32);
        let w = nchw(&[1.0], 1, 1, 1, 1);
        let b = Tensor::zeros(Shape::vector(1));
        let spec = Conv2dSpec {
            in_channels: 1,
            out_channels: 1,
            kh: 1,
            kw: 1,
            stride: 2,
            padding: 0,
        };
        let y = conv2d(&x, &w, &b, &spec).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 8.0, 10.0]);
    }
}
