//! Blocked dense matrix multiplication.
//!
//! Three entry points cover the products backprop needs without materializing
//! transposes:
//!
//! - [`matmul`]: `C = A·B`
//! - [`matmul_at_b`]: `C = Aᵀ·B` (weight gradients)
//! - [`matmul_a_bt`]: `C = A·Bᵀ` (input gradients)
//!
//! The kernels are written i-k-j with a fixed block size so the inner loop is
//! a contiguous axpy the compiler auto-vectorizes.

use crate::{Result, Shape, Tensor, TensorError};
use adv_profile::{KernelKind, KernelScope, Work};

const BLOCK: usize = 64;

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.shape().dim(0), t.shape().dim(1)))
}

/// `C = A·B` for rank-2 tensors.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when `A` has a different number of
/// columns than `B` has rows.
///
/// # Example
///
/// ```
/// use adv_tensor::{ops::matmul, Shape, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], Shape::matrix(2, 2))?;
/// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], Shape::matrix(2, 2))?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok::<(), adv_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a)?;
    let (kb, n) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let _prof = KernelScope::enter(KernelKind::MatMul, || Work::matmul(m, ka, n));
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut c = vec![0.0f32; m * n];
    for kk in (0..ka).step_by(BLOCK) {
        let kend = (kk + BLOCK).min(ka);
        for i in 0..m {
            let crow = &mut c[i * n..(i + 1) * n];
            for k in kk..kend {
                let aik = av[i * ka + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &bv[k * n..(k + 1) * n];
                for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj += aik * bj;
                }
            }
        }
    }
    Tensor::from_vec(c, Shape::matrix(m, n))
}

/// `C = Aᵀ·B` where `A: [k, m]`, `B: [k, n]`, producing `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the leading (contraction)
/// dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a)?;
    let (kb, n) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let _prof = KernelScope::enter(KernelKind::MatMulAtB, || Work::matmul(m, ka, n));
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut c = vec![0.0f32; m * n];
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += aki * bj;
            }
        }
    }
    Tensor::from_vec(c, Shape::matrix(m, n))
}

/// `C = A·Bᵀ` where `A: [m, k]`, `B: [n, k]`, producing `[m, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the trailing (contraction)
/// dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a)?;
    let (n, kb) = check_rank2(b)?;
    if ka != kb {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: ka,
            right_rows: kb,
        });
    }
    let _prof = KernelScope::enter(KernelKind::MatMulABt, || Work::matmul(m, ka, n));
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cij) in crow.iter_mut().enumerate() {
            let brow = &bv[j * ka..(j + 1) * ka];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *cij = acc;
        }
    }
    Tensor::from_vec(c, Shape::matrix(m, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), Shape::matrix(r, c)).unwrap()
    }

    #[test]
    fn matmul_small_known_case() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, -2.0, 3.5, 0.0], 2, 2);
        let i = t(&[1.0, 0.0, 0.0, 1.0], 2, 2);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[1.0, 2.0], 1, 2);
        let b = t(&[1.0, 2.0, 3.0], 3, 1);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = t(&[1.0, 0.0, -1.0, 2.0, 0.5, 1.0], 3, 2);
        let expected = matmul(&a.transpose().unwrap(), &b).unwrap();
        assert_eq!(matmul_at_b(&a, &b).unwrap(), expected);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t(&[0.5, -1.0, 2.0, 3.0, 1.0, 0.0], 3, 2);
        let expected = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert_eq!(matmul_a_bt(&a, &b).unwrap(), expected);
    }

    #[test]
    fn blocked_path_matches_naive_on_larger_matrices() {
        // Exercise the k-blocking by exceeding BLOCK.
        let k = 150;
        let a = Tensor::from_fn(Shape::matrix(3, k), |i| (i % 7) as f32 - 3.0);
        let b = Tensor::from_fn(Shape::matrix(k, 4), |i| (i % 5) as f32 * 0.5);
        let c = matmul(&a, &b).unwrap();
        // Naive reference.
        for i in 0..3 {
            for j in 0..4 {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * 4 + j];
                }
                let got = c.as_slice()[i * 4 + j];
                assert!((got - acc).abs() < 1e-3, "({i},{j}): {got} vs {acc}");
            }
        }
    }

    #[test]
    fn rank_is_validated() {
        let v = Tensor::zeros(Shape::vector(4));
        let m = Tensor::zeros(Shape::matrix(2, 2));
        assert!(matches!(
            matmul(&v, &m),
            Err(TensorError::RankMismatch { .. })
        ));
    }
}
